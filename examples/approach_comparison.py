"""Compare all four approaches on the same queries (mini Figs. 5-6).

Deploys bslST, bslTS, hil, and hil* on the same fleet data set and
prints the paper's four metrics side by side for a small and a big
spatio-temporal query.

Run:  python examples/approach_comparison.py
"""

import datetime as dt

from repro.cluster.cluster import ClusterTopology
from repro.core import (
    SpatioTemporalQuery,
    deploy_approach,
    make_approach,
    measure_query,
)
from repro.core.loader import BulkLoader
from repro.datagen import GREECE_BBOX, FleetConfig, FleetGenerator
from repro.geo import BoundingBox

UTC = dt.timezone.utc
APPROACHES = ("bslST", "bslTS", "hil", "hilstar")


def main() -> None:
    print("Generating 8,000 fleet traces ...")
    documents = FleetGenerator(FleetConfig(n_vehicles=60)).generate_list(8000)

    deployments = {}
    for name in APPROACHES:
        print("Deploying %-8s (fresh 8-shard cluster, bulk load) ..." % name)
        deployments[name] = deploy_approach(
            make_approach(name, dataset_bbox=GREECE_BBOX),
            documents,
            topology=ClusterTopology(n_shards=8),
            chunk_max_bytes=24 * 1024,
            loader=BulkLoader(batch_size=2000),
        )

    queries = [
        SpatioTemporalQuery(
            bbox=BoundingBox(23.74, 37.97, 23.79, 38.01),
            time_from=dt.datetime(2018, 8, 1, tzinfo=UTC),
            time_to=dt.datetime(2018, 9, 1, tzinfo=UTC),
            label="small box, 1 month",
        ),
        SpatioTemporalQuery(
            bbox=BoundingBox(23.606039, 38.023982, 24.032754, 38.353926),
            time_from=dt.datetime(2018, 8, 1, tzinfo=UTC),
            time_to=dt.datetime(2018, 8, 8, tzinfo=UTC),
            label="big box, 1 week",
        ),
    ]

    header = "%-9s %-20s %6s %9s %9s %10s %8s" % (
        "approach", "query", "nodes", "maxKeys", "maxDocs", "time(ms)",
        "results",
    )
    print("\n" + header)
    print("-" * len(header))
    for query in queries:
        for name in APPROACHES:
            m = measure_query(
                deployments[name], query, runs=5, average_last=3
            )
            print(
                "%-9s %-20s %6d %9d %9d %10.2f %8d"
                % (
                    name,
                    query.label,
                    m.nodes,
                    m.max_keys_examined,
                    m.max_docs_examined,
                    m.execution_time_ms,
                    m.n_returned,
                )
            )
        print()

    print(
        "Reading the table: the baselines route by date (nodes grow with\n"
        "the time window); hil/hil* route by space (nodes follow the box\n"
        "size), and win on big boxes by examining fewer keys/documents."
    )


if __name__ == "__main__":
    main()
