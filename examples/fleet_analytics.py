"""Fleet analytics: the paper's motivating use case end to end.

Section 1 motivates the system with fleet-management operators doing
exploratory analysis of historical routes: spatio-temporal range
queries of varying granularity feeding fuel-cost and movement-pattern
analysis.  This example reproduces that workflow:

1. load a month of fleet traces into a Hilbert-sharded cluster;
2. drill down with range queries of shrinking spatial granularity;
3. aggregate the retrieved traces (fuel rate per vehicle, busiest
   road types) through the aggregation pipeline.

Run:  python examples/fleet_analytics.py
"""

import datetime as dt

from repro.cluster.cluster import ClusterTopology
from repro.core import SpatioTemporalQuery, deploy_approach, make_approach
from repro.core.loader import BulkLoader
from repro.datagen import FleetConfig, FleetGenerator
from repro.docstore.aggregation import run_pipeline
from repro.geo import BoundingBox

UTC = dt.timezone.utc

# Drill-down boxes: all of Attica → greater Athens → downtown.
DRILLDOWN = [
    ("Attica region", BoundingBox(23.3, 37.7, 24.2, 38.4)),
    ("greater Athens", BoundingBox(23.60, 37.90, 23.90, 38.10)),
    ("downtown Athens", BoundingBox(23.74, 37.97, 23.79, 38.01)),
]


def main() -> None:
    print("Loading 8,000 traces into a 6-shard hil cluster ...")
    documents = FleetGenerator(FleetConfig(n_vehicles=60)).generate_list(8000)
    deployment = deploy_approach(
        make_approach("hil"),
        documents,
        topology=ClusterTopology(n_shards=6),
        chunk_max_bytes=24 * 1024,
        loader=BulkLoader(batch_size=2000),
    )

    window = (
        dt.datetime(2018, 8, 1, tzinfo=UTC),
        dt.datetime(2018, 9, 1, tzinfo=UTC),
    )

    print("\nDrill-down over August 2018:")
    traces = []
    for name, bbox in DRILLDOWN:
        query = SpatioTemporalQuery(
            bbox=bbox, time_from=window[0], time_to=window[1], label=name
        )
        result, _ = deployment.execute(query)
        print(
            "  %-16s %5d traces   %d nodes   %.2f ms (modelled)"
            % (
                name,
                len(result),
                result.stats.nodes,
                result.stats.execution_time_ms,
            )
        )
        traces = result.documents  # keep the finest granularity last

    if not traces:
        # Fall back to the widest region so the analytics below always
        # have input.
        query = SpatioTemporalQuery(
            bbox=DRILLDOWN[0][1], time_from=window[0], time_to=window[1]
        )
        traces = deployment.execute(query)[0].documents

    # --- Analytics over the retrieved traces -----------------------------
    print("\nFuel analysis (top 5 vehicles by mean fuel rate):")
    fuel = run_pipeline(
        traces,
        [
            {
                "$group": {
                    "_id": "$vehicle_id",
                    "traces": {"$sum": 1},
                    "mean_fuel_lph": {"$avg": "$fuel_rate_lph"},
                    "mean_speed": {"$avg": "$speed_kmh"},
                }
            },
            {"$sort": {"mean_fuel_lph": -1}},
            {"$limit": 5},
        ],
    )
    for row in fuel:
        print(
            "  vehicle %-4s %3d traces   %.2f l/h at %.1f km/h"
            % (row["_id"], row["traces"], row["mean_fuel_lph"],
               row["mean_speed"] or 0.0)
        )

    print("\nTraffic by road type:")
    roads = run_pipeline(
        traces,
        [
            {"$group": {"_id": "$road.type", "n": {"$sum": 1}}},
            {"$sort": {"n": -1}},
        ],
    )
    for row in roads:
        print("  %-12s %d" % (row["_id"], row["n"]))


if __name__ == "__main__":
    main()
