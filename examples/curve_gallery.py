"""Curve gallery: Fig. 1 of the paper, in ASCII.

Draws the order-3 Hilbert and Z-order traversal of an 8x8 grid (each
cell labelled with its 1D value) and shows how a query rectangle
decomposes into 1D ranges on each curve — making the clustering
difference visible: the Hilbert covering merges into fewer ranges.

Run:  python examples/curve_gallery.py
"""

from repro.sfc.hilbert import HilbertCurve2D
from repro.sfc.ranges import covering_ranges
from repro.sfc.zorder import ZOrderCurve2D

ORDER = 3
SIDE = 1 << ORDER


def draw(curve, title: str) -> None:
    print(title)
    print("-" * len(title))
    for y in range(SIDE - 1, -1, -1):  # north at the top
        row = []
        for x in range(SIDE):
            row.append("%3d" % curve.encode_cell(x, y))
        print(" ".join(row))
    print()


def show_covering(curve, name: str, box) -> None:
    ranges = covering_ranges(curve, *box)
    parts = [
        "[%d..%d]" % (r.lo, r.hi) if r.lo != r.hi else "{%d}" % r.lo
        for r in ranges
    ]
    print(
        "%-8s covering of x in [%g, %g], y in [%g, %g]: %d range(s)"
        % (name, box[0], box[2], box[1], box[3], len(ranges))
    )
    print("         " + " ".join(parts))


def main() -> None:
    hilbert = HilbertCurve2D(
        order=ORDER, min_x=0, min_y=0, max_x=SIDE, max_y=SIDE
    )
    zorder = ZOrderCurve2D(
        order=ORDER, min_x=0, min_y=0, max_x=SIDE, max_y=SIDE
    )
    draw(hilbert, "Hilbert curve, order 3 (cell -> 1D value)")
    draw(zorder, "Z-order curve, order 3 (cell -> 1D value)")

    box = (1.2, 2.1, 4.9, 5.8)  # a 4x4-ish query rectangle
    print("Query rectangle decomposition (the paper's Section 4.2.1):")
    show_covering(hilbert, "Hilbert", box)
    show_covering(zorder, "Z-order", box)
    print()
    print(
        "Fewer, longer runs on the Hilbert curve mean fewer $or clauses\n"
        "and fewer B-tree seeks per query — the clustering property the\n"
        "paper cites (Moon et al., TKDE 2001) for choosing Hilbert."
    )


if __name__ == "__main__":
    main()
