"""Quickstart: Hilbert spatio-temporal indexing in five minutes.

Builds a 4-shard cluster, loads a small synthetic fleet, and runs one
spatio-temporal range query through the paper's *hil* approach —
showing the rendered MongoDB-style query and the cluster execution
statistics (nodes, keys/docs examined, modelled time).

Run:  python examples/quickstart.py
"""

import datetime as dt

from repro.cluster.cluster import ClusterTopology
from repro.core import (
    SpatioTemporalQuery,
    deploy_approach,
    make_approach,
)
from repro.core.loader import BulkLoader
from repro.datagen import FleetConfig, FleetGenerator
from repro.geo import BoundingBox

UTC = dt.timezone.utc


def main() -> None:
    # 1. Generate a small fleet data set (Greece, Jul-Nov 2018).
    print("Generating 4,000 fleet GPS traces ...")
    documents = FleetGenerator(FleetConfig(n_vehicles=40)).generate_list(4000)

    # 2. Deploy the paper's hil approach on a fresh 4-shard cluster:
    #    shard key {hilbertIndex, date}, 13-bit global Hilbert curve.
    print("Deploying the hil approach on a 4-shard cluster ...")
    deployment = deploy_approach(
        make_approach("hil"),
        documents,
        topology=ClusterTopology(n_shards=4),
        chunk_max_bytes=16 * 1024,
        loader=BulkLoader(batch_size=1000),
    )

    # 3. Ask for everything near Athens during one week of August.
    query = SpatioTemporalQuery(
        bbox=BoundingBox(23.60, 37.90, 23.90, 38.10),
        time_from=dt.datetime(2018, 8, 1, tzinfo=UTC),
        time_to=dt.datetime(2018, 8, 8, tzinfo=UTC),
        label="athens-week",
    )

    rendered, decomposition_ms = deployment.approach.render_query(query)
    print("\nRendered MongoDB-style query (Hilbert $or clauses):")
    print("  location:", "$geoWithin polygon over", query.bbox)
    print("  date: [%s .. %s]" % (query.time_from, query.time_to))
    or_clauses = rendered.get("$or", [])
    print("  $or: %d hilbertIndex clauses" % len(or_clauses))
    for clause in or_clauses[:3]:
        print("       %r" % (clause,))
    if len(or_clauses) > 3:
        print("       ... (%d more)" % (len(or_clauses) - 3))
    print("  (cell identification took %.3f ms)" % decomposition_ms)

    result, _ = deployment.execute(query)
    stats = result.stats
    print("\nExecution:")
    print("  documents returned : %d" % len(result))
    print("  nodes involved     : %d / 4" % stats.nodes)
    print("  max keys examined  : %d" % stats.max_keys_examined)
    print("  max docs examined  : %d" % stats.max_docs_examined)
    print("  modelled time      : %.2f ms" % stats.execution_time_ms)

    sample = result.documents[0] if result.documents else None
    if sample is not None:
        print("\nFirst matching document:")
        print("  vehicle %s at %s on %s" % (
            sample["vehicle_id"],
            sample["location"]["coordinates"],
            sample["date"],
        ))


if __name__ == "__main__":
    main()
