"""Trajectory (polyline) indexing — the paper's future work, working.

Folds point traces into trajectory documents (route LineString + time
span), attaches the Hilbert cell array, builds a multikey
``(hilbertCells, startDate)`` index, and runs a spatio-temporal query
that finds every trajectory *crossing* a region during a window — even
routes with no recorded point inside the region.

Run:  python examples/trajectory_queries.py
"""

import datetime as dt

from repro.core import (
    SpatioTemporalEncoder,
    SpatioTemporalQuery,
    TrajectoryEncoder,
    trajectories_from_traces,
)
from repro.datagen import FleetConfig, FleetGenerator
from repro.docstore import Collection
from repro.geo import BoundingBox

UTC = dt.timezone.utc


def main() -> None:
    print("Generating 6,000 fleet traces and folding them into trips ...")
    traces = FleetGenerator(FleetConfig(n_vehicles=40)).generate_list(6000)
    encoder = TrajectoryEncoder(
        encoder=SpatioTemporalEncoder.hilbert_global()
    )
    trips = trajectories_from_traces(traces, encoder=encoder)
    print(
        "  %d trips (avg %.1f points, avg %.1f km, avg %d Hilbert cells)"
        % (
            len(trips),
            sum(t["n_points"] for t in trips) / len(trips),
            sum(t["length_km"] for t in trips) / len(trips),
            sum(len(t["hilbertCells"]) for t in trips) / len(trips),
        )
    )

    collection = Collection("trips")
    collection.create_index(
        [("hilbertCells", 1), ("startDate", 1)], name="cells_date"
    )
    collection.insert_many(trips)

    query = SpatioTemporalQuery(
        bbox=BoundingBox(23.60, 37.90, 23.90, 38.15),  # Athens corridor
        time_from=dt.datetime(2018, 8, 1, tzinfo=UTC),
        time_to=dt.datetime(2018, 9, 1, tzinfo=UTC),
        label="athens-august",
    )
    rendered, cell_ms = encoder.render_query(query)
    result = collection.find_with_stats(rendered)

    print("\nTrips intersecting Athens during August 2018:")
    print("  matches            : %d" % len(result))
    print("  plan               : %s (%s)" % (
        result.plan.kind,
        getattr(result.plan, "index_name", "-"),
    ))
    print("  keys examined      : %d" % result.stats.keys_examined)
    print("  docs examined      : %d" % result.stats.docs_examined)
    print("  cell identification: %.3f ms" % cell_ms)

    for trip in result.documents[:5]:
        print(
            "  vehicle %-4s %5.1f km, %2d points, started %s"
            % (
                trip["vehicle_id"],
                trip["length_km"],
                trip["n_points"],
                trip["startDate"],
            )
        )


if __name__ == "__main__":
    main()
