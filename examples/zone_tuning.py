"""Zones in action: data locality before and after (Section 4.2.3-4.2.4).

Loads a Hilbert-sharded fleet, measures node fan-out under default
chunk distribution, then installs one-zone-per-shard ranges computed
with ``$bucketAuto`` over ``hilbertIndex`` and measures again — showing
chunk placement and query fan-out tightening.

Run:  python examples/zone_tuning.py
"""

import datetime as dt

from repro.cluster.cluster import ClusterTopology
from repro.core import SpatioTemporalQuery, deploy_approach, make_approach
from repro.core.loader import BulkLoader
from repro.core.zoning import configure_zones
from repro.datagen import FleetConfig, FleetGenerator
from repro.geo import BoundingBox

UTC = dt.timezone.utc


def fan_out_report(deployment, queries, title):
    print(title)
    for query in queries:
        result, _ = deployment.execute(query)
        shards = ", ".join(sorted(result.stats.per_shard)) or "(none)"
        print(
            "  %-18s %d docs on %d node(s): %s"
            % (query.label, len(result), result.stats.nodes, shards)
        )
    print()


def main() -> None:
    print("Loading 6,000 traces into a 6-shard hil cluster ...")
    documents = FleetGenerator(FleetConfig(n_vehicles=50)).generate_list(6000)
    deployment = deploy_approach(
        make_approach("hil"),
        documents,
        topology=ClusterTopology(n_shards=6),
        chunk_max_bytes=16 * 1024,
        loader=BulkLoader(batch_size=2000),
    )

    queries = [
        SpatioTemporalQuery(
            bbox=BoundingBox(23.60, 37.90, 23.90, 38.10),
            time_from=dt.datetime(2018, 7, 15, tzinfo=UTC),
            time_to=dt.datetime(2018, 10, 15, tzinfo=UTC),
            label="athens, 3 months",
        ),
        SpatioTemporalQuery(
            bbox=BoundingBox(22.80, 40.50, 23.10, 40.80),
            time_from=dt.datetime(2018, 7, 15, tzinfo=UTC),
            time_to=dt.datetime(2018, 10, 15, tzinfo=UTC),
            label="thessaloniki, 3 months",
        ),
    ]

    counts = deployment.cluster.chunk_distribution(deployment.collection)
    print("Chunk distribution (default balancing): %s\n" % counts)
    fan_out_report(deployment, queries, "Fan-out under default distribution:")

    print("Installing one zone per shard ($bucketAuto over hilbertIndex) ...")
    zones = configure_zones(
        deployment.cluster, deployment.collection, "hilbertIndex"
    )
    for zone in zones:
        print("  %s -> %s" % (zone.name, zone.shard_id))
    deployment.zones_enabled = True
    print()

    counts = deployment.cluster.chunk_distribution(deployment.collection)
    print("Chunk distribution (zoned): %s\n" % counts)
    fan_out_report(deployment, queries, "Fan-out with zones:")

    print(
        "With zones, documents with consecutive Hilbert values live on\n"
        "the same shard, so each city's queries concentrate on one or two\n"
        "nodes — the data-locality effect of Section 4.2.3."
    )


if __name__ == "__main__":
    main()
