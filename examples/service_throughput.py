"""Serving queries concurrently through the in-process mongos frontend.

Deploys the paper's *hil* approach, wraps the cluster in a
:class:`~repro.service.QueryService`, and contrasts sequential
fan-out with parallel scatter-gather under a closed-loop load of the
paper's Q^b queries — printing achieved q/s and p50/p95/p99 latency
for each mode, plus the plan-cache hit rate.

Per-shard service time is simulated from the cost model so the
wall-clock shape matches a real deployment: serial execution pays the
*sum* of per-shard times, parallel scatter-gather only the *max*.

Run:  PYTHONPATH=src python examples/service_throughput.py
"""

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import COLLECTION, deploy_approach, make_approach
from repro.datagen import FleetConfig, FleetGenerator
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
    render_workload,
)
from repro.workloads.queries import big_queries


def run_mode(cluster, workload, label, **overrides) -> None:
    """One load-generation pass; prints a single result line."""
    config = ServiceConfig(
        simulate_shard_latency=True,
        simulated_latency_scale=20.0,
        **overrides,
    )
    clients = config.max_workers
    with QueryService(cluster, config) as service:
        report = LoadGenerator(service, COLLECTION, workload).run_closed_loop(
            clients=clients, total_queries=40
        )
        cache = service.plan_cache
        hit_rate = "%.0f%%" % (100 * cache.hit_rate) if cache else "off"
    print(
        "  %-22s %6.1f q/s   p50=%5.1fms  p95=%5.1fms  p99=%5.1fms"
        "   plan cache: %s"
        % (
            label,
            report.achieved_qps,
            report.p50_latency_ms,
            report.p95_latency_ms,
            report.p99_latency_ms,
            hit_rate,
        )
    )


def main() -> None:
    print("Generating fleet traces and deploying hil on 8 shards ...")
    documents = FleetGenerator(FleetConfig(n_vehicles=40)).generate_list(2000)
    deployment = deploy_approach(
        make_approach("hil"),
        documents,
        topology=ClusterTopology(n_shards=8),
        chunk_max_bytes=16 * 1024,
    )
    workload = render_workload(deployment.approach, big_queries())

    print("Replaying the paper's Q^b workload (closed loop):")
    run_mode(
        deployment.cluster,
        workload,
        "sequential, 1 client",
        max_workers=1,
        parallel_scatter_gather=False,
    )
    run_mode(
        deployment.cluster,
        workload,
        "parallel, 4 clients",
        max_workers=4,
    )
    run_mode(
        deployment.cluster,
        workload,
        "parallel, 8 clients",
        max_workers=8,
    )
    print(
        "\nParallel scatter-gather overlaps per-shard work across"
        " shards and in-flight queries; the plan cache skips planning"
        " on repeated query shapes."
    )


if __name__ == "__main__":
    main()
