"""Workload-aware partitioning — the paper's future work, end to end.

1. Load a skewed fleet into a hil cluster and apply the paper's
   count-balanced zones.
2. Generate a realistic query workload (Athens-heavy, Zipf weights).
3. Re-partition with workload-aware zones and compare the straggler's
   work per query.
4. Snapshot the tuned cluster to disk and restore it, showing that the
   metrics survive a save/load cycle.

Run:  python examples/adaptive_partitioning.py
"""

import datetime as dt
import os
import tempfile

from repro.cluster.cluster import ClusterTopology
from repro.cluster.snapshot import dump_cluster, load_cluster
from repro.core import deploy_approach, make_approach, measure_query
from repro.core.adaptive import configure_workload_aware_zones
from repro.core.loader import BulkLoader
from repro.core.zoning import configure_zones
from repro.datagen import FleetConfig, FleetGenerator, GREECE_BBOX
from repro.geo import BoundingBox
from repro.workloads import WorkloadConfig, WorkloadGenerator

UTC = dt.timezone.utc
ATHENS = BoundingBox(23.45, 37.80, 24.10, 38.35)


def measure_workload(deployment, workload):
    total_straggler = 0
    total_nodes = 0
    for entry in workload:
        m = measure_query(deployment, entry.query, runs=1, average_last=1)
        total_straggler += m.max_docs_examined * entry.weight
        total_nodes += m.nodes
    return total_straggler, total_nodes / len(workload)


def main() -> None:
    print("Loading 8,000 traces into a 8-shard hil cluster ...")
    docs = FleetGenerator(FleetConfig(n_vehicles=60)).generate_list(8000)

    workload = WorkloadGenerator(
        WorkloadConfig(
            region=GREECE_BBOX,
            time_from=dt.datetime(2018, 7, 1, tzinfo=UTC),
            time_to=dt.datetime(2018, 12, 1, tzinfo=UTC),
            hot_region=ATHENS,
            hot_fraction=0.8,
            weight_skew=0.7,
            box_scale=(0.3, 0.8),
            window_hours=(24.0 * 7, 24.0 * 60),
            seed=11,
        )
    ).generate_weighted(10)
    print("Workload: %d queries, 80%% focused on greater Athens\n" % len(workload))

    count_zoned = deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=8),
        chunk_max_bytes=24 * 1024,
        use_zones=True,
        loader=BulkLoader(batch_size=2000),
    )
    straggler, nodes = measure_workload(count_zoned, workload)
    print("Count-balanced zones (the paper's $bucketAuto):")
    print("  weighted straggler docs: %.0f   avg nodes/query: %.1f\n"
          % (straggler, nodes))

    adaptive = deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=8),
        chunk_max_bytes=24 * 1024,
        loader=BulkLoader(batch_size=2000),
    )
    configure_workload_aware_zones(
        adaptive.cluster, adaptive.collection, workload,
        adaptive.approach.encoder,
    )
    adaptive.zones_enabled = True
    straggler_a, nodes_a = measure_workload(adaptive, workload)
    print("Workload-aware zones (expected-load balancing):")
    print("  weighted straggler docs: %.0f   avg nodes/query: %.1f\n"
          % (straggler_a, nodes_a))
    print(
        "The hot region spreads over more shards, so each hot query's\n"
        "slowest node does less work — at the cost of uneven document\n"
        "counts per shard.\n"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cluster.json")
        dump_cluster(adaptive.cluster, path)
        size_kb = os.path.getsize(path) / 1024
        restored = load_cluster(path)
        totals = restored.collection_totals("traces")
        print(
            "Snapshot: wrote %s (%.0f KB), restored %d documents across "
            "%d shards" % (
                os.path.basename(path),
                size_kb,
                totals["count"],
                len(restored.shards),
            )
        )


if __name__ == "__main__":
    main()
