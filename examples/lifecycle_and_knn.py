"""Day-2 operations: cold-storage archival and nearest-vehicle search.

The paper's introduction motivates the system with fleet operators who
"apply data analysis techniques only on recent subsets of their
historical database, while older data is kept in cold storage".  This
example runs that lifecycle on a live cluster:

1. load five months of traces;
2. archive everything older than two months to a cold JSON file, and
   show the hot tier shrinking while recent queries still work;
3. answer an operational question over the hot tier — "which 5
   vehicles passed closest to the depot last week?" — with k-NN over
   the Hilbert index;
4. restore the archive for a historical re-analysis.

Run:  python examples/lifecycle_and_knn.py
"""

import datetime as dt
import os
import tempfile

from repro.cluster.cluster import ClusterTopology
from repro.core import (
    archive_before,
    deploy_approach,
    knn,
    make_approach,
    restore_archive,
)
from repro.core.loader import BulkLoader
from repro.datagen import FleetConfig, FleetGenerator
from repro.geo import Point

UTC = dt.timezone.utc
DEPOT = Point(23.7275, 37.9838)  # central Athens depot


def main() -> None:
    print("Loading 8,000 traces (Jul-Nov 2018) into a 6-shard hil cluster ...")
    docs = FleetGenerator(FleetConfig(n_vehicles=60)).generate_list(8000)
    deployment = deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=6),
        chunk_max_bytes=24 * 1024,
        loader=BulkLoader(batch_size=2000),
    )
    total = deployment.totals()["count"]
    print("  hot tier: %d documents\n" % total)

    with tempfile.TemporaryDirectory() as tmp:
        cold_path = os.path.join(tmp, "2018H2_cold.json")
        cutoff = dt.datetime(2018, 9, 1, tzinfo=UTC)
        print("Archiving everything before %s ..." % cutoff.date())
        result = archive_before(
            deployment.cluster, deployment.collection, cutoff, cold_path
        )
        print(
            "  archived %d documents to %s (%.0f KB); hot tier now %d\n"
            % (
                result.archived,
                os.path.basename(cold_path),
                os.path.getsize(cold_path) / 1024,
                result.remaining,
            )
        )

        print("Nearest 5 vehicles to the depot, first week of September:")
        neighbours = knn(
            deployment,
            DEPOT,
            k=5,
            time_from=dt.datetime(2018, 9, 1, tzinfo=UTC),
            time_to=dt.datetime(2018, 9, 8, tzinfo=UTC),
        )
        for n in neighbours:
            print(
                "  vehicle %-4s at %.2f km  (%s)"
                % (
                    n.document["vehicle_id"],
                    n.distance_km,
                    n.document["date"].strftime("%Y-%m-%d %H:%M"),
                )
            )
        print()

        print("Restoring the cold tier for a historical study ...")
        restored = restore_archive(deployment.cluster, cold_path)
        print(
            "  restored %d documents; hot tier back to %d"
            % (restored, deployment.totals()["count"])
        )


if __name__ == "__main__":
    main()
