"""LockOrderSanitizer unit behaviour: edges, violations, wrappers."""

import threading

import pytest

from repro.sanitizer import (
    LockOrderSanitizer,
    ObservedEdge,
    SanitizedLock,
    SanitizedReadWriteLock,
)

A = "tests.fixture.A"
B = "tests.fixture.B"
POOL = "tests.fixture.pool"


class TestEdgeRecording:
    def test_nested_acquisition_records_an_edge(self):
        san = LockOrderSanitizer()
        san.note_acquired(A, 0, "lock")
        san.note_acquired(B, 0, "lock")
        san.note_released(B, 0, "lock")
        san.note_released(A, 0, "lock")
        assert san.observed_edges() == {ObservedEdge(A, B, False)}
        assert san.violations() == []

    def test_opposite_orders_close_a_cycle(self):
        san = LockOrderSanitizer()
        # Sequential, single-threaded — lockdep-style accumulation
        # catches the cycle without any real deadlock.
        san.note_acquired(A, 0, "lock")
        san.note_acquired(B, 0, "lock")
        san.note_released(B, 0, "lock")
        san.note_released(A, 0, "lock")
        san.note_acquired(B, 0, "lock")
        san.note_acquired(A, 0, "lock")
        san.note_released(A, 0, "lock")
        san.note_released(B, 0, "lock")
        kinds = [v.kind for v in san.violations()]
        assert kinds == ["lock-order-cycle"]
        with pytest.raises(AssertionError, match="lock-order-cycle"):
            san.assert_clean()

    def test_ascending_ranks_are_an_ordered_self_edge(self):
        san = LockOrderSanitizer()
        for rank in range(3):
            san.note_acquired(POOL, rank, "read")
        for rank in range(3):
            san.note_released(POOL, rank, "read")
        assert san.observed_edges() == {ObservedEdge(POOL, POOL, True)}
        assert san.violations() == []

    def test_descending_ranks_are_an_inversion(self):
        san = LockOrderSanitizer()
        san.note_acquired(POOL, 2, "read")
        san.note_acquired(POOL, 0, "read")
        assert [v.kind for v in san.violations()] == [
            "lock-order-inversion"
        ]
        assert ObservedEdge(POOL, POOL, False) in san.observed_edges()

    def test_one_descending_observation_poisons_orderedness(self):
        san = LockOrderSanitizer()
        san.note_acquired(POOL, 0, "read")
        san.note_acquired(POOL, 1, "read")
        san.note_acquired(POOL, 0, "write")  # rank goes backwards
        edges = {(e.src, e.dst): e.ordered for e in san.observed_edges()}
        assert edges[(POOL, POOL)] is False

    def test_reentrant_acquire_is_flagged(self):
        san = LockOrderSanitizer()
        san.note_acquired(A, 0, "lock")
        san.note_acquired(A, 0, "lock")
        assert [v.kind for v in san.violations()] == ["reentrant-acquire"]

    def test_unbalanced_release_is_flagged(self):
        san = LockOrderSanitizer()
        san.note_released(A, 0, "lock")
        assert [v.kind for v in san.violations()] == ["unbalanced-release"]

    def test_held_stacks_are_per_thread(self):
        san = LockOrderSanitizer()
        san.note_acquired(A, 0, "lock")
        seen = []

        def other():
            # This thread holds nothing, so acquiring B here must not
            # create an A → B edge.
            san.note_acquired(B, 0, "lock")
            san.note_released(B, 0, "lock")
            seen.append(True)

        t = threading.Thread(target=other)
        t.start()
        t.join(timeout=10)
        san.note_released(A, 0, "lock")
        assert seen == [True]
        assert san.observed_edges() == set()


class TestLongReadHold:
    def test_long_read_hold_is_reported(self):
        san = LockOrderSanitizer(long_read_hold_s=0.0)
        san.note_acquired(A, 0, "read")
        san.note_released(A, 0, "read")
        assert [v.kind for v in san.violations()] == ["long-read-hold"]

    def test_short_read_hold_is_fine(self):
        san = LockOrderSanitizer(long_read_hold_s=60.0)
        san.note_acquired(A, 0, "read")
        san.note_released(A, 0, "read")
        assert san.violations() == []

    def test_write_holds_are_not_judged_by_the_read_threshold(self):
        san = LockOrderSanitizer(long_read_hold_s=0.0)
        san.note_acquired(A, 0, "write")
        san.note_released(A, 0, "write")
        assert san.violations() == []


class TestSanitizedWrappers:
    def test_sanitized_lock_reports_and_locks(self):
        san = LockOrderSanitizer()
        lock = SanitizedLock(san, A)
        with lock:
            assert lock.locked()
        other = SanitizedLock(san, B)
        with lock:
            with other:
                pass
        assert ObservedEdge(A, B, False) in san.observed_edges()
        assert san.violations() == []

    def test_failed_try_acquire_is_not_recorded(self):
        san = LockOrderSanitizer()
        lock = SanitizedLock(san, A)
        assert lock.acquire()
        grabbed = []

        def contender():
            grabbed.append(lock.acquire(blocking=False))

        t = threading.Thread(target=contender)
        t.start()
        t.join(timeout=10)
        lock.release()
        assert grabbed == [False]
        assert san.violations() == []

    def test_sanitized_rwlock_read_and_write(self):
        san = LockOrderSanitizer()
        lock = SanitizedReadWriteLock(san, A)
        assert lock.acquire_read()
        lock.release_read()
        assert lock.acquire_write()
        lock.release_write()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert san.violations() == []

    def test_rwlock_timeout_is_not_recorded(self):
        san = LockOrderSanitizer()
        lock = SanitizedReadWriteLock(san, A)
        assert lock.acquire_write()
        results = []

        def reader():
            results.append(lock.acquire_read(timeout=0.01))

        t = threading.Thread(target=reader)
        t.start()
        t.join(timeout=10)
        lock.release_write()
        assert results == [False]
        # Only the write transition was ever noted.
        assert san.violations() == []
