"""Mechanics of the cache epoch tracer.

The reconstruction suite (``tests/analysis/test_cache_reconstruction``)
proves the tracer catches the three CC bug classes end to end; this
module pins the primitives those tests lean on — the generation
vector, fill stamps, derivation-time snapshots, hit rechecks — and
smoke-tests the shipped-cache instrumentation hooks.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.errors import PlanError
from repro.sanitizer import (
    CacheTracer,
    instrument_plan_cache,
    instrument_targeting_cache,
)
from repro.service.service import QueryService


class TestGenerationVector:
    def test_advance_is_per_domain_and_monotonic(self):
        tracer = CacheTracer()
        assert tracer.generation("metadata") == 0
        assert tracer.advance("metadata") == 1
        assert tracer.advance("metadata") == 2
        assert tracer.generation("metadata") == 2
        assert tracer.generation("ddl:t") == 0

    def test_snapshot_is_a_frozen_copy(self):
        tracer = CacheTracer()
        tracer.advance("metadata")
        snap = tracer.snapshot()
        tracer.advance("metadata")
        assert snap == {"metadata": 1}
        assert tracer.generation("metadata") == 2


class TestFillsAndHits:
    def test_fresh_hit_is_clean(self):
        tracer = CacheTracer()
        tracer.advance("metadata")
        tracer.record_fill("c", "k", ("metadata",))
        assert not tracer.check_hit("c", "k", ("metadata",))
        tracer.assert_clean()

    def test_hit_after_advance_is_stale(self):
        tracer = CacheTracer()
        tracer.record_fill("c", "k", ("metadata",))
        tracer.advance("metadata")
        assert tracer.check_hit("c", "k", ("metadata",))
        (violation,) = tracer.violations()
        assert violation.kind == "stale-hit"
        assert violation.family == "CC003"
        assert "filled@0 current@1" in violation.detail

    def test_family_is_caller_supplied(self):
        tracer = CacheTracer()
        tracer.record_fill("c", "k", ("metadata",))
        tracer.advance("metadata")
        tracer.check_hit("c", "k", ("metadata",), family="CC002")
        (violation,) = tracer.violations()
        assert violation.family == "CC002"

    def test_only_declared_domains_are_checked(self):
        tracer = CacheTracer()
        tracer.record_fill("c", "k", ("ddl:t",))
        tracer.advance("metadata")
        assert not tracer.check_hit("c", "k", ("ddl:t",))

    def test_derivation_snapshot_backdates_the_stamp(self):
        tracer = CacheTracer()
        tracer.advance("metadata")
        snap = tracer.snapshot()
        # The mutation lands between derivation and fill; a fill-time
        # stamp would hide it, the snapshot stamp exposes it.
        tracer.advance("metadata")
        tracer.record_fill("c", "k", ("metadata",), at=snap)
        assert tracer.check_hit("c", "k", ("metadata",), family="CC002")

    def test_unknown_entries_are_skipped(self):
        tracer = CacheTracer()
        tracer.advance("metadata")
        assert not tracer.check_hit("c", "never-filled", ("metadata",))
        tracer.assert_clean()

    def test_forget_drops_the_stamp(self):
        tracer = CacheTracer()
        tracer.record_fill("c", "k", ("metadata",))
        tracer.forget("c", "k")
        tracer.advance("metadata")
        assert not tracer.check_hit("c", "k", ("metadata",))

    def test_assert_clean_raises_with_every_violation(self):
        tracer = CacheTracer()
        tracer.record_fill("c", "k1", ("metadata",))
        tracer.record_fill("c", "k2", ("metadata",))
        tracer.advance("metadata")
        tracer.check_hit("c", "k1", ("metadata",))
        tracer.check_hit("c", "k2", ("metadata",))
        with pytest.raises(AssertionError, match="2 stale hit"):
            tracer.assert_clean()


@pytest.fixture
def service():
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=2), chunk_max_bytes=4 * 1024
    )
    cluster.shard_collection("t", [("k", 1)])
    with QueryService(cluster) as svc:
        yield svc


class TestInstrumentation:
    def test_targeting_cache_fills_and_rechecks(self, service):
        tracer = instrument_targeting_cache(service.cluster, CacheTracer())
        service.insert_many(
            "t", [{"_id": i, "k": i} for i in range(20)]
        )
        service.find("t", {"k": {"$gte": 0, "$lt": 10}})
        service.find("t", {"k": {"$gte": 0, "$lt": 10}})
        assert service.cluster.targeting_cache.stats()["hits"] > 0
        tracer.assert_clean()

    def test_targeting_bump_advances_metadata_domain(self, service):
        tracer = instrument_targeting_cache(service.cluster, CacheTracer())
        before = tracer.generation("metadata")
        service.cluster._bump_metadata_version()
        assert tracer.generation("metadata") == before + 1

    def test_plan_cache_roundtrip_is_clean(self, service):
        tracer = instrument_plan_cache(service, CacheTracer())
        service.insert_many(
            "t", [{"_id": i, "k": i, "v": i % 3} for i in range(20)]
        )
        service.create_index("t", [("v", 1)], name="v_idx")
        for _ in range(3):
            service.find("t", {"v": 1})
        assert tracer.generation("ddl:t") == 1
        service.drop_index("t", "v_idx")
        assert tracer.generation("ddl:t") == 2
        service.find("t", {"v": 1})
        tracer.assert_clean()

    def test_broken_invalidation_would_be_caught(self, service):
        """Disable the plan cache's DDL invalidation: the tracer trips.

        This is the tracer's reason to exist — it advances the domain
        at the service entry point, independently of the cache's own
        plumbing, so severing that plumbing turns the next hit stale.
        """
        tracer = instrument_plan_cache(service, CacheTracer())
        service.insert_many(
            "t", [{"_id": i, "k": i, "v": i % 3} for i in range(20)]
        )
        service.create_index("t", [("v", 1)], name="v_idx")
        for _ in range(2):
            service.find("t", {"v": 1})
        assert service.plan_cache is not None
        service.plan_cache.invalidate_collection = lambda collection: 0
        service.drop_index("t", "v_idx")
        # The stale entry still hints the dropped index; the tracer
        # records the stale hit at lookup time, before the planner
        # discovers the hint is unusable and raises.
        with pytest.raises(PlanError):
            service.find("t", {"v": 1})
        assert tracer.violations(), "severed invalidation must surface"
        assert {v.family for v in tracer.violations()} == {"CC003"}
