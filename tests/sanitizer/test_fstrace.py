"""The fs-trace shim itself: recording, checkers, crash injection.

The reconstruction suite (``tests/analysis/test_fs_reconstruction.py``)
proves the oracle catches the PR-6 bug classes end to end; this module
pins down the mechanics those tests rely on — namespace installation
and restoration, event ordering, the online checkers' exact trigger
conditions, and the crash boundary's snapshot semantics.
"""

import os
import types

import pytest

from repro.sanitizer import (
    MUTATING_OPS,
    FsTracer,
    FsViolation,
    InjectedCrash,
    cross_validate_fs,
)


def make_module(name, source):
    """A throwaway module the tracer can shim, built from source."""
    module = types.ModuleType(name)
    module.__dict__["os"] = os
    exec(compile(source, name, "exec"), module.__dict__)
    return module


WRITER = """
import os

def publish(path, payload, fsync=True):
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)

def dirsync(directory):
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
"""


class TestInstallation:
    def test_install_shims_and_uninstall_restores(self):
        module = make_module("fstrace_fixture_install", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        assert module.os is not os
        assert "open" in module.__dict__
        tracer.uninstall()
        assert module.os is os
        assert "open" not in module.__dict__

    def test_double_install_is_rejected(self):
        module = make_module("fstrace_fixture_double", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        try:
            # A second install must fail rather than stack proxies on
            # proxies (uninstall could then never reach the real os).
            with pytest.raises(RuntimeError):
                tracer.install([module])
        finally:
            tracer.uninstall()

    def test_uninstalled_tracer_records_nothing_further(self, tmp_path):
        module = make_module("fstrace_fixture_inert", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.publish(str(tmp_path / "a"), b"data")
        recorded = len(tracer.events)
        tracer.uninstall()
        module.publish(str(tmp_path / "b"), b"data")
        assert len(tracer.events) == recorded


class TestRecording:
    def test_events_arrive_in_execution_order(self, tmp_path):
        module = make_module("fstrace_fixture_order", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.publish(str(tmp_path / "doc"), b"payload")
        module.dirsync(str(tmp_path))
        tracer.uninstall()
        ops = [event.op for event in tracer.events]
        assert ops == [
            "open",
            "write",
            "flush",
            "fsync",
            "close",
            "replace",
            "open",
            "dirfsync",
            "close",
        ]
        assert [e.seq for e in tracer.events] == list(range(len(ops)))
        write = tracer.events[1]
        assert write.size == len(b"payload")
        assert write.path.endswith("doc.tmp")

    def test_directory_fds_classify_fsync_as_dirfsync(self, tmp_path):
        module = make_module("fstrace_fixture_dirfd", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.dirsync(str(tmp_path))
        tracer.uninstall()
        assert [e.op for e in tracer.events] == [
            "open",
            "dirfsync",
            "close",
        ]

    def test_mutation_count_tracks_only_mutating_ops(self, tmp_path):
        module = make_module("fstrace_fixture_count", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.publish(str(tmp_path / "doc"), b"payload")
        tracer.uninstall()
        expected = sum(
            1 for e in tracer.events if e.op in MUTATING_OPS
        )
        assert tracer.mutation_count == expected == 3


class TestOnlineCheckers:
    def test_unsynced_rename_is_fs001(self, tmp_path):
        module = make_module("fstrace_fixture_fs001", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.publish(str(tmp_path / "doc"), b"payload", fsync=False)
        tracer.uninstall()
        (violation,) = tracer.violations()
        assert violation.family == "FS001"
        assert violation.kind == "unsynced-rename"

    def test_fsync_covered_rename_is_clean(self, tmp_path):
        module = make_module("fstrace_fixture_fs001c", WRITER)
        tracer = FsTracer()
        tracer.install([module])
        module.publish(str(tmp_path / "doc"), b"payload", fsync=True)
        tracer.uninstall()
        tracer.assert_clean()

    def test_same_thread_unlink_after_dirfsync_is_clean(self, tmp_path):
        source = WRITER + """
def commit(path, stale):
    publish(path, b"new state")
    dirsync(os.path.dirname(path))
    os.remove(stale)
"""
        module = make_module("fstrace_fixture_fs002c", source)
        stale = tmp_path / "stale"
        stale.write_bytes(b"old")
        tracer = FsTracer()
        tracer.install([module])
        module.commit(str(tmp_path / "doc"), str(stale))
        tracer.uninstall()
        tracer.assert_clean()

    def test_unlink_before_dirfsync_is_fs002(self, tmp_path):
        source = WRITER + """
def commit(path, stale):
    publish(path, b"new state")
    os.remove(stale)
"""
        module = make_module("fstrace_fixture_fs002", source)
        stale = tmp_path / "stale"
        stale.write_bytes(b"old")
        tracer = FsTracer()
        tracer.install([module])
        module.commit(str(tmp_path / "doc"), str(stale))
        tracer.uninstall()
        (violation,) = tracer.violations()
        assert violation.family == "FS002"
        assert violation.kind == "unlink-before-dirfsync"

    def test_pread_after_close_is_fs003(self, tmp_path):
        source = """
import os

def read_then_retire(path):
    fh = open(path, "rb")
    fd = fh.fileno()
    first = os.pread(fd, 4, 0)
    fh.close()
    try:
        os.pread(fd, 4, 0)
    except OSError:
        pass
    return first
"""
        module = make_module("fstrace_fixture_fs003", source)
        path = tmp_path / "run"
        path.write_bytes(b"payload")
        tracer = FsTracer()
        tracer.install([module])
        assert module.read_then_retire(str(path)) == b"payl"
        tracer.uninstall()
        (violation,) = tracer.violations()
        assert violation.family == "FS003"
        assert violation.kind == "pread-after-close"

    def test_assert_clean_names_every_violation(self):
        tracer = FsTracer()
        tracer.record_violation(
            FsViolation(
                kind="unsynced-rename",
                family="FS001",
                detail="synthetic",
                seq=0,
            )
        )
        with pytest.raises(AssertionError, match="FS001/unsynced-rename"):
            tracer.assert_clean()


class TestCrashInjection:
    def test_boundary_snapshots_before_the_nth_mutation(self, tmp_path):
        module = make_module("fstrace_fixture_crash", WRITER)
        work = tmp_path / "work"
        snap = tmp_path / "snap"
        work.mkdir()
        # Mutations in publish(): write(1) fsync(2) replace(3).  Crash
        # at boundary 3: the temp file exists with its payload, the
        # rename never happened.
        tracer = FsTracer(
            crash_after=3, crash_dir=str(work), snapshot_dir=str(snap)
        )
        tracer.install([module])
        with pytest.raises(InjectedCrash):
            module.publish(str(work / "doc"), b"payload")
        tracer.uninstall()
        assert tracer.crash_triggered
        assert sorted(p.name for p in snap.iterdir()) == ["doc.tmp"]
        assert (snap / "doc.tmp").read_bytes() == b"payload"

    def test_crash_requires_snapshot_configuration(self):
        with pytest.raises(ValueError):
            FsTracer(crash_after=3)

    def test_tracer_is_inert_after_the_crash(self, tmp_path):
        module = make_module("fstrace_fixture_inert2", WRITER)
        work = tmp_path / "work"
        snap = tmp_path / "snap"
        work.mkdir()
        tracer = FsTracer(
            crash_after=1, crash_dir=str(work), snapshot_dir=str(snap)
        )
        tracer.install([module])
        with pytest.raises(InjectedCrash):
            module.publish(str(work / "doc"), b"payload")
        before = len(tracer.events)
        module.publish(str(work / "doc"), b"payload")  # survives: inert
        tracer.uninstall()
        assert len(tracer.events) == before
        assert (work / "doc").read_bytes() == b"payload"


class TestCrossValidationScope:
    def test_untraced_paths_are_out_of_scope(self):
        from repro.analysis.findings import Finding, Severity

        finding = Finding(
            rule_id="FS002",
            severity=Severity.ERROR,
            message="synthetic",
            path="src/repro/service/service.py",
            line=1,
            col=0,
            symbol="x",
        )
        report = cross_validate_fs(
            [finding], [], ["src/repro/docstore/lsm/engine.py"]
        )
        assert report.ok

    def test_fs005_and_fs006_are_never_demanded_back(self):
        from repro.analysis.findings import Finding, Severity

        findings = [
            Finding(
                rule_id=rule,
                severity=Severity.INFO,
                message="synthetic",
                path="src/repro/docstore/lsm/engine.py",
                line=1,
                col=0,
                symbol="x",
            )
            for rule in ("FS005", "FS006")
        ]
        report = cross_validate_fs(
            findings, [], ["src/repro/docstore/lsm/engine.py"]
        )
        assert report.ok
