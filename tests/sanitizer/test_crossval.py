"""Static-vs-runtime cross-validation, including the acceptance
scenario: the runtime sanitizer reproduces the reconstructed
cross-function cycle that LK001 flags statically."""

import random
from pathlib import Path

import pytest

from repro.analysis.lockgraph import build_lock_order_graph
from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.sanitizer import (
    EXECUTOR_CLIENT_LOCK_KEY,
    SHARD_LOCKS_KEY,
    LockOrderSanitizer,
    SanitizedLock,
    cross_validate,
    instrument_query_service,
)
from repro.service.service import QueryService, ServiceConfig
from tests.analysis.executor_lockorder_reconstruction import FanoutFrontend
from tests.analysis.lockorder_reconstruction import TransferLedger

REPO_ROOT = Path(__file__).resolve().parents[2]
RECONSTRUCTION = (
    REPO_ROOT / "tests" / "analysis" / "lockorder_reconstruction.py"
)
EXECUTOR_RECONSTRUCTION = (
    REPO_ROOT / "tests" / "analysis" / "executor_lockorder_reconstruction.py"
)

LEDGER_KEY = (
    "tests.analysis.lockorder_reconstruction.TransferLedger.ledger_lock"
)
AUDIT_KEY = (
    "tests.analysis.lockorder_reconstruction.TransferLedger.audit_lock"
)
FANOUT_SHARD_KEY = (
    "tests.analysis.executor_lockorder_reconstruction"
    ".FanoutFrontend.shard_lock"
)
FANOUT_CLIENT_KEY = (
    "tests.analysis.executor_lockorder_reconstruction"
    ".FanoutFrontend.client_lock"
)


def instrumented_ledger(sanitizer):
    """A TransferLedger whose locks report to ``sanitizer``, keyed by
    the same registry symbols the static analysis derives."""
    ledger = TransferLedger()
    ledger.ledger_lock = SanitizedLock(sanitizer, LEDGER_KEY)
    ledger.audit_lock = SanitizedLock(sanitizer, AUDIT_KEY)
    return ledger


def reconstruction_graph():
    return build_lock_order_graph([str(RECONSTRUCTION)], REPO_ROOT)


class TestReconstructionRuntime:
    """The runtime half of the acceptance criterion."""

    def test_sanitizer_detects_the_cycle_sequentially(self):
        # Single-threaded, sequential — no adversarial interleaving is
        # needed, because the observed graph is cumulative.
        san = LockOrderSanitizer()
        ledger = instrumented_ledger(san)
        ledger.debit(5)
        ledger.audit_scan()
        kinds = [v.kind for v in san.violations()]
        assert "lock-order-cycle" in kinds
        (cycle,) = [
            v for v in san.violations() if v.kind == "lock-order-cycle"
        ]
        assert LEDGER_KEY in cycle.detail and AUDIT_KEY in cycle.detail
        with pytest.raises(AssertionError, match="lock-order-cycle"):
            san.assert_clean()

    def test_runtime_and_static_graphs_cross_validate(self):
        # Both directions: every runtime edge has a static counterpart
        # AND the static cycle was reproduced by the run above.
        san = LockOrderSanitizer()
        ledger = instrumented_ledger(san)
        ledger.debit(5)
        ledger.audit_scan()
        report = cross_validate(
            reconstruction_graph(), san, [LEDGER_KEY, AUDIT_KEY]
        )
        assert report.ok
        assert "OK" in report.render()


class TestExecutorTopologyReconstruction:
    """Runtime half of the process-backend acceptance scenario: the
    shard-lock/client-lock inversion LK001 flags statically is also
    tripped by the runtime sanitizer, and the two oracles agree."""

    def instrumented_frontend(self, sanitizer):
        frontend = FanoutFrontend()
        frontend.shard_lock = SanitizedLock(sanitizer, FANOUT_SHARD_KEY)
        frontend.client_lock = SanitizedLock(sanitizer, FANOUT_CLIENT_KEY)
        return frontend

    def test_sanitizer_detects_the_inverted_resync(self):
        san = LockOrderSanitizer()
        frontend = self.instrumented_frontend(san)
        frontend.serve()
        frontend.resync_replica()
        kinds = [v.kind for v in san.violations()]
        assert "lock-order-cycle" in kinds
        (cycle,) = [
            v for v in san.violations() if v.kind == "lock-order-cycle"
        ]
        assert FANOUT_SHARD_KEY in cycle.detail
        assert FANOUT_CLIENT_KEY in cycle.detail
        with pytest.raises(AssertionError, match="lock-order-cycle"):
            san.assert_clean()

    def test_runtime_and_static_graphs_cross_validate(self):
        san = LockOrderSanitizer()
        frontend = self.instrumented_frontend(san)
        frontend.serve()
        frontend.resync_replica()
        static = build_lock_order_graph(
            [str(EXECUTOR_RECONSTRUCTION)], REPO_ROOT
        )
        report = cross_validate(
            static, san, [FANOUT_SHARD_KEY, FANOUT_CLIENT_KEY]
        )
        assert report.ok
        assert "OK" in report.render()


class TestCrossValidateFailures:
    def test_unexplained_runtime_edge_fails(self):
        # An edge between keys the static graph has never heard of —
        # the shape an analyzer blind spot would take.
        san = LockOrderSanitizer()
        san.note_acquired("tests.fixture.phantom_a", 0, "lock")
        san.note_acquired("tests.fixture.phantom_b", 0, "lock")
        san.note_released("tests.fixture.phantom_b", 0, "lock")
        san.note_released("tests.fixture.phantom_a", 0, "lock")
        report = cross_validate(reconstruction_graph(), san, [])
        assert not report.ok
        assert len(report.unexplained_runtime_edges) == 1
        assert "no static counterpart" in report.render()

    def test_unreproduced_static_cycle_fails(self):
        # Both cycle members were instrumented but the workload never
        # tripped the sanitizer: either a workload gap or a static
        # false positive — both demand attention.
        san = LockOrderSanitizer()
        report = cross_validate(
            reconstruction_graph(), san, [LEDGER_KEY, AUDIT_KEY]
        )
        assert not report.ok
        assert report.unreproduced_static_cycles == [
            sorted([AUDIT_KEY, LEDGER_KEY])
        ]
        assert "never reproduced" in report.render()

    def test_justified_cycle_passes(self):
        san = LockOrderSanitizer()
        graph = reconstruction_graph()
        (cycle,) = graph.cycles()
        report = cross_validate(
            graph,
            san,
            [LEDGER_KEY, AUDIT_KEY],
            justified_cycles=[cycle],
        )
        assert report.ok

    def test_uninstrumented_cycles_are_not_demanded(self):
        # The sanitizer never saw these locks, so their static cycle
        # cannot be expected back from the runtime graph.
        san = LockOrderSanitizer()
        report = cross_validate(reconstruction_graph(), san, [])
        assert report.ok


class TestServiceWorkload:
    """Live instrumented QueryService vs. the shipped-src graph."""

    def _small_cluster(self):
        cluster = ShardedCluster(
            topology=ClusterTopology(n_shards=4),
            chunk_max_bytes=4 * 1024,
        )
        cluster.shard_collection("t", [("k", 1)])
        rng = random.Random(11)
        cluster.insert_many(
            "t",
            [
                {"_id": i, "k": rng.randrange(0, 10_000), "group": i % 7}
                for i in range(200)
            ],
        )
        return cluster

    def test_workload_matches_static_graph(self):
        san = LockOrderSanitizer()
        with QueryService(self._small_cluster()) as service:
            instrument_query_service(service, san)
            for lo in range(0, 8_000, 1_000):
                service.find("t", {"k": {"$gte": lo, "$lt": lo + 1_500}})
            service.insert_many(
                "t", [{"_id": 200 + i, "k": i} for i in range(20)]
            )
            service.delete_many("t", {"group": 3})
        assert san.violations() == []
        # The workload walks the shard locks in sorted order, so the
        # only runtime edge is the ordered self-edge — which the static
        # graph must (and does) explain.
        static = build_lock_order_graph(["src"], REPO_ROOT)
        report = cross_validate(static, san, [SHARD_LOCKS_KEY])
        assert report.ok, report.render()
        assert san.observed_edges() != set()

    def test_process_backend_workload_matches_static_graph(self):
        # The new parent-side topology: the serving path nests each
        # worker client's lock under the shard read locks, never the
        # other way around, and never client under client.  The same
        # workload as above, run on the process backend, must observe
        # exactly edges the shipped-src graph explains.
        san = LockOrderSanitizer()
        config = ServiceConfig(executor="process")
        with QueryService(self._small_cluster(), config) as service:
            instrument_query_service(service, san)
            for lo in range(0, 8_000, 1_000):
                service.find("t", {"k": {"$gte": lo, "$lt": lo + 1_500}})
            service.insert_many(
                "t", [{"_id": 200 + i, "k": i} for i in range(20)]
            )
            service.delete_many("t", {"group": 3})
        assert san.violations() == []
        static = build_lock_order_graph(["src"], REPO_ROOT)
        report = cross_validate(
            static, san, [SHARD_LOCKS_KEY, EXECUTOR_CLIENT_LOCK_KEY]
        )
        assert report.ok, report.render()
        # The defining edge of the process topology must actually have
        # been exercised, not vacuously absent.
        assert (SHARD_LOCKS_KEY, EXECUTOR_CLIENT_LOCK_KEY) in {
            (edge.src, edge.dst) for edge in san.observed_edges()
        }
