"""The LSM lock discipline, checked from both sides.

Satellite of the durable-write-path PR: the deliberate
flush-vs-compaction inversion in ``lsm_lockorder_reconstruction.py``
must be caught *statically* (LK001 on the fixture) and *at runtime*
(sanitized locks observing a sequential execution), the two verdicts
must cross-validate, and the shipped engine — instrumented the same
way — must come out clean against the real static graph.
"""

from pathlib import Path

import pytest

from repro.analysis.checker import run_analysis
from repro.analysis.lockgraph import build_lock_order_graph
from repro.docstore.lsm import DurabilityConfig, LSMEngine
from repro.sanitizer import (
    LSM_INSTRUMENTED_KEYS,
    LockOrderSanitizer,
    SanitizedLock,
    cross_validate,
    instrument_lsm_engine,
)
from tests.analysis.lsm_lockorder_reconstruction import ShadowingCompactor

REPO_ROOT = Path(__file__).resolve().parents[2]
RECONSTRUCTION = Path(__file__).with_name("lsm_lockorder_reconstruction.py")

_PREFIX = "tests.analysis.lsm_lockorder_reconstruction.ShadowingCompactor."
WRITE_KEY = _PREFIX + "write_lock"
MANIFEST_KEY = _PREFIX + "manifest_lock"


def instrumented_compactor(sanitizer):
    """A ShadowingCompactor whose locks report to ``sanitizer``, keyed
    by the same registry symbols the static analysis derives."""
    core = ShadowingCompactor()
    core.write_lock = SanitizedLock(sanitizer, WRITE_KEY)
    core.manifest_lock = SanitizedLock(sanitizer, MANIFEST_KEY)
    return core


class TestReconstructionStatic:
    """The static half: LK001 sees what the LD rules cannot."""

    def test_intraprocedural_rules_are_blind_to_it(self):
        findings = run_analysis([str(RECONSTRUCTION)], root=REPO_ROOT)
        assert [
            f for f in findings if f.rule_id.startswith("LD")
        ] == []

    def test_lk001_flags_the_flush_vs_compaction_cycle(self):
        findings = run_analysis(
            [str(RECONSTRUCTION)], root=REPO_ROOT, select=["LK001"]
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "write_lock" in message and "manifest_lock" in message
        assert "cycle" in message


class TestReconstructionRuntime:
    """The runtime half: the sanitizer reproduces the same cycle."""

    def test_sanitizer_detects_the_cycle_sequentially(self):
        # flush then compact, one thread — the cumulative acquisition
        # graph closes the cycle without any adversarial timing.
        san = LockOrderSanitizer()
        core = instrumented_compactor(san)
        core.put(b"k", b"v")
        core.flush()
        core.compact()
        kinds = [v.kind for v in san.violations()]
        assert "lock-order-cycle" in kinds
        (cycle,) = [
            v for v in san.violations() if v.kind == "lock-order-cycle"
        ]
        assert WRITE_KEY in cycle.detail and MANIFEST_KEY in cycle.detail
        with pytest.raises(AssertionError, match="lock-order-cycle"):
            san.assert_clean()

    def test_runtime_and_static_verdicts_cross_validate(self):
        # Both directions: every runtime edge has a static counterpart
        # AND the static cycle was reproduced by the run.
        san = LockOrderSanitizer()
        core = instrumented_compactor(san)
        core.put(b"k", b"v")
        core.flush()
        core.compact()
        graph = build_lock_order_graph([str(RECONSTRUCTION)], REPO_ROOT)
        report = cross_validate(graph, san, [WRITE_KEY, MANIFEST_KEY])
        assert report.ok
        assert "OK" in report.render()


class TestShippedEngine:
    """The shipped engine under the same instrumentation is clean."""

    def _drive(self, engine):
        for i in range(120):
            engine.put_one(b"key-%04d" % i, b"value-%04d" % i * 8)
        for i in range(0, 60, 3):
            engine.delete_one(b"key-%04d" % i)
        engine.checkpoint()
        assert engine.get(b"key-0001") is not None
        assert engine.get(b"key-0000") is None
        list(engine.scan())

    def test_engine_lifecycle_is_clean_and_explained(self, tmp_path):
        san = LockOrderSanitizer()
        config = DurabilityConfig(
            directory=str(tmp_path),
            memtable_max_bytes=2_000,
            compaction_min_runs=2,
            compaction=False,
        )
        engine = instrument_lsm_engine(LSMEngine(config), san)
        engine.recover()
        self._drive(engine)
        engine.compact_now()
        engine.close()
        san.assert_clean()
        # Every observed edge must be one the analyzer derived from
        # the source: an unexplained edge is an analyzer blind spot.
        graph = build_lock_order_graph(["src"], REPO_ROOT)
        report = cross_validate(graph, san, LSM_INSTRUMENTED_KEYS)
        assert report.ok, report.render()

    def test_background_compactor_is_clean(self, tmp_path):
        san = LockOrderSanitizer()
        config = DurabilityConfig(
            directory=str(tmp_path),
            memtable_max_bytes=2_000,
            compaction_min_runs=2,
        )
        engine = instrument_lsm_engine(LSMEngine(config), san)
        engine.recover()
        self._drive(engine)
        engine.close()
        san.assert_clean()
