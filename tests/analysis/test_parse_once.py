"""The analyzer parses each file once per run, and ``--stats`` times it.

Regression net for the shared-AST restructure: per-module checkers
iterate the parsed modules instead of re-loading files, and the
project checkers receive the same objects through
:class:`~repro.analysis.checker.ProjectContext`.
"""

from __future__ import annotations

import ast
import io
import textwrap

import pytest

from repro.analysis.checker import run_analysis
from repro.analysis.cli import main

SOURCES = {
    "alpha.py": """
        def alpha():
            return 1
    """,
    "beta.py": """
        class BetaCache:
            def __init__(self):
                self._entries = {}

            def get(self, key):
                value = self._entries.get(key)
                if value is None:
                    return None
                return value

            def put(self, key, value):
                self._entries[key] = value
    """,
    "gamma.py": """
        import threading

        class Gamma:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                with self._lock:
                    return 1
    """,
}


@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    for name, body in SOURCES.items():
        (src / name).write_text(textwrap.dedent(body))
    return tmp_path


def test_each_file_is_parsed_exactly_once(tree, monkeypatch):
    counts = {}
    real_parse = ast.parse

    def counting_parse(source, filename="<unknown>", *args, **kwargs):
        if str(filename).endswith(".py"):
            counts[str(filename)] = counts.get(str(filename), 0) + 1
        return real_parse(source, filename, *args, **kwargs)

    monkeypatch.setattr(ast, "parse", counting_parse)
    run_analysis(["src"], root=tree)
    expected = {str(tree / "src" / name): 1 for name in SOURCES}
    assert counts == expected


def test_stats_out_records_parse_and_checker_phases(tree):
    timings = {}
    run_analysis(["src"], root=tree, stats_out=timings)
    assert "<parse>" in timings
    assert "cache-coherence" in timings
    assert all(seconds >= 0.0 for seconds in timings.values())


def test_cli_stats_prints_the_timing_table(tree):
    out = io.StringIO()
    code = main(
        ["src", "--root", str(tree), "--stats"], out=out
    )
    assert code == 0
    text = out.getvalue()
    assert "per-checker timing (seconds):" in text
    assert "<parse>" in text
    assert "cache-coherence" in text


def test_cli_without_stats_stays_quiet(tree):
    out = io.StringIO()
    code = main(["src", "--root", str(tree)], out=out)
    assert code == 0
    assert "per-checker timing" not in out.getvalue()
