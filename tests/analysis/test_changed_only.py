"""``--changed-only``: git scoping plus the call-graph dependent walk.

The mode must report a finding in an *unchanged* file when that file
calls into a changed one — editing a callee can change what a caller
inlines — and must stay silent about files the change cannot reach.
"""

import io
import subprocess

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.changed import (
    ChangedFilesError,
    changed_files,
    dependent_modules,
)
from repro.analysis.cli import main


def git(repo, *argv):
    subprocess.run(
        [
            "git",
            "-c",
            "user.email=test@example.com",
            "-c",
            "user.name=test",
            *argv,
        ],
        cwd=str(repo),
        check=True,
        capture_output=True,
    )


CALLEE = """
def helper():
    return 1
"""

# The caller carries a DT001 (iteration over a set expression) so a
# scoped run has something to report — or suppress.
CALLER = """
from callee import helper

def use():
    for item in {1, 2}:
        helper()
"""

UNRELATED = """
def lonely():
    for item in {3, 4}:
        pass
"""


@pytest.fixture
def repo(tmp_path):
    """A tmp git repo with caller/callee/unrelated committed clean."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "callee.py").write_text(CALLEE)
    (src / "caller.py").write_text(CALLER)
    (src / "unrelated.py").write_text(UNRELATED)
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedFiles:
    def test_lists_modified_and_untracked(self, repo):
        (repo / "src" / "callee.py").write_text(CALLEE + "\n# edited\n")
        (repo / "src" / "fresh.py").write_text("x = 1\n")
        assert changed_files(repo, "HEAD") == [
            "src/callee.py",
            "src/fresh.py",
        ]

    def test_clean_tree_changes_nothing(self, repo):
        assert changed_files(repo, "HEAD") == []

    def test_bad_ref_raises(self, repo):
        with pytest.raises(ChangedFilesError):
            changed_files(repo, "no-such-ref")


class TestDependentModules:
    def _graph(self, parse_modules):
        return build_call_graph(
            parse_modules(
                {
                    "src/repro/service/callee.py": """
                        def helper():
                            return 1
                    """,
                    "src/repro/service/caller.py": """
                        from repro.service.callee import helper

                        def use():
                            return helper()
                    """,
                    "src/repro/service/grandcaller.py": """
                        from repro.service.caller import use

                        def entry():
                            return use()
                    """,
                    "src/repro/service/unrelated.py": """
                        def lonely():
                            return 2
                    """,
                }
            )
        )

    def test_walk_is_caller_ward_and_transitive(self, parse_modules):
        scope = dependent_modules(
            ["src/repro/service/callee.py"], self._graph(parse_modules)
        )
        assert "src/repro/service/caller.py" in scope
        assert "src/repro/service/grandcaller.py" in scope
        assert "src/repro/service/unrelated.py" not in scope

    def test_callees_of_a_change_are_not_pulled_in(self, parse_modules):
        scope = dependent_modules(
            ["src/repro/service/caller.py"], self._graph(parse_modules)
        )
        # Editing the caller cannot change the callee's findings.
        assert "src/repro/service/callee.py" not in scope
        assert "src/repro/service/grandcaller.py" in scope

    def test_unknown_paths_stay_in_scope(self, parse_modules):
        scope = dependent_modules(
            ["docs/README.md"], self._graph(parse_modules)
        )
        assert scope == {"docs/README.md"}


class TestChangedOnlyCli:
    def _run(self, repo, *extra):
        out = io.StringIO()
        code = main(
            ["src", "--root", str(repo), *extra],
            out=out,
        )
        return code, out.getvalue()

    def test_full_run_reports_both_findings(self, repo):
        code, output = self._run(repo, "--select", "DT")
        assert code == 1
        assert "src/caller.py" in output
        assert "src/unrelated.py" in output

    def test_clean_tree_scopes_everything_out(self, repo):
        code, output = self._run(
            repo, "--select", "DT", "--changed-only", "--changed-ref", "HEAD"
        )
        assert code == 0
        assert "DT001" not in output

    def test_editing_the_callee_surfaces_the_callers_finding(self, repo):
        (repo / "src" / "callee.py").write_text(CALLEE + "\n# edited\n")
        code, output = self._run(
            repo, "--select", "DT", "--changed-only", "--changed-ref", "HEAD"
        )
        assert code == 1
        assert "src/caller.py" in output
        assert "src/unrelated.py" not in output

    def test_unrelated_edit_reports_only_itself(self, repo):
        (repo / "src" / "unrelated.py").write_text(
            UNRELATED + "\n# edited\n"
        )
        code, output = self._run(
            repo, "--select", "DT", "--changed-only", "--changed-ref", "HEAD"
        )
        assert code == 1
        assert "src/unrelated.py" in output
        assert "src/caller.py" not in output

    def test_bad_ref_is_a_usage_error(self, repo):
        code, output = self._run(
            repo, "--changed-only", "--changed-ref", "no-such-ref"
        )
        assert code == 2
        assert "error:" in output

    def test_write_baseline_refuses_a_scoped_run(self, repo):
        code, output = self._run(
            repo,
            "--changed-only",
            "--baseline",
            "b.json",
            "--write-baseline",
        )
        assert code == 2
        assert "--changed-only" in output


def _shipped_src_graph():
    from pathlib import Path

    from repro.analysis.checker import (
        ModuleInfo,
        iter_python_files,
        load_module,
    )

    root = Path(__file__).resolve().parents[2]
    modules = [
        loaded
        for loaded in (
            load_module(path, root)
            for path in iter_python_files(["src"], root)
        )
        if isinstance(loaded, ModuleInfo)
    ]
    return build_call_graph(modules)


class TestRealTreeStatsScope:
    """The dependent walk covers the statistics subsystem: editing the
    ANALYZE pass must re-run analysis on everything that consumes the
    catalog — the service that stamps and serves it, the chooser that
    prices plans from it, the load generator that reports plan
    outcomes, and the stats CLI."""

    def test_stats_edit_pulls_in_catalog_consumers(self):
        scope = dependent_modules(
            ["src/repro/docstore/stats.py"], _shipped_src_graph()
        )
        assert "src/repro/service/service.py" in scope
        assert "src/repro/core/chooser.py" in scope
        assert "src/repro/cli.py" in scope
        assert "src/repro/service/loadgen.py" in scope

    def test_chooser_is_a_leaf_of_the_src_graph(self):
        # The chooser's consumers are benchmarks and tests, outside
        # the src tree: editing it re-analyzes only itself.
        scope = dependent_modules(
            ["src/repro/core/chooser.py"], _shipped_src_graph()
        )
        assert scope == {"src/repro/core/chooser.py"}


class TestRealTreeExecutorScope:
    """The dependent walk on the shipped tree: editing the executor
    backend must re-run analysis on everything whose findings could
    shift — the service that inlines its mappers, the load generator
    that labels runs with the backend, and the sanitizer bridge that
    registers the worker instrumenter."""

    def _src_graph(self):
        from pathlib import Path

        from repro.analysis.checker import (
            ModuleInfo,
            iter_python_files,
            load_module,
        )

        root = Path(__file__).resolve().parents[2]
        modules = [
            loaded
            for loaded in (
                load_module(path, root)
                for path in iter_python_files(["src"], root)
            )
            if isinstance(loaded, ModuleInfo)
        ]
        return build_call_graph(modules)

    def test_executors_edit_pulls_in_the_service_layer(self):
        scope = dependent_modules(
            ["src/repro/service/executors.py"], self._src_graph()
        )
        assert "src/repro/service/service.py" in scope
        assert "src/repro/service/loadgen.py" in scope
        assert "src/repro/sanitizer/instrument.py" in scope
        # The docstore layer sits *below* the executors: its findings
        # cannot change, so it must stay out of scope.
        assert not any("repro/docstore/" in path for path in scope)

    def test_wire_edit_reaches_the_executors(self):
        scope = dependent_modules(
            ["src/repro/service/wire.py"], self._src_graph()
        )
        assert "src/repro/service/executors.py" in scope
        assert "src/repro/service/service.py" in scope
