"""The three PR-6 crash-consistency bugs, checked from both sides.

Tentpole of the FS-analysis PR: each reconstructed bug class must be
caught *statically* (an FS finding on the fixture) and *at runtime*
(the trace oracle observing or crash-replaying the same module), the
two verdicts must cross-validate, and the shipped engine — traced the
same way — must come out clean against the real static model.
"""

from pathlib import Path

import pytest

from repro.analysis.checker import run_analysis
from repro.docstore.lsm import DurabilityConfig, LSMEngine
from repro.sanitizer import (
    LSM_FS_PATHS,
    FsTracer,
    InjectedCrash,
    cross_validate_fs,
    sweep_crash_boundaries,
)
from tests.analysis.fs_reconstruction import (
    close_before_unlink,
    missing_dirfsync,
    swap_before_commit,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).with_name("fs_reconstruction")


def analyze(name):
    """Static FS findings for one reconstruction fixture."""
    return run_analysis(
        [str(FIXTURES / name)], root=REPO_ROOT, select=["FS"]
    )


def rel(name):
    """The fixture's repo-relative path (cross-validation scope)."""
    return "tests/analysis/fs_reconstruction/" + name


class TestMissingDirfsync:
    """Bug class 1: WAL deleted before the manifest rename is durable."""

    def test_static_checker_flags_exactly_fs002(self):
        findings = analyze("missing_dirfsync.py")
        assert {f.rule_id for f in findings} == {"FS002"}
        (finding,) = findings
        assert finding.symbol.endswith("publish_manifest")
        assert "directory fsync" in finding.message

    def _drive(self, tmp_path):
        wal = tmp_path / "wal-0000.log"
        wal.write_text("put k v\n")
        tracer = FsTracer()
        tracer.install([missing_dirfsync])
        try:
            missing_dirfsync.publish_manifest(
                str(tmp_path), "{}", str(wal)
            )
        finally:
            tracer.uninstall()
        return tracer

    def test_trace_oracle_observes_the_ordering(self, tmp_path):
        tracer = self._drive(tmp_path)
        families = {v.family for v in tracer.violations()}
        assert families == {"FS002"}
        with pytest.raises(AssertionError, match="unlink-before-dirfsync"):
            tracer.assert_clean()

    def test_both_verdicts_cross_validate(self, tmp_path):
        tracer = self._drive(tmp_path)
        report = cross_validate_fs(
            analyze("missing_dirfsync.py"),
            tracer.violations(),
            [rel("missing_dirfsync.py")],
        )
        assert report.ok, report.render()
        assert "OK" in report.render()

    def test_runtime_without_static_is_a_blind_spot(self, tmp_path):
        tracer = self._drive(tmp_path)
        report = cross_validate_fs(
            [], tracer.violations(), [rel("missing_dirfsync.py")]
        )
        assert not report.ok
        assert report.unexplained_runtime_violations
        assert "blind spot" in report.render()

    def test_static_without_runtime_needs_justification(self):
        findings = analyze("missing_dirfsync.py")
        report = cross_validate_fs(
            findings, [], [rel("missing_dirfsync.py")]
        )
        assert not report.ok
        assert report.unmanifested_static_findings
        justified = cross_validate_fs(
            findings,
            [],
            [rel("missing_dirfsync.py")],
            justified=[f.fingerprint for f in findings],
        )
        assert justified.ok


class TestCloseBeforeUnlink:
    """Bug class 2: runs retired by closing the fd readers still hold."""

    def test_static_checker_flags_exactly_fs003(self):
        findings = analyze("close_before_unlink.py")
        assert {f.rule_id for f in findings} == {"FS003"}
        (finding,) = findings
        assert finding.symbol.endswith("retire_all")

    def _drive(self, tmp_path):
        path = tmp_path / "run-0000.run"
        path.write_bytes(b"payload bytes")
        tracer = FsTracer()
        tracer.install([close_before_unlink])
        try:
            runs = close_before_unlink.RunSet()
            runs.add(close_before_unlink.Run(str(path)))
            snapshot = runs.snapshot()
            assert runs.read_all(7) == [b"payload"]
            runs.retire_all()
            # The snapshot holder races on: its descriptor is dead (or,
            # worse, recycled).  The oracle flags the pread either way.
            try:
                snapshot[0].read_at(7, 0)
            except OSError:
                pass
        finally:
            tracer.uninstall()
        return tracer

    def test_trace_oracle_observes_the_dead_fd(self, tmp_path):
        tracer = self._drive(tmp_path)
        families = {v.family for v in tracer.violations()}
        assert families == {"FS003"}
        with pytest.raises(AssertionError, match="pread-after-close"):
            tracer.assert_clean()

    def test_both_verdicts_cross_validate(self, tmp_path):
        tracer = self._drive(tmp_path)
        report = cross_validate_fs(
            analyze("close_before_unlink.py"),
            tracer.violations(),
            [rel("close_before_unlink.py")],
        )
        assert report.ok, report.render()


class TestSwapBeforeCommit:
    """Bug class 3: flush swaps engine state before the commit point."""

    def test_static_checker_flags_exactly_fs004(self):
        findings = analyze("swap_before_commit.py")
        assert {f.rule_id for f in findings} == {"FS004"}
        assert {f.symbol.split(".")[-1] for f in findings} == {"flush"}
        # Both premature swaps — the entry map and the memtable — are
        # individually pinned to their lines.
        assert len(findings) == 2

    @staticmethod
    def _workload(directory, tracer):
        acked = []
        engine = swap_before_commit.MiniEngine(directory)
        try:
            engine.recover()
            for i in range(4):
                engine.put("k%d" % i, "v%d" % i)
                if tracer.crash_triggered:
                    return acked
                acked.append("k%d" % i)
            engine.flush()
            engine.close()
        except InjectedCrash:
            pass
        return acked

    @staticmethod
    def _recover(snapshot_dir):
        engine = swap_before_commit.MiniEngine(snapshot_dir)
        engine.recover()
        keys = engine.keys()
        engine.close()
        return keys

    def _sweep(self, tmp_path):
        def make_dirs(boundary):
            work = tmp_path / ("work-%03d" % boundary)
            snap = tmp_path / ("snap-%03d" % boundary)
            work.mkdir()
            snap.mkdir()
            return str(work), str(snap)

        return sweep_crash_boundaries(
            self._workload,
            self._recover,
            make_dirs,
            modules=[swap_before_commit],
        )

    def test_crash_replay_loses_acknowledged_writes(self, tmp_path):
        results = self._sweep(tmp_path)
        assert results, "no crash boundary ever triggered"
        losses = [r for r in results if r.lost]
        assert losses, "no boundary lost an acknowledged write"
        # The lethal window: run durable, WAL gone, manifest not yet
        # committed — recovery sweeps the run as an orphan.
        assert any(set(r.lost) == set(r.acked) for r in losses)

    def test_replay_evidence_cross_validates_with_fs004(self, tmp_path):
        results = self._sweep(tmp_path)
        report = cross_validate_fs(
            analyze("swap_before_commit.py"),
            [],
            [rel("swap_before_commit.py")],
            replay_results=results,
        )
        assert report.ok, report.render()


class TestShippedEngine:
    """The shipped engine under the same oracle is clean, both ways."""

    def _drive(self, directory):
        config = DurabilityConfig(
            directory=directory,
            sync="always",
            memtable_max_bytes=1_000,
            compaction_min_runs=2,
            compaction=False,
        )
        engine = LSMEngine(config)
        engine.recover()
        for i in range(60):
            engine.put_one(b"key-%04d" % i, b"value-%04d" % i * 4)
        for i in range(0, 30, 3):
            engine.delete_one(b"key-%04d" % i)
        engine.checkpoint()
        while engine.compact_now():
            pass
        assert engine.get(b"key-0001") is not None
        assert engine.get(b"key-0000") is None
        list(engine.scan())
        engine.close()
        # Recovery under the shim too: the sweep path unlinks temp and
        # orphan files and must also explain its orderings.
        reopened = LSMEngine(config)
        reopened.recover()
        assert reopened.get(b"key-0001") is not None
        reopened.close()

    def test_full_lifecycle_is_clean_and_explained(self, tmp_path):
        tracer = FsTracer()
        with tracer:
            self._drive(str(tmp_path))
        tracer.assert_clean()
        assert tracer.events, "the shim recorded nothing"
        observed = {event.op for event in tracer.events}
        # The oracle saw the whole effect vocabulary of the write path.
        assert {
            "open",
            "write",
            "flush",
            "fsync",
            "dirfsync",
            "replace",
            "unlink",
            "close",
            "pread",
        } <= observed
        static = run_analysis(["src"], root=REPO_ROOT, select=["FS"])
        report = cross_validate_fs(
            static, tracer.violations(), LSM_FS_PATHS
        )
        assert report.ok, report.render()

    @staticmethod
    def _engine_workload(directory, tracer):
        acked = []
        config = DurabilityConfig(
            directory=directory,
            sync="always",
            memtable_max_bytes=256,
            compaction=False,
        )
        engine = LSMEngine(config)
        try:
            engine.recover()
            for i in range(8):
                engine.put_one(b"k%02d" % i, b"v" * 32)
                if tracer.crash_triggered:
                    return acked
                acked.append(b"k%02d" % i)
            engine.checkpoint()
        except InjectedCrash:
            pass
        return acked

    @staticmethod
    def _engine_recover(snapshot_dir):
        config = DurabilityConfig(
            directory=snapshot_dir, sync="off", compaction=False
        )
        engine = LSMEngine(config)
        engine.recover()
        keys = {key for key, _ in engine.scan()}
        engine.close()
        return keys

    def test_no_crash_boundary_loses_acknowledged_writes(self, tmp_path):
        def make_dirs(boundary):
            work = tmp_path / ("work-%03d" % boundary)
            snap = tmp_path / ("snap-%03d" % boundary)
            work.mkdir()
            snap.mkdir()
            return str(work), str(snap)

        results = sweep_crash_boundaries(
            self._engine_workload, self._engine_recover, make_dirs
        )
        assert results, "no crash boundary ever triggered"
        losses = [r for r in results if r.lost]
        assert losses == [], "lost acked writes at boundaries %s" % [
            (r.boundary, r.lost) for r in losses
        ]
