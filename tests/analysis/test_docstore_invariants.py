"""Docstore-invariant (DS) rules: layering and caller-document safety."""

DOCSTORE = dict(
    path="src/repro/docstore/fixture.py", package="repro.docstore.fixture"
)


class TestDS001Layering:
    def test_docstore_importing_service_is_flagged(self, check, rule_ids):
        source = """
        from repro.service.service import QueryService
        """
        assert rule_ids(check(source, "docstore-invariants", **DOCSTORE)) == [
            "DS001"
        ]

    def test_docstore_importing_cluster_is_flagged(self, check, rule_ids):
        source = """
        import repro.cluster.router
        """
        assert rule_ids(check(source, "docstore-invariants", **DOCSTORE)) == [
            "DS001"
        ]

    def test_docstore_importing_geo_is_clean(self, check):
        source = """
        from repro.geo.geometry import BoundingBox
        from repro.errors import DocumentStoreError
        """
        assert check(source, "docstore-invariants", **DOCSTORE) == []

    def test_service_may_import_docstore(self, check):
        source = """
        from repro.docstore.planner import analyze_query
        from repro.cluster.cluster import ShardedCluster
        """
        assert check(source, "docstore-invariants") == []

    def test_cluster_importing_service_is_flagged(self, check, rule_ids):
        source = """
        from repro.service.metrics import ServiceMetrics
        """
        findings = check(
            source,
            "docstore-invariants",
            path="src/repro/cluster/fixture.py",
            package="repro.cluster.fixture",
        )
        assert rule_ids(findings) == ["DS001"]


class TestDS002CallerDocumentMutation:
    def test_public_entry_point_mutating_document(self, check, rule_ids):
        source = """
        class Collection:
            def insert_one(self, document):
                document["_id"] = new_object_id()
                self._store(document)
        """
        assert rule_ids(check(source, "docstore-invariants", **DOCSTORE)) == [
            "DS002"
        ]

    def test_copy_before_mutation_is_clean(self, check):
        source = """
        class Collection:
            def insert_one(self, document):
                doc = dict(document)
                doc["_id"] = new_object_id()
                self._store(doc)
        """
        assert check(source, "docstore-invariants", **DOCSTORE) == []

    def test_mutating_method_call_on_param(self, check, rule_ids):
        source = """
        class Collection:
            def find(self, query):
                query.pop("$hint", None)
                return self._execute(query)
        """
        assert rule_ids(check(source, "docstore-invariants", **DOCSTORE)) == [
            "DS002"
        ]

    def test_private_helpers_are_exempt(self, check):
        # Internal helpers receive store-owned documents; the contract
        # covers the public surface only.
        source = """
        class Collection:
            def _apply_update(self, doc, update):
                doc["x"] = 1
        """
        assert check(source, "docstore-invariants", **DOCSTORE) == []

    def test_outside_docstore_is_exempt(self, check):
        source = """
        class Driver:
            def insert_one(self, document):
                document["_id"] = new_object_id()
        """
        assert check(source, "docstore-invariants") == []
