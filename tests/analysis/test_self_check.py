"""The analyzer against its own repository: the CI gate, as a test.

``python -m repro.analysis src --baseline analysis-baseline.json``
must exit 0 on the shipped tree, every baseline entry must still
match a finding and carry a real justification, and the determinism
contract (no wall-clock durations in the service) must hold with no
baseline help at all.
"""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import PLACEHOLDER_JUSTIFICATION, Baseline
from repro.analysis.checker import run_analysis
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis-baseline.json"


@pytest.fixture(scope="module")
def findings():
    return run_analysis(["src"], root=REPO_ROOT)


def test_shipped_tree_passes_with_committed_baseline():
    out = io.StringIO()
    code = main(
        ["src", "--root", str(REPO_ROOT), "--baseline", str(BASELINE)],
        out=out,
    )
    assert code == 0, out.getvalue()
    assert "0 new finding(s)" in out.getvalue()


def test_no_stale_baseline_entries(findings):
    _new, _suppressed, stale = Baseline.load(BASELINE).split(findings)
    assert stale == [], "baseline entries no longer match: %s" % [
        e.fingerprint for e in stale
    ]


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(BASELINE)
    assert len(baseline) > 0
    for entry in baseline.entries.values():
        assert entry.justification.strip(), (
            "%s has no justification" % entry.fingerprint
        )
        assert entry.justification != PLACEHOLDER_JUSTIFICATION, (
            "%s still has the placeholder justification" % entry.fingerprint
        )


def test_no_wall_clock_durations_in_service(findings):
    # Satellite contract: metrics and load generation time with
    # perf_counter; DT003 must have nothing to say anywhere in src.
    assert [f for f in findings if f.rule_id == "DT003"] == []


def test_no_layering_violations_anywhere(findings):
    assert [f for f in findings if f.rule_id == "DS001"] == []


def test_json_format_reports_suppressed(tmp_path):
    out = io.StringIO()
    code = main(
        [
            "src/repro/service",
            "--root",
            str(REPO_ROOT),
            "--baseline",
            str(BASELINE),
            "--format",
            "json",
        ],
        out=out,
    )
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload["summary"]["new"] == 0
    assert payload["summary"]["suppressed"] > 0


def test_unbaselined_finding_fails_the_gate(tmp_path):
    bad = tmp_path / "leaky.py"
    bad.write_text(
        "def serve(lock):\n"
        "    lock.acquire()\n"
        "    work()\n"
        "    lock.release()\n",
        encoding="utf-8",
    )
    out = io.StringIO()
    code = main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(BASELINE)],
        out=out,
    )
    assert code == 1
    assert "LD001" in out.getvalue()


def test_list_rules_names_every_rule():
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for rule in ("LD001", "LD002", "LD003", "CH001", "CH002", "CH003",
                 "CH004", "DT001", "DT002", "DT003", "DS001", "DS002"):
        assert rule in text
