"""The analyzer against its own repository: the CI gate, as a test.

``python -m repro.analysis src --baseline analysis-baseline.json``
must exit 0 on the shipped tree, every baseline entry must still
match a finding and carry a real justification, and the determinism
contract (no wall-clock durations in the service) must hold with no
baseline help at all.
"""

import io
import json
from pathlib import Path

import pytest

from repro.analysis.baseline import PLACEHOLDER_JUSTIFICATION, Baseline
from repro.analysis.checker import run_analysis
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis-baseline.json"


@pytest.fixture(scope="module")
def findings():
    return run_analysis(["src"], root=REPO_ROOT)


def test_shipped_tree_passes_with_committed_baseline():
    out = io.StringIO()
    code = main(
        ["src", "--root", str(REPO_ROOT), "--baseline", str(BASELINE)],
        out=out,
    )
    assert code == 0, out.getvalue()
    assert "0 new finding(s)" in out.getvalue()


def test_no_stale_baseline_entries(findings):
    _new, _suppressed, stale = Baseline.load(BASELINE).split(findings)
    assert stale == [], "baseline entries no longer match: %s" % [
        e.fingerprint for e in stale
    ]


def test_every_baseline_entry_is_justified():
    baseline = Baseline.load(BASELINE)
    assert len(baseline) > 0
    for entry in baseline.entries.values():
        assert entry.justification.strip(), (
            "%s has no justification" % entry.fingerprint
        )
        assert entry.justification != PLACEHOLDER_JUSTIFICATION, (
            "%s still has the placeholder justification" % entry.fingerprint
        )


def test_no_wall_clock_durations_in_service(findings):
    # Satellite contract: metrics and load generation time with
    # perf_counter; DT003 must have nothing to say anywhere in src.
    assert [f for f in findings if f.rule_id == "DT003"] == []


def test_no_layering_violations_anywhere(findings):
    assert [f for f in findings if f.rule_id == "DS001"] == []


def test_json_format_reports_suppressed(tmp_path):
    out = io.StringIO()
    code = main(
        [
            "src/repro/service",
            "--root",
            str(REPO_ROOT),
            "--baseline",
            str(BASELINE),
            "--format",
            "json",
        ],
        out=out,
    )
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload["summary"]["new"] == 0
    assert payload["summary"]["suppressed"] > 0


def test_unbaselined_finding_fails_the_gate(tmp_path):
    bad = tmp_path / "leaky.py"
    bad.write_text(
        "def serve(lock):\n"
        "    lock.acquire()\n"
        "    work()\n"
        "    lock.release()\n",
        encoding="utf-8",
    )
    out = io.StringIO()
    code = main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(BASELINE)],
        out=out,
    )
    assert code == 1
    assert "LD001" in out.getvalue()


def test_list_rules_names_every_rule():
    out = io.StringIO()
    assert main(["--list-rules"], out=out) == 0
    text = out.getvalue()
    for rule in ("LD001", "LD002", "LD003", "CH001", "CH002", "CH003",
                 "CH004", "DT001", "DT002", "DT003", "DS001", "DS002",
                 "LK001", "LK002", "LK003"):
        assert rule in text


class TestSarifFormat:
    def test_sarif_log_shape(self):
        out = io.StringIO()
        code = main(
            [
                "src/repro/service",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(BASELINE),
                "--format",
                "sarif",
            ],
            out=out,
        )
        assert code == 0
        log = json.loads(out.getvalue())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"LD001", "LK001", "CH001", "DT001", "DS001"} <= rule_ids

    def test_every_rule_carries_full_metadata(self):
        # Code-scanning rule pages are only self-explanatory when every
        # rule ships a fullDescription, a default level, and a help link.
        out = io.StringIO()
        code = main(
            [
                "src/repro/service",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(BASELINE),
                "--format",
                "sarif",
            ],
            out=out,
        )
        assert code == 0
        (run,) = json.loads(out.getvalue())["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} >= {"FS001", "FS006"}
        for rule in rules:
            assert rule["fullDescription"]["text"].strip(), rule["id"]
            assert rule["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            ), rule["id"]
            assert rule["helpUri"].startswith("DESIGN.md#"), rule["id"]

    def test_baselined_findings_are_suppressed_results(self):
        out = io.StringIO()
        main(
            [
                "src",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(BASELINE),
                "--format",
                "sarif",
            ],
            out=out,
        )
        (run,) = json.loads(out.getvalue())["runs"]
        suppressed = [
            r for r in run["results"] if r.get("suppressions")
        ]
        assert len(suppressed) == len(run["results"]) > 0
        for result in suppressed:
            (suppression,) = result["suppressions"]
            assert suppression["kind"] == "external"
            assert suppression["justification"].strip()

    def test_new_findings_carry_no_suppression(self, tmp_path):
        bad = tmp_path / "leaky.py"
        bad.write_text(
            "def serve(lock):\n"
            "    lock.acquire()\n"
            "    work()\n"
            "    lock.release()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(
            [str(bad), "--root", str(tmp_path), "--format", "sarif"],
            out=out,
        )
        assert code == 1
        (run,) = json.loads(out.getvalue())["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "LD001"
        assert "suppressions" not in result
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] == 2


class TestBaselineHygiene:
    def _baseline_file(self, tmp_path, justification):
        target = tmp_path / "leaky.py"
        target.write_text(
            "def serve(lock):\n"
            "    lock.acquire()\n"
            "    work()\n"
            "    lock.release()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "fingerprint": (
                                "LD001::leaky.py::serve::0"
                            ),
                            "rule": "LD001",
                            "path": "leaky.py",
                            "symbol": "serve",
                            "justification": justification,
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        return target, baseline

    def test_require_justification_fails_on_empty(self, tmp_path):
        target, baseline = self._baseline_file(tmp_path, "")
        out = io.StringIO()
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--require-justification",
            ],
            out=out,
        )
        assert code == 1
        assert "lacks a justification" in out.getvalue()

    def test_require_justification_fails_on_placeholder(self, tmp_path):
        target, baseline = self._baseline_file(
            tmp_path, PLACEHOLDER_JUSTIFICATION
        )
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--require-justification",
            ],
            out=io.StringIO(),
        )
        assert code == 1

    def test_require_justification_passes_when_justified(self, tmp_path):
        target, baseline = self._baseline_file(
            tmp_path, "held across the handoff on purpose"
        )
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--require-justification",
            ],
            out=io.StringIO(),
        )
        assert code == 0

    def test_missing_file_entry_warns(self, tmp_path):
        target, baseline = self._baseline_file(tmp_path, "fine")
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["entries"].append(
            {
                "fingerprint": "LD001::gone.py::serve::0",
                "rule": "LD001",
                "path": "gone.py",
                "symbol": "serve",
                "justification": "file was deleted since",
            }
        )
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        out = io.StringIO()
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ],
            out=out,
        )
        assert code == 0  # stale alone does not gate without the flag
        assert "missing file gone.py" in out.getvalue()

    def test_write_baseline_drops_missing_file_entries(self, tmp_path):
        target, baseline = self._baseline_file(tmp_path, "fine")
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        payload["entries"].append(
            {
                "fingerprint": "LD001::gone.py::serve::0",
                "rule": "LD001",
                "path": "gone.py",
                "symbol": "serve",
                "justification": "file was deleted since",
            }
        )
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        out = io.StringIO()
        code = main(
            [
                str(target),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
            ],
            out=out,
        )
        assert code == 0
        assert "1 for missing files" in out.getvalue()
        rewritten = Baseline.load(baseline)
        assert list(rewritten.entries) == ["LD001::leaky.py::serve::0"]
        # The surviving entry keeps its human-written justification.
        assert [
            e.justification for e in rewritten.entries.values()
        ] == ["fine"]

    def test_self_baseline_is_hygienic(self):
        # The committed baseline must survive its own strictest flags.
        out = io.StringIO()
        code = main(
            [
                "src",
                "--root",
                str(REPO_ROOT),
                "--baseline",
                str(BASELINE),
                "--require-justification",
                "--fail-on-stale",
            ],
            out=out,
        )
        assert code == 0, out.getvalue()
