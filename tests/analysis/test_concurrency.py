"""Concurrency-hygiene (CH) rules: bad snippet flagged, fixed clean."""


class TestCH001CheckThenAct:
    def test_unguarded_check_then_act(self, check, rule_ids):
        source = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def ensure(self, name):
                if name not in self._items:
                    self._items[name] = build(name)
                return self._items[name]
        """
        ids = rule_ids(check(source, "concurrency"))
        assert "CH001" in ids

    def test_double_checked_locking_is_clean(self, check):
        # The Database.collection shape: optimistic read, then
        # re-check under the creation lock.
        source = """
        import threading

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def ensure(self, name):
                existing = self._items.get(name)
                if existing is not None:
                    return existing
                with self._lock:
                    if name not in self._items:
                        self._items[name] = build(name)
                    return self._items[name]
        """
        assert check(source, "concurrency") == []


class TestCH002LazyInit:
    def test_unguarded_lazy_init(self, check, rule_ids):
        source = """
        import threading

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._pool = None

            def pool(self):
                if self._pool is None:
                    self._pool = build_pool()
                return self._pool
        """
        assert rule_ids(check(source, "concurrency")) == ["CH002"]

    def test_guarded_lazy_init_is_clean(self, check):
        source = """
        import threading

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()
                self._pool = None

            def pool(self):
                with self._lock:
                    if self._pool is None:
                        self._pool = build_pool()
                    return self._pool
        """
        assert check(source, "concurrency") == []


class TestCH003ThreadJoinDiscipline:
    def test_thread_without_join_or_daemon(self, check, rule_ids):
        source = """
        import threading

        def fire_and_forget(work):
            t = threading.Thread(target=work)
            t.start()
        """
        assert rule_ids(check(source, "concurrency")) == ["CH003"]

    def test_joined_threads_are_clean(self, check):
        source = """
        import threading

        def run_clients(work, n):
            threads = [threading.Thread(target=work) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        """
        assert check(source, "concurrency") == []

    def test_daemon_thread_is_clean(self, check):
        source = """
        import threading

        def start_reaper(work):
            t = threading.Thread(target=work, daemon=True)
            t.start()
        """
        assert check(source, "concurrency") == []


class TestCH004UnboundedFutureResult:
    def test_bare_result_on_submitted_future(self, check, rule_ids):
        source = """
        def fan_out(pool, fn, shard_ids):
            futures = [pool.submit(fn, s) for s in shard_ids]
            return [f.result() for f in futures]
        """
        assert rule_ids(check(source, "concurrency")) == ["CH004"]

    def test_result_with_timeout_is_clean(self, check):
        source = """
        def fan_out(pool, fn, shard_ids, deadline):
            futures = [pool.submit(fn, s) for s in shard_ids]
            return [f.result(timeout=deadline.remaining()) for f in futures]
        """
        assert check(source, "concurrency") == []

    def test_chained_submit_result_is_flagged(self, check, rule_ids):
        source = """
        def one(pool, fn):
            return pool.submit(fn).result()
        """
        assert rule_ids(check(source, "concurrency")) == ["CH004"]

    def test_result_in_loop_over_futures(self, check, rule_ids):
        source = """
        def fan_out(pool, fn, shard_ids):
            futures = [pool.submit(fn, s) for s in shard_ids]
            out = []
            for f in futures:
                out.append(f.result())
            return out
        """
        assert rule_ids(check(source, "concurrency")) == ["CH004"]

    def test_non_future_result_call_is_ignored(self, check):
        # Accumulators expose .result() too (docstore aggregation);
        # only values traced back to submit() count.
        source = """
        def finish(accumulators):
            return {name: acc.result() for name, acc in accumulators.items()}
        """
        assert check(source, "concurrency") == []
