"""A lock-order inversion in the process-executor topology, reconstructed.

The process backend added a second parent-side lock family: each
shard's worker client serializes its outbox under a client lock, and
the serving path holds the shard lock while enqueuing — the shipped
order is shard lock → client lock, everywhere.

This fixture reconstructs the tempting maintenance-path bug that
inverts it: a replica resync that snapshots the shard *under the
client lock* ("so nothing can race the sync frame into the outbox").
Each method is impeccable in isolation — every acquisition is a
``with`` statement, every shared attribute is mutated under a held
lock — so the LD rules stay silent.  The deadlock only exists between
functions:

* ``serve``          holds ``shard_lock``  → calls ``_enqueue``,
  which takes ``client_lock``            (edge shard → client)
* ``resync_replica`` holds ``client_lock`` → calls ``_snapshot``,
  which takes ``shard_lock``             (edge client → shard)

A reader thread in ``serve`` and a maintenance thread in
``resync_replica`` can each take their first lock and block forever
on the other's.  LK001 finds the cycle statically; the runtime
sanitizer finds it from a single-threaded, sequential execution of
both paths, because the observed acquisition graph is cumulative.
The shipped code avoids it by capturing the snapshot under the shard
read lock *before* touching the client lock.
"""

from __future__ import annotations

import threading
from typing import List


class FanoutFrontend:
    """A toy mirror of the parent-side process-backend fan-out."""

    def __init__(self) -> None:
        self.shard_lock = threading.Lock()
        self.client_lock = threading.Lock()
        self.outbox: List[str] = []
        self.replica_epoch = 0

    def serve(self) -> None:
        """The read path: enqueue a subquery while the shard is locked."""
        with self.shard_lock:
            self._enqueue("subquery")

    def _enqueue(self, frame: str) -> None:
        with self.client_lock:
            self.outbox.append(frame)

    def resync_replica(self) -> int:
        """The inversion: snapshot the shard under the client lock."""
        with self.client_lock:
            return self._snapshot()

    def _snapshot(self) -> int:
        with self.shard_lock:
            self.replica_epoch += 1
            return self.replica_epoch
