"""Unit tests for the cache-coherence model's discovery passes."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.cachemodel import build_cache_model
from repro.analysis.checker import (
    ModuleInfo,
    ProjectContext,
    iter_python_files,
    load_module,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def build(parse_modules, sources):
    return build_cache_model(parse_modules(sources))


CACHE_SNIPPET = """
    class RouteCache:
        def __init__(self):
            self._entries = {}

        def get(self, key):
            value = self._entries.get(key)
            if value is None:
                return None
            return value

        def put(self, key, value):
            self._entries[key] = value

        def clear(self):
            self._entries.clear()

    class Config:
        def __init__(self):
            self._entries = {}

        def get(self, key):
            return self._entries.get(key)
"""


class TestCacheDiscovery:
    def test_cache_named_class_with_store_read_fill(self, parse_modules):
        model = build(parse_modules, CACHE_SNIPPET)
        assert set(model.caches) == {
            "repro.service.fixture.RouteCache"
        }
        cache = model.caches["repro.service.fixture.RouteCache"]
        assert cache.store_attrs == {"_entries"}
        assert cache.read_methods == {"get"}
        assert cache.fill_methods == {"put"}
        assert cache.invalidate_methods == {"clear"}
        assert not cache.pure_memo
        assert not cache.stamp_validated

    def test_pure_memo_when_one_method_reads_and_fills(
        self, parse_modules
    ):
        model = build(
            parse_modules,
            """
            class MemoCache:
                def __init__(self):
                    self._entries = {}

                def lookup(self, key):
                    value = self._entries.get(key)
                    if value is None:
                        value = expensive(key)
                        self._entries[key] = value
                    return value
            """,
        )
        (cache,) = model.caches.values()
        assert cache.pure_memo

    def test_stamp_validated_read(self, parse_modules):
        model = build(
            parse_modules,
            """
            class StampCache:
                def __init__(self):
                    self._entries = {}
                    self._writes = {}
                    self.threshold = 10

                def get(self, key):
                    entry = self._entries.get(key)
                    if entry is not None:
                        if self._writes.get(key[0], 0) - entry.writes_at >= self.threshold:
                            del self._entries[key]
                            entry = None
                    return entry

                def put(self, key, entry):
                    self._entries[key] = entry
            """,
        )
        (cache,) = model.caches.values()
        assert cache.stamp_validated


TOKEN_SNIPPET = """
    class Topology:
        def __init__(self):
            self.metadata_version = 0
            self.chunk_map = {}
            self.routes = RouteCache()

        def _bump_metadata_version(self):
            self.metadata_version += 1

        def move_chunk(self, chunk_id, shard_id):
            self.chunk_map[chunk_id] = shard_id
            self._bump_metadata_version()

        def route(self, interval, version):
            key = (interval, version)
            cached = self.routes.get(key)
            if cached is not None:
                return cached
            owners = sorted(self.chunk_map)
            self.routes.put(key, owners)
            return owners

    class RouteCache:
        def __init__(self):
            self._entries = {}

        def get(self, key):
            value = self._entries.get(key)
            if value is None:
                return None
            return value

        def put(self, key, value):
            self._entries[key] = value
"""


class TestTokensAndGovernance:
    def test_token_discovered_with_bump_method(self, parse_modules):
        model = build(parse_modules, TOKEN_SNIPPET)
        assert "Topology.metadata_version" in model.tokens
        token = model.tokens["Topology.metadata_version"]
        assert (
            "repro.service.fixture.Topology._bump_metadata_version"
            in token.bump_methods
        )

    def test_governed_fields_are_the_intersection(self, parse_modules):
        model = build(parse_modules, TOKEN_SNIPPET)
        token = model.tokens["Topology.metadata_version"]
        # chunk_map: read on the fill path AND mutated bump-adjacent.
        assert token.governed_fields == {"chunk_map"}
        assert model.governing_tokens["chunk_map"] == {
            "Topology.metadata_version"
        }

    def test_bump_call_collapses_to_bump_effect(self, parse_modules):
        model = build(parse_modules, TOKEN_SNIPPET)
        summary = model.summaries[
            "repro.service.fixture.Topology.move_chunk"
        ]
        kinds = [e.kind for e in summary.effects]
        assert "bump" in kinds  # the call, not a call marker
        bump = next(e for e in summary.effects if e.kind == "bump")
        assert bump.detail == "Topology.metadata_version"

    def test_keyed_read_via_version_param_tuple(self, parse_modules):
        model = build(parse_modules, TOKEN_SNIPPET)
        summary = model.summaries[
            "repro.service.fixture.Topology.route"
        ]
        read = next(e for e in summary.effects if e.kind == "read")
        assert read.keyed
        assert read.key_source == "param"


class TestInlining:
    def test_callee_effects_splice_at_call_site(self, parse_modules):
        model = build(parse_modules, TOKEN_SNIPPET)
        inlined = model.inlined_effects(
            "repro.service.fixture.Topology.move_chunk"
        )
        bumps = [e for e in inlined if e.kind == "bump"]
        assert bumps, "bump must stay visible in the inlined view"
        mutate = next(e for e in inlined if e.kind == "mutate")
        assert mutate.target == "chunk_map"
        # The mutation precedes the bump in source order.
        assert inlined.index(mutate) < inlined.index(bumps[0])


class TestShippedModel:
    """Anchor the discovery results on the real tree."""

    def test_shipped_caches_tokens_and_governance(self):
        modules = []
        for path in iter_python_files(["src"], REPO_ROOT):
            loaded = load_module(path, REPO_ROOT)
            if isinstance(loaded, ModuleInfo):
                modules.append(loaded)
        context = ProjectContext(modules)
        model = context.cache_model
        cache_names = {c.name for c in model.caches.values()}
        assert {
            "PlanCache",
            "TargetingCache",
            "RangeDecompositionCache",
        } <= cache_names
        plan = next(
            c for c in model.caches.values() if c.name == "PlanCache"
        )
        assert plan.stamp_validated
        memo = next(
            c
            for c in model.caches.values()
            if c.name == "RangeDecompositionCache"
        )
        assert memo.pure_memo
        assert "ShardedCluster.metadata_version" in model.tokens
        token = model.tokens["ShardedCluster.metadata_version"]
        assert token.governed_fields == {"chunks", "shard_id"}
        assert "LSMEngine._storage_epoch" in model.tokens
