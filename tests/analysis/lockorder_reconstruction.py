"""A cross-function lock-order inversion, reconstructed.

This is the bug class the interprocedural layer exists for.  Each
function below is impeccable in isolation: every acquisition is a
``with`` statement (LD001 silent), no loop acquires multiple locks
(LD002 silent), every shared attribute is mutated under its lock
(LD003 silent).  The deadlock only exists *between* functions:

* ``debit``       holds ``ledger_lock`` → calls ``_append_audit``,
  which takes ``audit_lock``          (edge ledger → audit)
* ``audit_scan``  holds ``audit_lock``  → calls ``_ledger_snapshot``,
  which takes ``ledger_lock``         (edge audit → ledger)

Two threads running ``debit`` and ``audit_scan`` concurrently can
each take their first lock and then block forever on the other's.
LK001 finds the cycle statically; the runtime sanitizer finds it from
a *single-threaded, sequential* execution of both paths, because the
observed acquisition graph is cumulative (lockdep-style) — no actual
deadlock or adversarial timing is needed.
"""

from __future__ import annotations

import threading
from typing import List, Tuple


class TransferLedger:
    """A toy account ledger with a separate audit trail."""

    def __init__(self) -> None:
        self.ledger_lock = threading.Lock()
        self.audit_lock = threading.Lock()
        self.balance = 0
        self.audit_trail: List[Tuple[str, int]] = []

    def debit(self, amount: int) -> None:
        """Withdraw, recording the operation in the audit trail."""
        with self.ledger_lock:
            self.balance -= amount
            self._append_audit("debit", amount)

    def _append_audit(self, op: str, amount: int) -> None:
        with self.audit_lock:
            self.audit_trail.append((op, amount))

    def audit_scan(self) -> Tuple[int, int]:
        """Consistency check: audit length vs. ledger state."""
        with self.audit_lock:
            return self._ledger_snapshot()

    def _ledger_snapshot(self) -> Tuple[int, int]:
        with self.ledger_lock:
            return (self.balance, len(self.audit_trail))
