"""LK rules: the interprocedural checks, including the reconstruction
of a cross-function lock-order inversion that LD002 cannot see."""

from pathlib import Path

from repro.analysis.checker import run_analysis
from repro.analysis.lockgraph import analyze_locks

REPO_ROOT = Path(__file__).resolve().parents[2]
RECONSTRUCTION = Path(__file__).with_name("lockorder_reconstruction.py")
EXECUTOR_RECONSTRUCTION = Path(__file__).with_name(
    "executor_lockorder_reconstruction.py"
)


class TestLK001CycleReconstruction:
    """The acceptance scenario: LK001 catches what LD002 misses."""

    def test_intraprocedural_rules_are_blind_to_it(self):
        findings = run_analysis([str(RECONSTRUCTION)], root=REPO_ROOT)
        assert [f for f in findings if f.rule_id == "LD002"] == []
        assert [f for f in findings if f.rule_id == "LD001"] == []

    def test_lk001_flags_the_cross_function_cycle(self):
        findings = run_analysis(
            [str(RECONSTRUCTION)], root=REPO_ROOT, select=["LK001"]
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "audit_lock" in message and "ledger_lock" in message
        assert "cycle" in message

    def test_consistent_order_is_clean(self, check_project):
        source = """
        import threading

        class Ledger:
            def __init__(self):
                self.ledger_lock = threading.Lock()
                self.audit_lock = threading.Lock()

            def debit(self):
                with self.ledger_lock:
                    self._append_audit()

            def _append_audit(self):
                with self.audit_lock:
                    pass

            def audit_scan(self):
                with self.ledger_lock:
                    with self.audit_lock:
                        pass
        """
        assert check_project(source) == []


class TestLK001ExecutorTopologyReconstruction:
    """The process-backend acceptance scenario: a shard-lock/client-lock
    inversion in the new parent-side topology is caught statically."""

    def test_intraprocedural_rules_are_blind_to_it(self):
        findings = run_analysis(
            [str(EXECUTOR_RECONSTRUCTION)], root=REPO_ROOT
        )
        assert [f for f in findings if f.rule_id == "LD001"] == []
        assert [f for f in findings if f.rule_id == "LD002"] == []
        assert [f for f in findings if f.rule_id == "LD003"] == []

    def test_lk001_flags_the_inverted_resync(self):
        findings = run_analysis(
            [str(EXECUTOR_RECONSTRUCTION)], root=REPO_ROOT, select=["LK001"]
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "shard_lock" in message and "client_lock" in message
        assert "cycle" in message


class TestLK001Collections:
    def test_sorted_collection_loop_is_ordered(self, check_project):
        source = """
        class Service:
            def __init__(self):
                self._locks = {i: ReadWriteLock() for i in range(4)}

            def read_all(self):
                held = []
                for key in sorted(self._locks):
                    self._locks[key].acquire_read()
                    held.append(self._locks[key])
                for lock in held:
                    lock.release_read()
        """
        assert check_project(source) == []

    def test_unsorted_collection_loop_is_a_cycle(self, check_project):
        source = """
        class Service:
            def __init__(self):
                self._locks = {i: ReadWriteLock() for i in range(4)}

            def read_all(self):
                held = []
                for key in self._locks:
                    self._locks[key].acquire_read()
                    held.append(self._locks[key])
                for lock in held:
                    lock.release_read()
        """
        findings = check_project(source)
        assert [f.rule_id for f in findings] == ["LK001"]


class TestLK002BlockingUnderLocks:
    def test_future_result_under_lock(self, check_project):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self, pool):
                with self._lock:
                    fut = pool.submit(job)
                    return fut.result()
        """
        findings = check_project(source)
        assert [f.rule_id for f in findings] == ["LK002"]
        assert "Future.result" in findings[0].message

    def test_bounded_result_is_clean(self, check_project):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self, pool):
                with self._lock:
                    fut = pool.submit(job)
                    return fut.result(timeout=1.0)
        """
        assert check_project(source) == []

    def test_sleep_under_lock_reached_through_a_call(self, check_project):
        # The blocking call is one frame below the acquisition — the
        # intraprocedural CH rules cannot connect the two.
        source = """
        import threading
        import time

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self):
                with self._lock:
                    self._backoff()

            def _backoff(self):
                time.sleep(0.1)
        """
        findings = check_project(source)
        assert [f.rule_id for f in findings] == ["LK002"]

    def test_waiting_on_the_held_condition_is_clean(self, check_project):
        # Condition.wait releases the condition's own lock while
        # parked; only *other* held locks make it dangerous.
        source = """
        import threading

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()

            def wait_open(self):
                with self._cond:
                    self._cond.wait_for(lambda: True)
        """
        assert check_project(source) == []

    def test_waiting_with_an_extra_lock_held_is_flagged(
        self, check_project
    ):
        source = """
        import threading

        class Gate:
            def __init__(self):
                self._cond = threading.Condition()
                self._state = threading.Lock()

            def wait_open(self):
                with self._state:
                    with self._cond:
                        self._cond.wait_for(lambda: True)
        """
        findings = check_project(source)
        assert [f.rule_id for f in findings] == ["LK002"]


class TestLK003EscapingAcquisitions:
    def test_unprotected_escaping_call_is_flagged(self, check_project):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def _grab(self):
                self._lock.acquire()

            def use(self):
                self._grab()
                work()
                self._lock.release()
        """
        findings = check_project(source)
        assert "LK003" in [f.rule_id for f in findings]
        lk003 = [f for f in findings if f.rule_id == "LK003"][0]
        assert lk003.symbol == "Service.use"

    def test_acquire_then_try_finally_is_clean(self, check_project):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def _grab(self):
                self._lock.acquire()

            def use(self):
                self._grab()
                try:
                    work()
                finally:
                    self._lock.release()
        """
        assert [
            f.rule_id for f in check_project(source)
        ] == []

    def test_delegating_caller_passes_the_obligation_up(
        self, check_project
    ):
        # ``outer`` deliberately returns holding the lock too (its own
        # callers carry the release), so its bare call to _grab is not
        # a leak — but the top-level unprotected call still is.
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()

            def _grab(self):
                self._lock.acquire()

            def outer(self):
                self._grab()

            def top(self):
                self.outer()
                work()
                self._lock.release()
        """
        findings = check_project(source)
        assert [
            (f.rule_id, f.symbol) for f in findings
        ] == [("LK003", "Service.top")]


class TestSpawnBoundary:
    def test_held_locks_do_not_cross_submit(self, parse_modules):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()

            def run(self, pool):
                with self._lock:
                    pool.submit(self._task)

            def _task(self):
                with self._other:
                    pass
        """
        analysis = analyze_locks(parse_modules(source))
        assert not analysis.graph.has_edge(
            "repro.service.fixture.Service._lock",
            "repro.service.fixture.Service._other",
        )

    def test_held_locks_do_cross_closure_args(self, parse_modules):
        source = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()

            def apply(self, fn):
                return fn()

            def run(self):
                with self._lock:
                    self.apply(self._task)

            def _task(self):
                with self._other:
                    pass
        """
        analysis = analyze_locks(parse_modules(source))
        assert analysis.graph.has_edge(
            "repro.service.fixture.Service._lock",
            "repro.service.fixture.Service._other",
        )


class TestShippedTree:
    """The analysis against the real src tree — the acceptance bar."""

    def test_src_lock_order_graph_is_acyclic(self):
        findings = run_analysis(["src"], root=REPO_ROOT, select=["LK001"])
        assert findings == []

    def test_src_has_no_unprotected_escapes(self):
        findings = run_analysis(["src"], root=REPO_ROOT, select=["LK003"])
        assert findings == []

    def test_src_blocking_calls_are_exactly_the_baselined_ones(self):
        findings = run_analysis(["src"], root=REPO_ROOT, select=["LK002"])
        assert sorted(f.symbol for f in findings) == [
            "ThreadedExecutor._drain_futures",
            "ThreadedExecutor.shard_mapper.mapper",
            "ThreadedExecutor.shard_mapper.mapper",
            "ThreadedExecutor.shard_mapper.run_one",
        ]


class TestReentrantSelfEdges:
    """Re-acquiring a held RLock is its contract, not a deadlock."""

    SOURCE_TEMPLATE = """
        import threading

        class Tracer:
            def __init__(self):
                self._lock = threading.%s()

            def record(self):
                with self._lock:
                    self._check()

            def _check(self):
                with self._lock:
                    pass
    """

    def test_rlock_reacquired_while_held_is_not_a_cycle(
        self, check_project
    ):
        assert check_project(self.SOURCE_TEMPLATE % "RLock") == []

    def test_plain_lock_reacquired_while_held_is_a_cycle(
        self, check_project
    ):
        findings = check_project(self.SOURCE_TEMPLATE % "Lock")
        assert [f.rule_id for f in findings] == ["LK001"]
        assert "Tracer._lock" in findings[0].message

    def test_the_self_edge_is_still_in_the_graph(self, parse_modules):
        # The exemption is in cycle detection only: the edge itself
        # stays recorded, so runtime cross-validation can still match
        # an observed re-entrant acquisition against it.
        analysis = analyze_locks(
            parse_modules(self.SOURCE_TEMPLATE % "RLock")
        )
        key = "repro.service.fixture.Tracer._lock"
        assert analysis.graph.has_edge(key, key)
        assert analysis.graph.cycles() == []
