"""Bug class 3: storage epoch bumped before the state swap is visible.

The PR-5 contract bumps ``_storage_epoch`` *after* a flush or
compaction publishes its new structures.  The historical bug bumped
first: a reader missing on the new epoch between the bump and the
swap fills its cache from the old structures and keeps serving them
under the new epoch's key, where nothing ever evicts them — CC004
statically, a stale hit under the ``storage`` domain at runtime.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional


class SegmentCache:
    """Minimal epoch-keyed lookup cache over storage segments."""

    def __init__(self) -> None:
        self._entries: Dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            return None
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value


class StorageEngine:
    """Segment registry whose readers key on the storage epoch."""

    def __init__(self) -> None:
        self.storage_epoch = 0
        self.segments: Dict[str, Dict[str, str]] = {}
        self.cache = SegmentCache()

    def _bump_storage_epoch(self) -> None:
        self.storage_epoch += 1

    def add_segment(self, name: str, segment: Dict[str, str]) -> None:
        self.segments[name] = segment
        self._bump_storage_epoch()

    def swap_segment(self, name: str, segment: Dict[str, str]) -> None:
        # BUG: the epoch moves before the swap is visible; a reader
        # missing on the new epoch in between caches the old segment
        # contents under the new epoch's key.
        self._bump_storage_epoch()
        self.segments[name] = segment

    def lookup(self, key: str, epoch: int) -> Optional[List[str]]:
        cache_key = (key, epoch)
        found = self.cache.get(cache_key)
        if found is not None:
            return found
        value = self._scan(key)
        self.cache.put(cache_key, value)
        return value

    def _scan(self, key: str) -> List[str]:
        return [
            name
            for name in sorted(self.segments)
            if key in self.segments[name]
        ]
