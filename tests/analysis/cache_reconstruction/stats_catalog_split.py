"""Bug class 4: a statistics catalog that survives a chunk split.

The shipped catalog (:class:`repro.docstore.stats.StatsCatalogCache`)
stamps every ANALYZE result with the ``metadata_version`` in force
when the pass started and rejects reads whose stamp no longer matches
the live version; storage events push-invalidate on top.  The
historical bug cached the ANALYZE output under the bare collection
name: nothing in the key, the read path, or the mutation sites ever
retired an entry, so the first chunk split left the cost model
planning against a chunk count that no longer existed — CC001
statically, a stale hit of the same family at runtime.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class CatalogCache:
    """Minimal per-collection statistics store."""

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}

    def get(self, collection: str) -> Optional[Any]:
        return self._entries.get(collection)

    def put(self, collection: str, stats: Any) -> None:
        self._entries[collection] = stats


class StatsCluster:
    """A sharded collection whose ANALYZE output is cached."""

    def __init__(self) -> None:
        self.metadata_version = 0
        self.chunks: Dict[str, Tuple[int, int]] = {"c0": (0, 100)}
        self.catalog = CatalogCache()

    def _bump_metadata_version(self) -> None:
        self.metadata_version += 1

    def split_chunk(self, chunk_id: str, at: int) -> None:
        low, high = self.chunks.pop(chunk_id)
        self.chunks[chunk_id + "L"] = (low, at)
        self.chunks[chunk_id + "R"] = (at, high)
        self._bump_metadata_version()

    def analyze(self, collection: str) -> Dict[str, int]:
        stats = {"chunks": len(self.chunks)}
        self.catalog.put(collection, stats)
        return stats

    def stats_for(self, collection: str) -> Optional[Dict[str, int]]:
        # BUG: the key is the bare collection name — no version token,
        # no stamp validation at hit time, and no mutation site ever
        # invalidates — so the entry built before a split keeps
        # feeding the cost model a chunk map that no longer exists.
        return self.catalog.get(collection)
