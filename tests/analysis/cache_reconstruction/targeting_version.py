"""Bug class 2: targeting key built from a version fresher than its data.

The shipped router captures ``metadata_version`` *before* deriving a
routing decision, so a concurrent split bumps the version and the
stale derivation lands under the old key where nothing reads it.  The
historical bug read the chunk map first and captured the version
afterwards: a mutation sliding into that window stores pre-split
routing under the *new* version's key — CC002 statically, a stale hit
stamped with the derivation-time snapshot at runtime.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple


class RouteCache:
    """Minimal version-keyed routing cache."""

    def __init__(self) -> None:
        self._entries: Dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Optional[Any]:
        value = self._entries.get(key)
        if value is None:
            return None
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value


class Topology:
    """A chunk map with a version-keyed routing cache."""

    def __init__(self) -> None:
        self.metadata_version = 0
        self.chunk_map: Dict[str, str] = {}
        self.routes = RouteCache()

    def _bump_metadata_version(self) -> None:
        self.metadata_version += 1

    def move_chunk(self, chunk_id: str, shard_id: str) -> None:
        self.chunk_map[chunk_id] = shard_id
        self._bump_metadata_version()

    def route(self, interval: Tuple[int, int]) -> List[str]:
        # BUG: the chunk map is read before the version that will key
        # the result is captured; a move_chunk between the two lines
        # stores the stale owners under the *fresh* version's key.
        owners = sorted(self.chunk_map)
        version = self.metadata_version
        key = (interval, version)
        cached = self.routes.get(key)
        if cached is not None:
            return cached
        self.routes.put(key, owners)
        return owners
