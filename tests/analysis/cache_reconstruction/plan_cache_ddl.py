"""Bug class 1: plan cache survives a DDL that changed the catalog.

The shipped service invalidates the plan cache on every
``create_index``/``drop_index``; the historical bug dropped an index
without either bumping the plan generation or invalidating, so cached
plans kept hinting an index that no longer existed.  Here
``drop_index`` mutates the catalog with no bump — CC003 statically,
a stale hit under the ``ddl`` domain at runtime.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple


class DdlPlanCache:
    """Minimal generation-keyed plan cache."""

    def __init__(self) -> None:
        self._entries: Dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value


class CatalogService:
    """An index catalog with a generation-keyed plan cache in front."""

    def __init__(self) -> None:
        self.plan_generation = 0
        self.indexes: Dict[str, Tuple[str, ...]] = {}
        self.cache = DdlPlanCache()

    def _bump_plan_generation(self) -> None:
        self.plan_generation += 1

    def create_index(self, name: str, spec: Tuple[str, ...]) -> None:
        self.indexes[name] = spec
        self._bump_plan_generation()

    def drop_index(self, name: str) -> None:
        # BUG: the catalog mutates but the plan generation does not
        # move, so every cached plan keyed on the current generation
        # keeps hinting the dropped index.
        self.indexes.pop(name, None)

    def cached_plan(
        self, shape: Tuple[str, ...], generation: int
    ) -> List[str]:
        key = (shape, generation)
        found = self.cache.get(key)
        if found is not None:
            return found
        plan = self._plan(shape)
        self.cache.put(key, plan)
        return plan

    def _plan(self, shape: Tuple[str, ...]) -> List[str]:
        return [
            name
            for name in sorted(self.indexes)
            if self.indexes[name][: len(shape)] == shape
        ]
