"""Reconstructed stale-cache bug classes for the CC analysis.

Each module is a self-contained miniature of one historical
invalidation bug: a cache, the version token that should govern it,
one *correct* mutation site (which teaches the model the governance
relation), and the buggy site the checkers and the runtime epoch
tracer must both catch.
"""
