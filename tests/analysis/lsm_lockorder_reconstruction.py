"""A flush-vs-compaction lock inversion, reconstructed.

The shipped engine (:mod:`repro.docstore.lsm.engine`) keeps one
nesting direction: writers hold ``_write_lock`` and take
``_manifest_lock`` inside it (flush swaps the run list mid-write),
while the compaction worker takes ``_manifest_lock`` *alone* and does
its merging with no lock held.  This module reconstructs the tempting
wrong design the discipline rules out — a compactor that, still
holding the manifest lock, reaches back into the write side (here: to
snapshot the memtable so the merge can drop keys the memtable already
shadows).  Each function is impeccable in isolation — every
acquisition a ``with`` statement, every attribute mutated under its
own lock — so the intraprocedural LD rules stay silent.  The deadlock
only exists between the functions:

* ``flush``    holds ``write_lock``    → calls ``_install_run``,
  which takes ``manifest_lock``       (edge write → manifest)
* ``compact``  holds ``manifest_lock`` → calls ``_live_snapshot``,
  which takes ``write_lock``          (edge manifest → write)

A writer flushing while the background compactor runs can deadlock.
LK001 finds the cycle statically; the runtime sanitizer finds it from
a single-threaded, sequential execution of both paths, because the
observed acquisition graph is cumulative (lockdep-style).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class ShadowingCompactor:
    """A toy LSM core whose compactor consults the memtable."""

    def __init__(self) -> None:
        self.write_lock = threading.Lock()
        self.manifest_lock = threading.Lock()
        self.memtable: Dict[bytes, Optional[bytes]] = {}
        self.runs: List[Dict[bytes, Optional[bytes]]] = []

    def put(self, key: bytes, value: bytes) -> None:
        with self.write_lock:
            self.memtable[key] = value

    def flush(self) -> None:
        """Freeze the memtable and install it as a run."""
        with self.write_lock:
            frozen = dict(self.memtable)
            self.memtable = {}
            self._install_run(frozen)

    def _install_run(self, run: Dict[bytes, Optional[bytes]]) -> None:
        with self.manifest_lock:
            self.runs.append(run)

    def compact(self) -> None:
        """Merge all runs — dropping keys the memtable shadows.

        The shadow check is the design mistake: it needs the memtable,
        the memtable needs ``write_lock``, and we are already inside
        ``manifest_lock`` — the reverse of flush's nesting.
        """
        with self.manifest_lock:
            shadowed = self._live_snapshot()
            merged: Dict[bytes, Optional[bytes]] = {}
            for run in self.runs:
                merged.update(run)
            for key in shadowed:
                merged.pop(key, None)
            self.runs = [merged]

    def _live_snapshot(self) -> List[bytes]:
        with self.write_lock:
            return list(self.memtable)
