"""FS rule family: crash-consistency ordering over filesystem effects.

Each rule gets a tripping shape and the disciplined counterpart, so the
suite pins down both halves: the bug class is caught, and the shipped
idiom (fsync-before-publish, dirfsync-before-delete, unlink-without-
close, commit-before-swap, sweep-on-recovery) stays clean.
"""

LSM_PATH = "src/repro/docstore/lsm/fixture.py"


def fs(check_project, sources):
    if isinstance(sources, str):
        sources = {LSM_PATH: sources}
    return check_project(sources, "fs-consistency")


class TestFS001UnsyncedWrites:
    def test_write_without_fsync_before_publish_trips(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            """
            import os

            def publish(path, payload):
                with open(path + ".tmp", "w") as fh:
                    fh.write(payload)
                os.replace(path + ".tmp", path)
            """,
        )
        assert "FS001" in rule_ids(findings)

    def test_fsync_covered_write_is_clean(self, check_project, rule_ids):
        findings = fs(
            check_project,
            """
            import os

            def publish(path, payload):
                with open(path + ".tmp", "w") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(path + ".tmp", path)
            """,
        )
        assert "FS001" not in rule_ids(findings)

    def test_escaped_handle_is_not_judged_here(
        self, check_project, rule_ids
    ):
        # The durability obligation travels with the handle; the local
        # frame cannot be blamed for not fsyncing it.
        findings = fs(
            check_project,
            """
            import os

            def open_log(path):
                fh = open(path, "ab")
                fh.write(b"header")
                return fh

            def probe(fd):
                return os.pread(fd, 8, 0)
            """,
        )
        assert "FS001" not in rule_ids(findings)

    def test_modules_outside_the_durable_domain_are_ignored(
        self, check_project, rule_ids
    ):
        # A CSV exporter writes without fsync by design: no commit
        # protocol, no crash-consistency contract, no finding.
        findings = check_project(
            {
                "src/repro/io/fixture.py": """
                def export(path, rows):
                    with open(path, "w") as fh:
                        for row in rows:
                            fh.write(row)
                """
            },
            "fs-consistency",
        )
        assert rule_ids(findings) == []


class TestFS002ReplaceWithoutDirfsync:
    def test_delete_after_replace_without_dirfsync_trips(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            """
            import os

            def commit(manifest, wal):
                tmp = manifest + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write("state")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, manifest)
                os.remove(wal)
            """,
        )
        assert "FS002" in rule_ids(findings)

    def test_dirfsync_helper_between_replace_and_delete_is_clean(
        self, check_project, rule_ids
    ):
        # The helper is recognized structurally (os.open + os.fsync of
        # the directory fd) and spliced in through the call graph.
        findings = fs(
            check_project,
            """
            import os

            def _dirsync(directory):
                fd = os.open(directory, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)

            def commit(manifest, wal):
                tmp = manifest + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write("state")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, manifest)
                _dirsync(os.path.dirname(manifest))
                os.remove(wal)
            """,
        )
        assert "FS002" not in rule_ids(findings)

    def test_failure_path_cleanup_is_not_a_dependent_delete(
        self, check_project, rule_ids
    ):
        # Removing the temp file in an except handler is compensation,
        # not a success-path delete the rename must durably precede.
        findings = fs(
            check_project,
            """
            import os

            def commit(manifest):
                tmp = manifest + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write("state")
                    fh.flush()
                    os.fsync(fh.fileno())
                try:
                    os.replace(tmp, manifest)
                except OSError:
                    os.remove(tmp)
                    raise
            """,
        )
        assert "FS002" not in rule_ids(findings)


class TestFS003CloseBeforeUnlink:
    def test_close_then_unlink_of_shared_run_trips(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            """
            import os
            import threading

            class RunSet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._runs = []

                def read(self, key):
                    with self._lock:
                        runs = list(self._runs)
                    for run in runs:
                        data = os.pread(run.fd, 16, 0)
                        if data:
                            return data
                    return None

                def retire(self):
                    with self._lock:
                        victims = list(self._runs)
                        self._runs = []
                    for run in victims:
                        run.close()
                        run.remove()
            """,
        )
        assert "FS003" in rule_ids(findings)

    def test_unlink_without_close_is_clean(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            """
            import os
            import threading

            class RunSet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._runs = []

                def read(self, key):
                    with self._lock:
                        runs = list(self._runs)
                    for run in runs:
                        data = os.pread(run.fd, 16, 0)
                        if data:
                            return data
                    return None

                def retire(self):
                    with self._lock:
                        victims = list(self._runs)
                        self._runs = []
                    for run in victims:
                        run.remove()
            """,
        )
        assert "FS003" not in rule_ids(findings)

    def test_private_never_published_handle_may_close_first(
        self, check_project, rule_ids
    ):
        # A local object no reader ever saw (the compaction race-loser
        # shape) has no snapshot holders; close-then-remove is fine.
        findings = fs(
            check_project,
            """
            import os
            import threading

            class RunSet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._runs = []

                def read(self):
                    with self._lock:
                        return [os.pread(r.fd, 8, 0) for r in self._runs]

                def discard_unpublished(self, merged):
                    merged.close()
                    merged.remove()
            """,
        )
        assert "FS003" not in rule_ids(findings)


class TestFS004SwapBeforeCommit:
    SOURCES = """
        import os

        class Engine:
            def __init__(self):
                self._runs = []
                self._manifest = "m.json"

            def _commit(self, runs):
                tmp = self._manifest + ".manifest-tmp"
                with open(tmp, "w") as fh:
                    fh.write(str(runs))
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self._manifest)

            def sweep(self, names):
                for name in names:
                    if name.endswith((".tmp", ".manifest-tmp")):
                        os.remove(name)

            def %s
    """

    def test_state_swap_before_manifest_commit_trips(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            self.SOURCES
            % (
                "flush(self, merged):\n"
                "                keep = [r for r in self._runs]\n"
                "                self._runs = keep + [merged]\n"
                "                self._commit(self._runs)\n"
            ),
        )
        assert "FS004" in rule_ids(findings)

    def test_commit_before_swap_is_clean(self, check_project, rule_ids):
        findings = fs(
            check_project,
            self.SOURCES
            % (
                "flush(self, merged):\n"
                "                keep = [r for r in self._runs]\n"
                "                new_runs = keep + [merged]\n"
                "                self._commit(new_runs)\n"
                "                self._runs = new_runs\n"
            ),
        )
        assert "FS004" not in rule_ids(findings)


class TestFS005TempFilesWithoutSweep:
    def test_unswept_temp_suffix_trips(self, check_project, rule_ids):
        findings = fs(
            check_project,
            """
            import os

            def publish(path, payload):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            """,
        )
        assert "FS005" in rule_ids(findings)

    def test_swept_temp_suffix_is_clean(self, check_project, rule_ids):
        findings = fs(
            check_project,
            """
            import os

            def publish(path, payload):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)

            def recover(directory):
                for name in os.listdir(directory):
                    if name.endswith(".tmp"):
                        os.remove(os.path.join(directory, name))
            """,
        )
        assert "FS005" not in rule_ids(findings)


class TestFS006FsyncUnderContendedLock:
    SOURCES = """
        import os
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._side = threading.Lock()
                self._fh = open("wal", "ab")
                self._written = 0

            def nested(self):
                with self._lock:
                    with self._side:
                        self._written += 1

            def %s
    """

    def test_fsync_inside_contended_lock_trips(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            self.SOURCES
            % (
                "sync(self):\n"
                "                with self._lock:\n"
                "                    os.fsync(self._fh.fileno())\n"
            ),
        )
        assert "FS006" in rule_ids(findings)

    def test_fsync_in_helper_called_under_lock_trips(
        self, check_project, rule_ids
    ):
        # The ambient held set (PR-3 fixpoint) reaches the helper even
        # though the helper itself never touches the lock.
        findings = fs(
            check_project,
            self.SOURCES
            % (
                "flush(self):\n"
                "                with self._lock:\n"
                "                    self._sync_helper()\n"
                "\n"
                "            def _sync_helper(self):\n"
                "                os.fsync(self._fh.fileno())\n"
            ),
        )
        assert "FS006" in rule_ids(findings)

    def test_group_commit_fsync_outside_the_lock_is_clean(
        self, check_project, rule_ids
    ):
        findings = fs(
            check_project,
            self.SOURCES
            % (
                "sync(self):\n"
                "                with self._lock:\n"
                "                    target = self._written\n"
                "                os.fsync(self._fh.fileno())\n"
                "                return target\n"
            ),
        )
        assert "FS006" not in rule_ids(findings)


class TestShippedEngineIsClean:
    def test_src_tree_has_no_fs_error_findings(self, rule_ids):
        # The real engine must satisfy every ordering rule; only the
        # justified FS006 perf notes (baselined) may remain.
        from pathlib import Path

        from repro.analysis.checker import run_analysis

        repo_root = Path(__file__).resolve().parents[2]
        findings = run_analysis(
            ["src"], root=repo_root, select=["FS"]
        )
        assert sorted(
            {f.rule_id for f in findings}
        ) == ["FS006"], [f.message for f in findings]
