"""Baseline lifecycle: add, suppress, expire — and fingerprint shape."""

import ast

from repro.analysis.baseline import (
    PLACEHOLDER_JUSTIFICATION,
    Baseline,
    BaselineEntry,
)
from repro.analysis.checker import ModuleInfo, registered_checkers
from repro.analysis.findings import assign_ordinals

BAD = """\
def serve(lock):
    lock.acquire()
    do_work()
    lock.release()
"""

FIXED = """\
def serve(lock):
    lock.acquire()
    try:
        do_work()
    finally:
        lock.release()
"""


def _findings(source, path="src/repro/service/fixture.py"):
    module = ModuleInfo(
        path=path,
        package="repro.service.fixture",
        tree=ast.parse(source),
        source=source,
    )
    checker = registered_checkers()["lock-discipline"]()
    return assign_ordinals(checker.check(module))


def test_new_finding_without_baseline_entry():
    new, suppressed, stale = Baseline().split(_findings(BAD))
    assert [f.rule_id for f in new] == ["LD001"]
    assert suppressed == [] and stale == []


def test_add_then_suppress_round_trip(tmp_path):
    findings = _findings(BAD)
    path = tmp_path / "baseline.json"
    Baseline().updated(findings).save(path)

    loaded = Baseline.load(path)
    assert len(loaded) == 1
    entry = next(iter(loaded.entries.values()))
    assert entry.justification == PLACEHOLDER_JUSTIFICATION

    new, suppressed, stale = loaded.split(findings)
    assert new == [] and stale == []
    assert [f.rule_id for f in suppressed] == ["LD001"]


def test_fixed_code_expires_the_entry(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline().updated(_findings(BAD)).save(path)

    new, suppressed, stale = Baseline.load(path).split(_findings(FIXED))
    assert new == [] and suppressed == []
    assert [e.rule for e in stale] == ["LD001"]


def test_rewrite_drops_stale_and_keeps_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    findings = _findings(BAD)
    justified = Baseline(
        [
            BaselineEntry(
                fingerprint=f.fingerprint,
                rule=f.rule_id,
                path=f.path,
                symbol=f.symbol,
                justification="held across the handoff on purpose",
            )
            for f in findings
        ]
    )
    justified.save(path)

    # Same finding still present: rewrite preserves the justification.
    rewritten = Baseline.load(path).updated(findings)
    assert [e.justification for e in rewritten.entries.values()] == [
        "held across the handoff on purpose"
    ]

    # Finding gone: rewrite drops the entry.
    assert len(Baseline.load(path).updated(_findings(FIXED))) == 0


def test_fingerprint_is_line_independent():
    shifted = "\n\n\n" + BAD
    assert [f.fingerprint for f in _findings(BAD)] == [
        f.fingerprint for f in _findings(shifted)
    ]
    assert _findings(BAD)[0].line != _findings(shifted)[0].line


def test_missing_baseline_file_is_empty(tmp_path):
    loaded = Baseline.load(tmp_path / "nope.json")
    assert len(loaded) == 0
