"""Lock-discipline (LD) rules: each fires on the bad shape, stays
quiet on the fixed one — including a reconstruction of the actual PR-1
timeout-path lock leak."""


# A faithful reconstruction of _read_lock_targeted_shards *before* the
# PR-1 review fix: deadline.remaining() can raise QueryTimeoutError
# mid-loop, and the already-acquired read locks leak because the only
# releases are on the straight-line path.
PRE_FIX_PR1_LEAK = """
class QueryService:
    def _read_lock_targeted_shards(self, collection, query, deadline):
        acquired = []
        ok = True
        for shard_id in sorted(self._targeting(collection, query)):
            lock = self._shard_locks[shard_id]
            if not lock.acquire_read(timeout=deadline.remaining()):
                ok = False
                break
            acquired.append(lock)
        if ok:
            return acquired
        for lock in acquired:
            lock.release_read()
        raise QueryTimeoutError("timed out waiting for shard read locks")
"""

# The shipped code after the review fix: every acquisition sits inside
# a try whose BaseException handler releases what was acquired.
POST_FIX_PR1 = """
class QueryService:
    def _read_lock_targeted_shards(self, collection, query, deadline):
        acquired = []
        ok = True
        try:
            for shard_id in sorted(self._targeting(collection, query)):
                lock = self._shard_locks[shard_id]
                if not lock.acquire_read(timeout=deadline.remaining()):
                    ok = False
                    break
                acquired.append(lock)
        except BaseException:
            for lock in acquired:
                lock.release_read()
            raise
        if ok:
            return acquired
        for lock in acquired:
            lock.release_read()
        raise QueryTimeoutError("timed out waiting for shard read locks")
"""


class TestLD001ReleaseOnAllPaths:
    def test_pre_fix_pr1_leak_is_flagged(self, check, rule_ids):
        findings = check(PRE_FIX_PR1_LEAK, "lock-discipline")
        assert "LD001" in rule_ids(findings)

    def test_post_fix_pr1_code_is_clean(self, check):
        assert check(POST_FIX_PR1, "lock-discipline") == []

    def test_bare_acquire_without_finally(self, check, rule_ids):
        source = """
        def serve(lock):
            lock.acquire()
            do_work()
            lock.release()
        """
        assert rule_ids(check(source, "lock-discipline")) == ["LD001"]

    def test_acquire_released_in_finally_is_clean(self, check):
        source = """
        def serve(lock):
            lock.acquire()
            try:
                do_work()
            finally:
                lock.release()
        """
        assert check(source, "lock-discipline") == []

    def test_with_statement_is_clean(self, check):
        source = """
        def serve(lock):
            with lock:
                do_work()
        """
        assert check(source, "lock-discipline") == []

    def test_with_acquire_helper_is_clean(self, check):
        source = """
        def serve(rw):
            with rw.read_locked():
                do_work()
        """
        assert check(source, "lock-discipline") == []

    def test_release_in_nested_closure_finally_counts(self, check):
        # The open-loop load generator's shape: the semaphore token is
        # released by the closure handed to the worker pool.
        source = """
        def run(sem, pool, work):
            def handoff(item):
                try:
                    work(item)
                finally:
                    sem.release()

            for item in sorted(work.items):
                if sem.acquire(blocking=False):
                    pool.submit(handoff, item)
        """
        assert check(source, "lock-discipline") == []

    def test_wrapper_delegating_acquire_is_clean(self, check):
        # Regression: an instrumented-lock wrapper whose ``acquire``
        # forwards to the inner lock holds it *for its caller* — the
        # caller's unwind path is the one to judge, not the wrapper's.
        source = """
        import threading

        class SanitizedLock:
            def __init__(self):
                self._inner = threading.Lock()

            def acquire(self, blocking=True):
                return self._inner.acquire(blocking)

            def release(self):
                self._inner.release()
        """
        assert check(source, "lock-discipline") == []

    def test_enter_exit_pair_is_clean(self, check):
        # ``__enter__`` acquires, ``__exit__`` releases: the pairing
        # spans two methods by design.
        source = """
        import threading

        class Guard:
            def __init__(self):
                self._inner = threading.Lock()

            def __enter__(self):
                self._inner.acquire()
                return self

            def __exit__(self, *exc_info):
                self._inner.release()
        """
        assert check(source, "lock-discipline") == []

    def test_differently_named_method_is_still_flagged(
        self, check, rule_ids
    ):
        # The exemption is strictly name-matched: a ``grab`` that
        # acquires and then does risky work is not a wrapper.
        source = """
        import threading

        class Guard:
            def __init__(self):
                self._inner = threading.Lock()

            def grab(self):
                self._inner.acquire()
                work()
                self._inner.release()
        """
        assert rule_ids(check(source, "lock-discipline")) == ["LD001"]


class TestLD002SortedAcquisitionOrder:
    def test_unsorted_multi_lock_loop_is_flagged(self, check, rule_ids):
        source = """
        def lock_all(locks, shard_ids):
            for shard_id in shard_ids:
                locks[shard_id].acquire_write()
            try:
                pass
            finally:
                for shard_id in shard_ids:
                    locks[shard_id].release_write()
        """
        assert "LD002" in rule_ids(check(source, "lock-discipline"))

    def test_sorted_multi_lock_loop_is_clean(self, check):
        source = """
        def lock_all(locks, shard_ids):
            for shard_id in sorted(shard_ids):
                locks[shard_id].acquire_write()
            try:
                pass
            finally:
                for shard_id in shard_ids:
                    locks[shard_id].release_write()
        """
        assert check(source, "lock-discipline") == []

    def test_retry_loop_around_sorted_inner_loop_is_clean(self, check):
        # The shipped targeting-retry shape: the outer attempt loop
        # must not be blamed for the (sorted) inner acquisition loop.
        source = """
        def retry(locks, ids):
            for _attempt in range(16):
                try:
                    for shard_id in sorted(ids):
                        locks[shard_id].acquire_read()
                finally:
                    for shard_id in sorted(ids):
                        locks[shard_id].release_read()
        """
        assert check(source, "lock-discipline") == []

    def test_release_only_loop_is_not_flagged(self, check):
        source = """
        def unlock_all(acquired):
            for lock in acquired:
                lock.release_read()
        """
        assert check(source, "lock-discipline") == []


class TestLD003GuardedSharedMutation:
    def test_unguarded_mutation_in_lock_owning_class(self, check, rule_ids):
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def put(self, key, value):
                self._entries[key] = value
        """
        assert rule_ids(check(source, "lock-discipline")) == ["LD003"]

    def test_guarded_mutation_is_clean(self, check):
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def put(self, key, value):
                with self._lock:
                    self._entries[key] = value
        """
        assert check(source, "lock-discipline") == []

    def test_locked_suffix_convention_is_trusted(self, check):
        # Methods named ``*_locked`` declare that the caller holds the
        # class lock (the worker-host/worker-client idiom); their
        # mutations are judged as guarded.
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def put(self, key, value):
                with self._lock:
                    self._put_locked(key, value)

            def _put_locked(self, key, value):
                self._entries[key] = value
        """
        assert check(source, "lock-discipline") == []

    def test_locked_suffix_does_not_cover_closures(self, check, rule_ids):
        # A closure defined inside a ``*_locked`` method may run later
        # on another thread; it is still judged on its own terms.
        source = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def _schedule_locked(self, key, value):
                def later():
                    self._entries[key] = value
                return later
        """
        assert rule_ids(check(source, "lock-discipline")) == ["LD003"]

    def test_class_without_locks_is_exempt(self, check):
        source = """
        class PlainBag:
            def put(self, key, value):
                self._entries[key] = value
        """
        assert check(source, "lock-discipline") == []

    def test_mutator_method_call_outside_lock(self, check, rule_ids):
        source = """
        import threading

        class Tally:
            def __init__(self):
                self.lock = threading.Lock()
                self.values = []

            def add(self, v):
                self.values.append(v)
        """
        assert rule_ids(check(source, "lock-discipline")) == ["LD003"]

    def test_class_level_lock_guards_class_attr(self, check):
        # The ObjectId counter shape: class-level lock, class-attr
        # mutation under `with ClassName._lock`.
        source = """
        import threading

        class ObjectId:
            _counter_lock = threading.Lock()
            _counter = 0

            def bump(self):
                with ObjectId._counter_lock:
                    ObjectId._counter = (ObjectId._counter + 1) & 0xFF
        """
        assert check(source, "lock-discipline") == []
