"""The three stale-cache bug classes, checked from both sides.

Tentpole of the cache-coherence PR: each reconstructed invalidation
bug must be caught *statically* (a CC finding on the fixture) and *at
runtime* (the epoch tracer observing a stale hit of the same family),
the two verdicts must cross-validate, and the shipped caches — traced
the same way under a real workload — must come out clean against the
real static model.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.analysis.checker import run_analysis
from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.cluster.zones import Zone
from repro.docstore import bson
from repro.sanitizer import (
    CacheTracer,
    cross_validate_cache,
    instrument_plan_cache,
    instrument_stats_catalog,
    instrument_targeting_cache,
)
from repro.service.service import QueryService
from tests.analysis.cache_reconstruction import (
    plan_cache_ddl,
    stats_catalog_split,
    storage_epoch_swap,
    targeting_version,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).with_name("cache_reconstruction")


def analyze(name):
    """Static CC findings for one reconstruction fixture."""
    return run_analysis(
        [str(FIXTURES / name)], root=REPO_ROOT, select=["CC"]
    )


def rel(name):
    """The fixture's repo-relative path (cross-validation scope)."""
    return "tests/analysis/cache_reconstruction/" + name


class TestPlanCacheDdl:
    """Bug class 1: catalog DDL leaves the plan generation unmoved."""

    def test_static_checker_flags_exactly_cc003(self):
        findings = analyze("plan_cache_ddl.py")
        assert {f.rule_id for f in findings} == {"CC003"}
        (finding,) = findings
        assert finding.symbol.endswith("drop_index")
        assert "no version bump" in finding.message

    def _drive(self):
        tracer = CacheTracer()
        svc = plan_cache_ddl.CatalogService()
        orig_get, orig_put = svc.cache.get, svc.cache.put

        def get(key):
            found = orig_get(key)
            if found is not None:
                tracer.check_hit(
                    "ddl-plan", key, ("ddl",), family="CC003"
                )
            return found

        def put(key, value):
            tracer.record_fill("ddl-plan", key, ("ddl",))
            orig_put(key, value)

        svc.cache.get, svc.cache.put = get, put
        orig_create, orig_drop = svc.create_index, svc.drop_index

        def create_index(name, spec):
            tracer.advance("ddl")
            return orig_create(name, spec)

        def drop_index(name):
            # Ground truth: the catalog mutates here whether or not
            # the fixture remembers to bump its generation.
            tracer.advance("ddl")
            return orig_drop(name)

        svc.create_index, svc.drop_index = create_index, drop_index

        svc.create_index("k_idx", ("k",))
        plan = svc.cached_plan(("k",), svc.plan_generation)
        assert plan == ["k_idx"]
        svc.drop_index("k_idx")
        # The generation never moved, so the same key HITS the entry
        # that still hints the dropped index — the wrong answer the
        # tracer pins as a stale hit.
        stale = svc.cached_plan(("k",), svc.plan_generation)
        assert stale == ["k_idx"]
        return tracer

    def test_trace_oracle_observes_the_stale_hit(self):
        tracer = self._drive()
        families = {v.family for v in tracer.violations()}
        assert families == {"CC003"}
        with pytest.raises(AssertionError, match="stale hit"):
            tracer.assert_clean()

    def test_both_verdicts_cross_validate(self):
        tracer = self._drive()
        report = cross_validate_cache(
            analyze("plan_cache_ddl.py"),
            tracer.violations(),
            [rel("plan_cache_ddl.py")],
        )
        assert report.ok, report.render()
        assert "OK" in report.render()

    def test_runtime_without_static_is_a_blind_spot(self):
        tracer = self._drive()
        report = cross_validate_cache(
            [], tracer.violations(), [rel("plan_cache_ddl.py")]
        )
        assert not report.ok
        assert report.unexplained_runtime_violations
        assert "blind spot" in report.render()

    def test_static_without_runtime_needs_justification(self):
        findings = analyze("plan_cache_ddl.py")
        report = cross_validate_cache(
            findings, [], [rel("plan_cache_ddl.py")]
        )
        assert not report.ok
        assert report.unmanifested_static_findings
        justified = cross_validate_cache(
            findings,
            [],
            [rel("plan_cache_ddl.py")],
            justified=[f.fingerprint for f in findings],
        )
        assert justified.ok


class _RacyTopology(targeting_version.Topology):
    """Fixture topology whose version read can fire a racing mutation.

    ``metadata_version`` becomes a property so the test can inject a
    concurrent ``move_chunk`` exactly between the fixture's governed
    data read and its version capture — the CC002 window — while the
    fixture's own ``route`` body runs unmodified.
    """

    race = None

    @property
    def metadata_version(self):
        if self.race is not None:
            race, self.race = self.race, None
            race()
        return self._mv

    @metadata_version.setter
    def metadata_version(self, value):
        self._mv = value


class TestTargetingVersionSkew:
    """Bug class 2: routing key built from a fresher version than its data."""

    def test_static_checker_flags_exactly_cc002(self):
        findings = analyze("targeting_version.py")
        assert {f.rule_id for f in findings} == {"CC002"}
        (finding,) = findings
        assert finding.symbol.endswith("route")
        assert "captured" in finding.message

    def _drive(self):
        tracer = CacheTracer()
        topo = _RacyTopology()
        orig_bump = topo._bump_metadata_version

        def bump():
            tracer.advance("metadata")
            return orig_bump()

        topo._bump_metadata_version = bump
        topo.move_chunk("c0", "s0")

        # Derivation-time snapshot: route() starts deriving now.
        snapshot = tracer.snapshot()
        orig_get, orig_put = topo.routes.get, topo.routes.put

        def get(key):
            value = orig_get(key)
            if value is not None:
                tracer.check_hit(
                    "routes", key, ("metadata",), family="CC002"
                )
            return value

        def put(key, value):
            tracer.record_fill(
                "routes", key, ("metadata",), at=snapshot
            )
            orig_put(key, value)

        topo.routes.get, topo.routes.put = get, put

        # The racing split lands between route()'s chunk-map read and
        # its version capture — the exact window the fixture leaves
        # open.
        topo.race = lambda: topo.move_chunk("c1", "s1")
        stale = topo.route((0, 10))
        assert "c1" not in stale  # derived before the split
        # Same interval, now-current version: the fresh key HITS the
        # stale derivation stored under it, permanently.
        served = topo.route((0, 10))
        assert served == stale
        return tracer

    def test_trace_oracle_observes_the_stale_hit(self):
        tracer = self._drive()
        families = {v.family for v in tracer.violations()}
        assert families == {"CC002"}

    def test_both_verdicts_cross_validate(self):
        tracer = self._drive()
        report = cross_validate_cache(
            analyze("targeting_version.py"),
            tracer.violations(),
            [rel("targeting_version.py")],
        )
        assert report.ok, report.render()

    def test_runtime_without_static_is_a_blind_spot(self):
        tracer = self._drive()
        report = cross_validate_cache(
            [], tracer.violations(), [rel("targeting_version.py")]
        )
        assert not report.ok
        assert "blind spot" in report.render()


class TestStorageEpochSwap:
    """Bug class 3: epoch bumped before the segment swap is visible."""

    def test_static_checker_flags_exactly_cc004(self):
        findings = analyze("storage_epoch_swap.py")
        assert {f.rule_id for f in findings} == {"CC004"}
        (finding,) = findings
        assert finding.symbol.endswith("swap_segment")
        assert "bumped" in finding.message

    def _drive(self):
        tracer = CacheTracer()
        eng = storage_epoch_swap.StorageEngine()

        class TrackedSegments(dict):
            """Advance the storage domain when a swap becomes visible."""

            def __setitem__(self, key, value):
                tracer.advance("storage")
                super().__setitem__(key, value)

        eng.segments = TrackedSegments()
        orig_get, orig_put = eng.cache.get, eng.cache.put

        def get(key):
            value = orig_get(key)
            if value is not None:
                tracer.check_hit(
                    "segments", key, ("storage",), family="CC004"
                )
            return value

        def put(key, value):
            tracer.record_fill("segments", key, ("storage",))
            orig_put(key, value)

        eng.cache.get, eng.cache.put = get, put

        eng.add_segment("s0", {"a": "1"})
        assert eng.lookup("a", eng.storage_epoch) == ["s0"]

        # A reader misses on the NEW epoch between the premature bump
        # and the swap, caching the old contents under the new key.
        race = {"fired": False}
        orig_bump = eng._bump_storage_epoch

        def racing_bump():
            orig_bump()
            if not race["fired"]:
                race["fired"] = True
                assert eng.lookup("b", eng.storage_epoch) == []

        eng._bump_storage_epoch = racing_bump
        eng.swap_segment("s0", {"b": "2"})
        # Post-swap lookup on the current epoch HITS the pre-swap
        # entry: "b" exists now, the cache says it does not.
        assert eng.lookup("b", eng.storage_epoch) == []
        return tracer

    def test_trace_oracle_observes_the_stale_hit(self):
        tracer = self._drive()
        families = {v.family for v in tracer.violations()}
        assert families == {"CC004"}

    def test_both_verdicts_cross_validate(self):
        tracer = self._drive()
        report = cross_validate_cache(
            analyze("storage_epoch_swap.py"),
            tracer.violations(),
            [rel("storage_epoch_swap.py")],
        )
        assert report.ok, report.render()

    def test_runtime_without_static_is_a_blind_spot(self):
        tracer = self._drive()
        report = cross_validate_cache(
            [], tracer.violations(), [rel("storage_epoch_swap.py")]
        )
        assert not report.ok
        assert "blind spot" in report.render()


class TestStatsCatalogSplit:
    """Bug class 4: ANALYZE output outlives the chunk map it measured."""

    def test_static_checker_flags_exactly_cc001(self):
        findings = analyze("stats_catalog_split.py")
        assert {f.rule_id for f in findings} == {"CC001"}
        (finding,) = findings
        assert finding.symbol.endswith("stats_for")
        assert "no version token" in finding.message

    def _drive(self):
        tracer = CacheTracer()
        cluster = stats_catalog_split.StatsCluster()
        orig_bump = cluster._bump_metadata_version

        def bump():
            # Ground truth: the chunk map mutates here whether or not
            # the fixture's catalog ever hears about it.
            tracer.advance("metadata")
            return orig_bump()

        cluster._bump_metadata_version = bump
        orig_get, orig_put = (
            cluster.catalog.get,
            cluster.catalog.put,
        )

        def get(key):
            value = orig_get(key)
            if value is not None:
                tracer.check_hit(
                    "catalog", key, ("metadata",), family="CC001"
                )
            return value

        def put(key, value):
            tracer.record_fill("catalog", key, ("metadata",))
            orig_put(key, value)

        cluster.catalog.get, cluster.catalog.put = get, put

        assert cluster.analyze("traces") == {"chunks": 1}
        assert cluster.stats_for("traces") == {"chunks": 1}  # fresh
        cluster.split_chunk("c0", 50)
        # The catalog still answers with the pre-split chunk count —
        # the cost model plans against 1 chunk where the cluster now
        # has 2, the wrong answer the tracer pins as a stale hit.
        stale = cluster.stats_for("traces")
        assert stale == {"chunks": 1}
        assert len(cluster.chunks) == 2
        return tracer

    def test_trace_oracle_observes_the_stale_hit(self):
        tracer = self._drive()
        families = {v.family for v in tracer.violations()}
        assert families == {"CC001"}
        with pytest.raises(AssertionError, match="stale hit"):
            tracer.assert_clean()

    def test_both_verdicts_cross_validate(self):
        tracer = self._drive()
        report = cross_validate_cache(
            analyze("stats_catalog_split.py"),
            tracer.violations(),
            [rel("stats_catalog_split.py")],
        )
        assert report.ok, report.render()

    def test_runtime_without_static_is_a_blind_spot(self):
        tracer = self._drive()
        report = cross_validate_cache(
            [], tracer.violations(), [rel("stats_catalog_split.py")]
        )
        assert not report.ok
        assert "blind spot" in report.render()

    def test_static_without_runtime_needs_justification(self):
        findings = analyze("stats_catalog_split.py")
        report = cross_validate_cache(
            findings, [], [rel("stats_catalog_split.py")]
        )
        assert not report.ok
        assert report.unmanifested_static_findings
        justified = cross_validate_cache(
            findings,
            [],
            [rel("stats_catalog_split.py")],
            justified=[f.fingerprint for f in findings],
        )
        assert justified.ok


class TestShippedCaches:
    """The shipped tree, traced under a real workload, validates clean."""

    @staticmethod
    def _workload(tracer):
        cluster = ShardedCluster(
            topology=ClusterTopology(n_shards=2),
            chunk_max_bytes=2 * 1024,
        )
        cluster.shard_collection("t", [("k", 1)])
        with QueryService(cluster) as service:
            instrument_targeting_cache(cluster, tracer)
            instrument_plan_cache(service, tracer)
            instrument_stats_catalog(service, tracer)
            rng = random.Random(11)
            docs = [
                {
                    "_id": i,
                    "k": rng.randrange(0, 1000),
                    "v": i % 5,
                    "pad": "x" * 64,
                }
                for i in range(300)
            ]
            service.insert_many("t", docs)
            service.create_index("t", [("v", 1)], name="v_idx")
            service.analyze_collection("t")
            for _ in range(3):
                service.find("t", {"k": {"$gte": 10, "$lt": 600}})
                service.find("t", {"v": 2})
                assert service.collection_stats("t") is not None
            pattern = cluster.catalog.get("t").pattern
            mid = (bson.sort_key(500),)
            low, high = sorted(cluster.shards)
            cluster.update_zones(
                "t",
                [
                    Zone("low", pattern.global_min(), mid, low),
                    Zone("high", mid, pattern.global_max(), high),
                ],
            )
            # The zone change bumped the metadata version: the catalog
            # must refuse its stamp, and a re-ANALYZE restamps it.
            assert service.collection_stats("t") is None
            service.analyze_collection("t")
            for _ in range(3):
                service.find("t", {"k": {"$gte": 10, "$lt": 600}})
                service.find("t", {"v": 2})
                assert service.collection_stats("t") is not None
            service.drop_index("t", "v_idx")
            for _ in range(2):
                service.find("t", {"v": 2})

    def test_shipped_tree_cross_validates_clean(self):
        tracer = CacheTracer()
        self._workload(tracer)
        tracer.assert_clean()
        findings = run_analysis(["src"], root=REPO_ROOT, select=["CC"])
        # The only finding the shipped tree carries is the justified
        # CC006 sharing note, which has no runtime shape and is out of
        # cross-validation scope by design.
        assert {f.rule_id for f in findings} <= {"CC006"}
        report = cross_validate_cache(findings, tracer.violations())
        assert report.ok, report.render()
