"""Unit tests for the CC checker shapes the fixtures don't cover.

The three reconstruction fixtures pin CC002/CC003/CC004 end to end
(tests/analysis/test_cache_reconstruction.py); these snippets pin
CC001, CC005, CC006, the exemptions that keep the shipped tree
quiet, and the ``--changed-only`` scoping of CC findings.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.checker import run_analysis

CC = "cache-coherence"


NAIVE_CACHE = """
    class NaiveCache:
        def __init__(self):
            self._entries = {}

        def get(self, key):
            value = self._entries.get(key)
            if value is None:
                return None
            return value

        def put(self, key, value):
            self._entries[key] = value

        def clear(self):
            self._entries.clear()
"""


class TestCC001UnkeyedRead:
    def test_unkeyed_read_trips(self, check_project, rule_ids):
        findings = check_project(
            NAIVE_CACHE
            + """
            class Router:
                def __init__(self):
                    self.metadata_version = 0
                    self.chunk_map = {}
                    self.cache = NaiveCache()

                def _bump(self):
                    self.metadata_version += 1

                def move(self, chunk_id, shard_id):
                    self.chunk_map[chunk_id] = shard_id
                    self._bump()

                def route(self, interval):
                    cached = self.cache.get(interval)
                    if cached is not None:
                        return cached
                    owners = sorted(self.chunk_map)
                    self.cache.put(interval, owners)
                    return owners
            """,
            CC,
        )
        assert rule_ids(findings) == ["CC001"]
        (finding,) = findings
        assert finding.symbol.endswith("route")

    def test_version_keyed_read_is_clean(self, check_project, rule_ids):
        findings = check_project(
            NAIVE_CACHE
            + """
            class Router:
                def __init__(self):
                    self.metadata_version = 0
                    self.chunk_map = {}
                    self.cache = NaiveCache()

                def _bump(self):
                    self.metadata_version += 1

                def move(self, chunk_id, shard_id):
                    self.chunk_map[chunk_id] = shard_id
                    self._bump()

                def route(self, interval):
                    version = self.metadata_version
                    key = (interval, version)
                    cached = self.cache.get(key)
                    if cached is not None:
                        return cached
                    owners = sorted(self.chunk_map)
                    self.cache.put(key, owners)
                    return owners
            """,
            CC,
        )
        assert rule_ids(findings) == []

    def test_push_invalidated_cache_is_exempt(
        self, check_project, rule_ids
    ):
        findings = check_project(
            NAIVE_CACHE
            + """
            class Owner:
                def __init__(self):
                    self.cache = NaiveCache()

                def read(self, shape):
                    return self.cache.get(shape)

                def on_ddl(self):
                    self.cache.clear()
            """,
            CC,
        )
        assert rule_ids(findings) == []


class TestCC005LockWindow:
    LOCKED = """
    import threading

    class WindowCache:
        def __init__(self):
            self._entries = {}

        def get(self, key):
            value = self._entries.get(key)
            if value is None:
                return None
            return value

        def put(self, key, value):
            self._entries[key] = value

    class Holder:
        def __init__(self):
            self.metadata_version = 0
            self.data = {}
            self.cache = WindowCache()
            self._lock = threading.Lock()

        def _bump(self):
            self.metadata_version += 1

        def refresh(self, key, version):
            with self._lock:
                value = sorted(self.data)
                self.cache.put((key, version), value)
            if version != self.metadata_version:
                return None
            return value
    """

    def test_fill_under_lock_checked_after_release_warns(
        self, check_project, rule_ids
    ):
        findings = check_project(self.LOCKED, CC)
        assert rule_ids(findings) == ["CC005"]
        (finding,) = findings
        assert finding.symbol.endswith("refresh")
        assert "_lock" in finding.message

    def test_check_inside_the_lock_is_clean(
        self, check_project, rule_ids
    ):
        inside = self.LOCKED.replace(
            """with self._lock:
                value = sorted(self.data)
                self.cache.put((key, version), value)
            if version != self.metadata_version:
                return None""",
            """with self._lock:
                value = sorted(self.data)
                self.cache.put((key, version), value)
                if version != self.metadata_version:
                    return None""",
        )
        assert inside != self.LOCKED
        findings = check_project(inside, CC)
        assert rule_ids(findings) == []


class TestCC006ShardSharing:
    def test_shared_shard_derived_value_is_noted(
        self, check_project, rule_ids
    ):
        findings = check_project(
            """
            class Fanout:
                def __init__(self):
                    self.shards = {}

                def run(self, ids, collection):
                    first = self.shards[ids[0]]
                    bounds = first.bounds(collection)

                    def work(shard_id):
                        return self.shards[shard_id].query(
                            collection, bounds
                        )

                    return [work(i) for i in ids]
            """,
            CC,
        )
        assert rule_ids(findings) == ["CC006"]
        (finding,) = findings
        assert "bounds" in finding.message

    def test_value_derived_inside_the_closure_is_clean(
        self, check_project, rule_ids
    ):
        findings = check_project(
            """
            class Fanout:
                def __init__(self):
                    self.shards = {}

                def run(self, ids, collection):
                    def work(shard_id):
                        shard = self.shards[shard_id]
                        bounds = shard.bounds(collection)
                        return shard.query(collection, bounds)

                    return [work(i) for i in ids]
            """,
            CC,
        )
        assert rule_ids(findings) == []


BUGGY_MODULE = """
class NaiveCache:
    def __init__(self):
        self._entries = {}

    def get(self, key):
        value = self._entries.get(key)
        if value is None:
            return None
        return value

    def put(self, key, value):
        self._entries[key] = value


class Router:
    def __init__(self):
        self.metadata_version = 0
        self.chunk_map = {}
        self.cache = NaiveCache()

    def _bump(self):
        self.metadata_version += 1

    def move(self, chunk_id, shard_id):
        self.chunk_map[chunk_id] = shard_id
        self._bump()

    def route(self, interval):
        cached = self.cache.get(interval)
        if cached is not None:
            return cached
        owners = sorted(self.chunk_map)
        self.cache.put(interval, owners)
        return owners
"""

CLEAN_MODULE = """
def lonely():
    return 1
"""


class TestChangedOnlyScoping:
    """CC findings participate in the dependent-selection walk."""

    @pytest.fixture
    def tree(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "router.py").write_text(textwrap.dedent(BUGGY_MODULE))
        (src / "other.py").write_text(textwrap.dedent(CLEAN_MODULE))
        return tmp_path

    def test_changed_cache_module_keeps_the_finding(self, tree):
        findings = run_analysis(
            ["src"],
            root=tree,
            select=["CC"],
            changed_scope=["src/router.py"],
        )
        assert [f.rule_id for f in findings] == ["CC001"]

    def test_unrelated_change_drops_the_finding(self, tree):
        findings = run_analysis(
            ["src"],
            root=tree,
            select=["CC"],
            changed_scope=["src/other.py"],
        )
        assert findings == []
