"""Fixtures for the static-analyzer tests: run one checker on a snippet."""

import ast
import textwrap

import pytest

from repro.analysis.checker import (
    ModuleInfo,
    module_name_for,
    registered_checkers,
)


def _check(
    source,
    checker_name,
    path="src/repro/service/fixture.py",
    package="repro.service.fixture",
):
    """Run a single checker over an inline source snippet."""
    cleaned = textwrap.dedent(source)
    module = ModuleInfo(
        path=path,
        package=package,
        tree=ast.parse(cleaned),
        source=cleaned,
    )
    checker_cls = registered_checkers()[checker_name]
    return checker_cls().check(module)


def _modules(sources):
    """Parse ``{path: source}`` snippets into a ModuleInfo list."""
    if isinstance(sources, str):
        sources = {"src/repro/service/fixture.py": sources}
    modules = []
    for path, source in sorted(sources.items()):
        cleaned = textwrap.dedent(source)
        modules.append(
            ModuleInfo(
                path=path,
                package=module_name_for(path),
                tree=ast.parse(cleaned),
                source=cleaned,
            )
        )
    return modules


def _check_project(sources, checker_name="lock-order"):
    """Run a project checker over one or more source snippets."""
    checker_cls = registered_checkers()[checker_name]
    return checker_cls().check_project(_modules(sources))


@pytest.fixture
def check():
    """Callable running one checker over a snippet; returns findings."""
    return _check


@pytest.fixture
def check_project():
    """Callable running a project checker over snippet(s)."""
    return _check_project


@pytest.fixture
def parse_modules():
    """Callable parsing ``{path: source}`` into ModuleInfo objects."""
    return _modules


@pytest.fixture
def rule_ids():
    """Callable reducing findings to their sorted rule-id list."""
    return lambda findings: sorted(f.rule_id for f in findings)
