"""Fixtures for the static-analyzer tests: run one checker on a snippet."""

import ast
import textwrap

import pytest

from repro.analysis.checker import ModuleInfo, registered_checkers


def _check(
    source,
    checker_name,
    path="src/repro/service/fixture.py",
    package="repro.service.fixture",
):
    """Run a single checker over an inline source snippet."""
    cleaned = textwrap.dedent(source)
    module = ModuleInfo(
        path=path,
        package=package,
        tree=ast.parse(cleaned),
        source=cleaned,
    )
    checker_cls = registered_checkers()[checker_name]
    return checker_cls().check(module)


@pytest.fixture
def check():
    """Callable running one checker over a snippet; returns findings."""
    return _check


@pytest.fixture
def rule_ids():
    """Callable reducing findings to their sorted rule-id list."""
    return lambda findings: sorted(f.rule_id for f in findings)
