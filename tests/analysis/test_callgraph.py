"""Call-graph construction: resolution policy, spawns, closures.

The resolution policy under test is deliberately conservative: a
fabricated call edge would fabricate lock-order cycles downstream, so
an ambiguous receiver resolves to *nothing*, not to everything.
"""

from repro.analysis.callgraph import build_call_graph

SERVICE = """
class Cluster:
    def find(self, query):
        return []

class Service:
    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def find(self, query):
        return self.cluster.find(query)
"""


def edges_of(graph, caller):
    return {(e.callee, e.kind) for e in graph.callees(caller)}


class TestTypeInformedResolution:
    def test_attribute_call_uses_receiver_type(self, parse_modules):
        graph = build_call_graph(parse_modules(SERVICE))
        assert edges_of(
            graph, "repro.service.fixture.Service.find"
        ) == {("repro.service.fixture.Cluster.find", "call")}

    def test_typed_unknown_receiver_produces_no_edge(self, parse_modules):
        # ``cluster: External`` names a class outside the module set;
        # the same-named local method must NOT be picked up.
        source = """
        class Service:
            def __init__(self, cluster: "External"):
                self.cluster = cluster

            def find(self, query):
                return self.cluster.find(query)
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.Service.find") == set()

    def test_builtin_container_method_produces_no_edge(self, parse_modules):
        source = """
        class Cache:
            def __init__(self):
                self._entries = {}

            def clear(self):
                self._entries.clear()
        """
        graph = build_call_graph(parse_modules(source))
        # self._entries.clear() is dict.clear, not Cache.clear.
        assert edges_of(graph, "repro.service.fixture.Cache.clear") == set()

    def test_unique_untyped_method_name_resolves(self, parse_modules):
        source = """
        class Worker:
            def step(self):
                return 1

        def run(worker):
            return worker.step()
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.run") == {
            ("repro.service.fixture.Worker.step", "call")
        }


class TestSpawnEdges:
    def test_submit_is_a_spawn_edge(self, parse_modules):
        source = """
        class Service:
            def run(self, pool):
                pool.submit(self.task)

            def task(self):
                pass
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.Service.run") == {
            ("repro.service.fixture.Service.task", "spawn")
        }

    def test_thread_target_is_a_spawn_edge(self, parse_modules):
        source = """
        import threading

        def client_loop():
            pass

        def run():
            t = threading.Thread(target=client_loop)
            t.start()
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.run") == {
            ("repro.service.fixture.client_loop", "spawn")
        }


class TestClosures:
    def test_callable_argument_is_a_closure_edge(self, parse_modules):
        source = """
        class Service:
            def apply(self, fn):
                return fn()

            def run(self):
                return self.apply(self.task)

            def task(self):
                pass
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.Service.run") == {
            ("repro.service.fixture.Service.apply", "call"),
            ("repro.service.fixture.Service.task", "closure"),
        }

    def test_lambda_argument_binds_to_callee_param(self, parse_modules):
        source = """
        class Service:
            def apply(self, fn):
                return fn()

            def run(self):
                return self.apply(lambda: 1)
        """
        graph = build_call_graph(parse_modules(source))
        calls = graph.calls_by_function["repro.service.fixture.Service.run"]
        (resolved,) = calls
        assert resolved.param_binds == (
            ("fn", "repro.service.fixture.Service.run.<lambda:7>"),
        )

    def test_returned_nested_function_transfers_closure(self, parse_modules):
        source = """
        class Service:
            def consume(self, mapper):
                return mapper()

            def make_mapper(self):
                def mapper():
                    return 1
                return mapper

            def run(self):
                return self.consume(self.make_mapper())
        """
        graph = build_call_graph(parse_modules(source))
        edges = edges_of(graph, "repro.service.fixture.Service.run")
        assert (
            "repro.service.fixture.Service.make_mapper.mapper",
            "closure",
        ) in edges

    def test_nested_def_call_resolves_in_scope(self, parse_modules):
        source = """
        def outer():
            def helper():
                return 1
            return helper()
        """
        graph = build_call_graph(parse_modules(source))
        assert edges_of(graph, "repro.service.fixture.outer") == {
            ("repro.service.fixture.outer.helper", "call")
        }
