"""PR-6 bug class 2: retiring runs by closing before unlinking.

Readers snapshot the run list under the lock and then ``pread``
outside it — that is the whole point of immutable runs.  Retirement
that *closes* the descriptor hands every snapshot holder a dead fd,
or, if the number is recycled first, bytes from an unrelated file.
The correct retirement unlinks without closing and lets the inode
die with the last descriptor.

Expected: static FS003 on ``RunSet.retire_all``; runtime
``pread-after-close`` when a snapshot holder reads after retirement.
"""

import os
import threading


class Run:
    """One immutable run file, read via positioned ``os.pread``."""

    def __init__(self, path):
        self.path = path
        self._file = open(path, "rb")
        self.fd = self._file.fileno()

    def read_at(self, size, offset):
        return os.pread(self.fd, size, offset)

    def close(self):
        self._file.close()

    def remove(self):
        if os.path.exists(self.path):
            os.remove(self.path)


class RunSet:
    """A lock-guarded run list with snapshotting readers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._runs = []

    def add(self, run):
        with self._lock:
            self._runs.append(run)

    def snapshot(self):
        """The reader-side view: a copy taken under the lock."""
        with self._lock:
            return list(self._runs)

    def read_all(self, size):
        return [run.read_at(size, 0) for run in self.snapshot()]

    def retire_all(self):
        """Drop every run from the set and delete its file."""
        with self._lock:
            victims = list(self._runs)
            self._runs = []
        for run in victims:
            # BUG: a reader holding a pre-swap snapshot still preads
            # this fd; only the unlink belongs here.
            run.close()
            run.remove()
