"""PR-6 bug class 3: engine state swapped before the commit point.

The flush writes the new run durably, but then swaps the in-memory
state and deletes the WAL *before* committing the manifest.  Crash
between the two and recovery sees a run file the manifest never heard
of — which the orphan sweep deletes — and the WAL that could rebuild
it is already gone: acknowledged writes vanish.

Expected: static FS004 on ``MiniEngine.flush``; at runtime,
:func:`repro.sanitizer.fstrace.sweep_crash_boundaries` finds
boundaries where acknowledged keys do not survive recovery.
"""

import json
import os


def _fsync_dir(directory):
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class MiniEngine:
    """A one-run LSM caricature: WAL, memtable, manifest, flush."""

    def __init__(self, directory):
        self.directory = directory
        self._manifest_path = os.path.join(directory, "MANIFEST.json")
        self._memtable = {}
        self._entries = {}
        self._next_file = 0
        self._wal_path = None
        self._wal = None

    # -- lifecycle ---------------------------------------------------------------

    def recover(self):
        """Sweep temp/orphan files, load runs, replay the WAL."""
        os.makedirs(self.directory, exist_ok=True)
        manifest = self._load_manifest()
        live = set(manifest["runs"])
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                os.remove(path)
            elif name.endswith(".run") and name not in live:
                os.remove(path)
        for name in manifest["runs"]:
            with open(os.path.join(self.directory, name), "r") as fh:
                self._entries.update(json.load(fh))
        self._next_file = manifest["next_file"]
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("wal-"):
                with open(os.path.join(self.directory, name), "r") as fh:
                    for line in fh.read().splitlines():
                        key, value = json.loads(line)
                        self._memtable[key] = value
                self._next_file = max(
                    self._next_file, int(name[4:8]) + 1
                )
        self._open_wal()

    def close(self):
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def _open_wal(self):
        self._wal_path = os.path.join(
            self.directory, "wal-%04d.log" % self._next_file
        )
        self._next_file += 1
        self._wal = open(self._wal_path, "a")

    def _load_manifest(self):
        if not os.path.exists(self._manifest_path):
            return {"runs": [], "next_file": 0}
        with open(self._manifest_path, "r") as fh:
            return json.load(fh)

    # -- writes ------------------------------------------------------------------

    def put(self, key, value):
        """Durably record one key; acknowledged once the WAL is synced."""
        self._wal.write(json.dumps([key, value]) + "\n")
        self._wal.flush()
        os.fsync(self._wal.fileno())
        self._memtable[key] = value

    def get(self, key):
        if key in self._memtable:
            return self._memtable[key]
        return self._entries.get(key)

    def keys(self):
        merged = dict(self._entries)
        merged.update(self._memtable)
        return set(merged)

    # -- flush -------------------------------------------------------------------

    def flush(self):
        """Write the memtable out as a run and truncate the WAL."""
        if not self._memtable:
            return
        run_name = "run-%04d.run" % self._next_file
        self._next_file += 1
        run_path = os.path.join(self.directory, run_name)
        merged = dict(self._entries)
        merged.update(self._memtable)
        tmp = run_path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(json.dumps(merged))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, run_path)
        _fsync_dir(self.directory)
        # BUG: the manifest commit below is the durability point, but
        # the in-memory swap and the WAL delete happen first.  Crash
        # in between: recovery sweeps the run as an orphan and the
        # WAL that could rebuild it is gone.
        self._entries = merged
        self._memtable = {}
        old_wal = self._wal
        old_path = self._wal_path
        old_wal.close()
        os.remove(old_path)
        self._write_manifest([run_name])
        self._open_wal()

    def _write_manifest(self, runs):
        payload = json.dumps(
            {"runs": runs, "next_file": self._next_file}
        )
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)
        _fsync_dir(self.directory)
