"""PR-6 bug class 1: WAL deleted before the manifest rename is durable.

The publish path builds the manifest atomically — temp file, fsync,
``os.replace`` — but then deletes the WAL segment the new manifest
supersedes *without* fsyncing the directory first.  The rename is only
a page-cache update until the directory entry is flushed: a crash in
the window leaves the *old* manifest on disk with the WAL that could
rebuild the missing state already gone.

Expected: static FS002 on ``publish_manifest``; runtime
``unlink-before-dirfsync`` when the trace oracle drives it.
"""

import os


def publish_manifest(directory, payload, wal_path):
    """Commit ``payload`` as the manifest, then drop the covered WAL."""
    manifest = os.path.join(directory, "MANIFEST.json")
    tmp = manifest + ".manifest-tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, manifest)
    # BUG: the directory fsync belongs here.  Without it the rename
    # may not survive a crash, but the WAL below is already gone.
    os.remove(wal_path)


def recover_sweep(directory):
    """Remove temp files a crashed publish left behind."""
    for name in sorted(os.listdir(directory)):
        if name.endswith(".manifest-tmp"):
            os.remove(os.path.join(directory, name))
