"""Runnable reconstructions of the three PR-6 crash-consistency bugs.

Each module is a miniature durable store with exactly one of the
review's bug classes re-introduced, structured so it is *executable*
(the runtime trace oracle drives it against a real directory) as well
as *analyzable* (the static FS checkers parse the same file).  The
tests in ``test_fs_reconstruction.py`` require both oracles to catch
every bug, and the shipped engine to pass both clean — that agreement
is what the cross-validation pass enforces.
"""
