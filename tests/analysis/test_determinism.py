"""Determinism (DT) rules: bad snippet flagged, fixed snippet clean."""


class TestDT001UnorderedIteration:
    def test_iterating_set_call_is_flagged(self, check, rule_ids):
        source = """
        def target_shards(chunks):
            for shard_id in set(c.shard_id for c in chunks):
                route(shard_id)
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_iterating_set_comprehension_is_flagged(self, check, rule_ids):
        source = """
        def target_shards(chunks):
            for shard_id in {c.shard_id for c in chunks}:
                route(shard_id)
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_sorted_iteration_is_clean(self, check):
        source = """
        def target_shards(chunks):
            for shard_id in sorted({c.shard_id for c in chunks}):
                route(shard_id)
        """
        assert check(source, "determinism") == []

    def test_set_in_comprehension_iter_is_flagged(self, check, rule_ids):
        source = """
        def plans(indexes):
            return [plan(i) for i in set(indexes)]
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_dict_iteration_is_clean(self, check):
        # Dicts preserve insertion order; only sets are hash-ordered.
        source = """
        def shards(mapping):
            for shard_id in mapping:
                route(shard_id)
        """
        assert check(source, "determinism") == []

    def test_comprehension_wrapped_in_sorted_is_clean(self, check):
        # Regression: the generator iterates a set, but sorted()
        # consumes it whole — the output order is deterministic.
        source = """
        def plans(indexes):
            return sorted(plan(i) for i in set(indexes))
        """
        assert check(source, "determinism") == []

    def test_comprehension_fed_to_sum_is_clean(self, check):
        source = """
        def total(chunks):
            return sum(c.bytes for c in {c for c in chunks})
        """
        assert check(source, "determinism") == []

    def test_set_comprehension_over_a_set_is_clean(self, check):
        # set in, set out: no order to leak.
        source = """
        def ids(chunks):
            return {c.shard_id for c in set(chunks)}
        """
        assert check(source, "determinism") == []

    def test_list_comprehension_over_a_set_is_still_flagged(
        self, check, rule_ids
    ):
        # The consumer exemption must not swallow the real thing: a
        # bare list keeps the hash order.
        source = """
        def plans(indexes):
            ordered = [plan(i) for i in set(indexes)]
            return ordered
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]


class TestDT002ArbitrarySetPop:
    def test_set_pop_is_flagged(self, check, rule_ids):
        source = """
        def pick_winner(stats):
            names = {s.index_name for s in stats}
            return names.pop()
        """
        assert rule_ids(check(source, "determinism")) == ["DT002"]

    def test_deterministic_pick_is_clean(self, check):
        source = """
        def pick_winner(stats):
            names = {s.index_name for s in stats}
            return min(names)
        """
        assert check(source, "determinism") == []

    def test_list_pop_is_clean(self, check):
        source = """
        def take_last(items):
            stack = list(items)
            return stack.pop()
        """
        assert check(source, "determinism") == []


class TestDT003WallClockDurations:
    def test_time_time_is_flagged(self, check, rule_ids):
        source = """
        import time

        def measure(fn):
            started = time.time()
            fn()
            return time.time() - started
        """
        assert rule_ids(check(source, "determinism")) == ["DT003", "DT003"]

    def test_perf_counter_is_clean(self, check):
        source = """
        import time

        def measure(fn):
            started = time.perf_counter()
            fn()
            return time.perf_counter() - started
        """
        assert check(source, "determinism") == []

    def test_logged_wall_clock_is_clean(self, check):
        # Regression: a timestamp *reported* to a log is the wall
        # clock's legitimate job; only durations are DT003's business.
        source = """
        import time

        def report(logger):
            logger.info("served at %s", time.time())
        """
        assert check(source, "determinism") == []

    def test_timestamp_named_assignment_is_clean(self, check):
        source = """
        import time

        def snapshot():
            created_at = time.time()
            return created_at
        """
        assert check(source, "determinism") == []

    def test_timestamp_dict_key_is_clean(self, check):
        source = """
        import time

        def envelope(payload):
            return {"timestamp": time.time(), "payload": payload}
        """
        assert check(source, "determinism") == []

    def test_timestamp_keyword_argument_is_clean(self, check):
        source = """
        import time

        def record(sink, event):
            sink.emit(event, timestamp=time.time())
        """
        assert check(source, "determinism") == []

    def test_duration_named_assignment_is_still_flagged(
        self, check, rule_ids
    ):
        # The exemption is by evident-timestamp shape only; anything
        # else keeps firing.
        source = """
        import time

        def measure(fn):
            started = time.time()
            fn()
            return time.time() - started
        """
        assert rule_ids(check(source, "determinism")) == [
            "DT003",
            "DT003",
        ]
