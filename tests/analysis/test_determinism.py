"""Determinism (DT) rules: bad snippet flagged, fixed snippet clean."""


class TestDT001UnorderedIteration:
    def test_iterating_set_call_is_flagged(self, check, rule_ids):
        source = """
        def target_shards(chunks):
            for shard_id in set(c.shard_id for c in chunks):
                route(shard_id)
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_iterating_set_comprehension_is_flagged(self, check, rule_ids):
        source = """
        def target_shards(chunks):
            for shard_id in {c.shard_id for c in chunks}:
                route(shard_id)
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_sorted_iteration_is_clean(self, check):
        source = """
        def target_shards(chunks):
            for shard_id in sorted({c.shard_id for c in chunks}):
                route(shard_id)
        """
        assert check(source, "determinism") == []

    def test_set_in_comprehension_iter_is_flagged(self, check, rule_ids):
        source = """
        def plans(indexes):
            return [plan(i) for i in set(indexes)]
        """
        assert rule_ids(check(source, "determinism")) == ["DT001"]

    def test_dict_iteration_is_clean(self, check):
        # Dicts preserve insertion order; only sets are hash-ordered.
        source = """
        def shards(mapping):
            for shard_id in mapping:
                route(shard_id)
        """
        assert check(source, "determinism") == []


class TestDT002ArbitrarySetPop:
    def test_set_pop_is_flagged(self, check, rule_ids):
        source = """
        def pick_winner(stats):
            names = {s.index_name for s in stats}
            return names.pop()
        """
        assert rule_ids(check(source, "determinism")) == ["DT002"]

    def test_deterministic_pick_is_clean(self, check):
        source = """
        def pick_winner(stats):
            names = {s.index_name for s in stats}
            return min(names)
        """
        assert check(source, "determinism") == []

    def test_list_pop_is_clean(self, check):
        source = """
        def take_last(items):
            stack = list(items)
            return stack.pop()
        """
        assert check(source, "determinism") == []


class TestDT003WallClockDurations:
    def test_time_time_is_flagged(self, check, rule_ids):
        source = """
        import time

        def measure(fn):
            started = time.time()
            fn()
            return time.time() - started
        """
        assert rule_ids(check(source, "determinism")) == ["DT003", "DT003"]

    def test_perf_counter_is_clean(self, check):
        source = """
        import time

        def measure(fn):
            started = time.perf_counter()
            fn()
            return time.perf_counter() - started
        """
        assert check(source, "determinism") == []
