"""Tests for the random workload generator."""

import datetime as dt

import pytest

from repro.geo.geometry import BoundingBox
from repro.workloads.generator import WorkloadConfig, WorkloadGenerator

UTC = dt.timezone.utc
REGION = BoundingBox(20.0, 35.0, 28.0, 41.5)
HOT = BoundingBox(23.5, 37.8, 24.0, 38.3)
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)
T1 = dt.datetime(2018, 12, 1, tzinfo=UTC)


def make_config(**kwargs):
    defaults = dict(region=REGION, time_from=T0, time_to=T1, seed=3)
    defaults.update(kwargs)
    return WorkloadConfig(**defaults)


class TestConfig:
    def test_validates_time_span(self):
        with pytest.raises(ValueError):
            make_config(time_from=T1, time_to=T0)

    def test_hot_fraction_needs_region(self):
        with pytest.raises(ValueError):
            make_config(hot_fraction=0.5)

    def test_box_scale_validated(self):
        with pytest.raises(ValueError):
            make_config(box_scale=(0.5, 0.1))
        with pytest.raises(ValueError):
            make_config(box_scale=(0.0, 0.1))


class TestGeneration:
    def test_count_and_determinism(self):
        a = WorkloadGenerator(make_config()).generate(25)
        b = WorkloadGenerator(make_config()).generate(25)
        assert len(a) == 25
        assert [(q.bbox, q.time_from) for q in a] == [
            (q.bbox, q.time_from) for q in b
        ]

    def test_queries_inside_region_and_span(self):
        for q in WorkloadGenerator(make_config()).generate(50):
            assert REGION.min_lon <= q.bbox.min_lon
            assert q.bbox.max_lon <= REGION.max_lon
            assert T0 <= q.time_from <= q.time_to <= T1

    def test_window_bounds(self):
        config = make_config(window_hours=(2.0, 48.0))
        for q in WorkloadGenerator(config).generate(50):
            hours = q.duration.total_seconds() / 3600.0
            assert 2.0 - 1e-6 <= hours <= 48.0 + 1e-6

    def test_hot_region_focus(self):
        config = make_config(hot_region=HOT, hot_fraction=1.0)
        for q in WorkloadGenerator(config).generate(30):
            assert HOT.intersects(q.bbox)
            assert q.bbox.min_lon >= HOT.min_lon

    def test_mixed_focus(self):
        config = make_config(hot_region=HOT, hot_fraction=0.5)
        queries = WorkloadGenerator(config).generate(200)
        hot = sum(1 for q in queries if HOT.intersects(q.bbox))
        assert 60 < hot < 200  # roughly half plus background overlap

    def test_labels_unique(self):
        queries = WorkloadGenerator(make_config()).generate(10)
        assert len({q.label for q in queries}) == 10


class TestWeighted:
    def test_uniform_weights(self):
        weighted = WorkloadGenerator(make_config()).generate_weighted(10)
        assert all(w.weight == 1.0 for w in weighted)

    def test_zipf_weights_decreasing(self):
        config = make_config(weight_skew=1.0)
        weighted = WorkloadGenerator(config).generate_weighted(10)
        weights = [w.weight for w in weighted]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0
        assert weights[-1] == pytest.approx(0.1)

    def test_feeds_adaptive_zoning(self):
        # End-to-end: a generated workload drives workload-aware zones.
        import random

        from repro.cluster.cluster import ClusterTopology
        from repro.core.adaptive import configure_workload_aware_zones
        from repro.core.approaches import deploy_approach, make_approach

        rng = random.Random(1)
        docs = [
            {
                "location": {
                    "type": "Point",
                    "coordinates": [
                        rng.uniform(20.0, 28.0),
                        rng.uniform(35.0, 41.5),
                    ],
                },
                "date": T0 + dt.timedelta(hours=rng.uniform(0, 3000)),
            }
            for _ in range(400)
        ]
        deployment = deploy_approach(
            make_approach("hil"),
            docs,
            topology=ClusterTopology(n_shards=4),
            chunk_max_bytes=8 * 1024,
        )
        workload = WorkloadGenerator(
            make_config(hot_region=HOT, hot_fraction=0.7, weight_skew=0.5)
        ).generate_weighted(12)
        zones = configure_workload_aware_zones(
            deployment.cluster,
            deployment.collection,
            workload,
            deployment.approach.encoder,
        )
        assert zones
        deployment.cluster.validate(deployment.collection)
