"""Tests for the paper's query workloads."""

import datetime as dt

from repro.datagen.uniform import S_TIMESPAN
from repro.datagen.vehicles import R_TIMESPAN
from repro.workloads.queries import (
    BIG_BBOX,
    QUERY_WINDOWS,
    SMALL_BBOX,
    all_queries,
    big_queries,
    randomized_queries,
    small_queries,
)


class TestBoxes:
    def test_paper_coordinates(self):
        assert SMALL_BBOX.min_lon == 23.757495
        assert SMALL_BBOX.max_lat == 37.992997
        assert BIG_BBOX.min_lon == 23.606039
        assert BIG_BBOX.max_lat == 38.353926

    def test_big_is_about_2603x_small(self):
        ratio = BIG_BBOX.area_deg2() / SMALL_BBOX.area_deg2()
        assert 2400 < ratio < 2800


class TestWindows:
    def test_durations(self):
        durations = [t2 - t1 for _, t1, t2 in QUERY_WINDOWS]
        assert durations == [
            dt.timedelta(hours=1),
            dt.timedelta(days=1),
            dt.timedelta(days=7),
            dt.timedelta(days=30),
        ]

    def test_non_overlapping(self):
        windows = sorted((t1, t2) for _, t1, t2 in QUERY_WINDOWS)
        for (a1, a2), (b1, b2) in zip(windows, windows[1:]):
            assert a2 <= b1

    def test_inside_both_dataset_spans(self):
        for _, t1, t2 in QUERY_WINDOWS:
            assert R_TIMESPAN[0] <= t1 and t2 <= R_TIMESPAN[1]
            assert S_TIMESPAN[0] <= t1 and t2 <= S_TIMESPAN[1]


class TestBuilders:
    def test_labels(self):
        assert [q.label for q in small_queries()] == ["Qs1", "Qs2", "Qs3", "Qs4"]
        assert [q.label for q in big_queries()] == ["Qb1", "Qb2", "Qb3", "Qb4"]

    def test_boxes_assigned(self):
        assert all(q.bbox == SMALL_BBOX for q in small_queries())
        assert all(q.bbox == BIG_BBOX for q in big_queries())

    def test_all_queries(self):
        qs = all_queries()
        assert set(qs) == {"small", "big"}
        assert len(qs["small"]) == len(qs["big"]) == 4

    def test_increasing_temporal_spans(self):
        durations = [q.duration for q in small_queries()]
        assert durations == sorted(durations)


class TestRandomizedStream:
    def test_deterministic_in_seed(self):
        a = randomized_queries(50, seed=3)
        b = randomized_queries(50, seed=3)
        assert [(q.bbox, q.time_from, q.time_to) for q in a] == [
            (q.bbox, q.time_from, q.time_to) for q in b
        ]
        c = randomized_queries(50, seed=4)
        assert [(q.bbox, q.time_from) for q in a] != [
            (q.bbox, q.time_from) for q in c
        ]

    def test_no_literal_repeats(self):
        queries = randomized_queries(200, seed=3)
        assert len({(q.bbox, q.time_from) for q in queries}) == 200

    def test_shape_mix_and_windows(self):
        queries = randomized_queries(200, seed=3)
        big = sum(
            1
            for q in queries
            if (q.bbox.max_lon - q.bbox.min_lon) > 0.1
        )
        # p=0.5 big/small split, loosely.
        assert 60 <= big <= 140
        for q in queries:
            assert q.time_to - q.time_from == dt.timedelta(hours=1)
            assert dt.datetime(2018, 7, 1, tzinfo=dt.timezone.utc) <= q.time_from
            assert q.time_from <= dt.datetime(
                2018, 8, 31, tzinfo=dt.timezone.utc
            )
