"""StreamingIngest: the live-ingest-plus-queries scenario."""

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.datagen import FleetConfig, FleetGenerator
from repro.docstore.lsm import DurabilityConfig
from repro.workloads import IngestConfig, IngestReport, StreamingIngest
from repro.workloads.queries import big_queries


def small_deployment(durability=None, n_docs=200):
    docs = FleetGenerator(FleetConfig(n_vehicles=8)).generate_list(n_docs)
    return deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=2),
        chunk_max_bytes=64 * 1024,
        durability=durability,
    )


class TestReportMath:
    def test_docs_per_second(self):
        report = IngestReport(docs_ingested=500, ingest_seconds=2.0)
        assert report.docs_per_second == 250.0
        assert IngestReport().docs_per_second == 0.0

    def test_latency_summary_orders_percentiles(self):
        report = IngestReport(
            read_latency_ms={"Qb1": [5.0, 1.0, 3.0, 2.0, 4.0]}
        )
        summary = report.latency_summary_ms()["Qb1"]
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["min"] <= summary["p50"] <= summary["p95"]
        assert summary["n"] == 5.0

    def test_as_dict_shape(self):
        keys = set(IngestReport().as_dict())
        assert {
            "docsIngested",
            "docsPerSecond",
            "readLatencyMs",
            "liveCounts",
            "finalCounts",
        } <= keys


class TestScenario:
    def test_needs_at_least_one_query(self):
        deployment = small_deployment()
        try:
            with pytest.raises(ValueError):
                StreamingIngest(deployment, queries=[])
        finally:
            deployment.cluster.close()

    def test_streams_and_queries_in_memory(self):
        deployment = small_deployment()
        try:
            scenario = StreamingIngest(
                deployment,
                IngestConfig(
                    n_docs=600, batch_size=200, n_vehicles=8, seed=3
                ),
                queries=big_queries(),
            )
            report = scenario.run()
            assert report.docs_ingested == 600
            assert len(report.batch_seconds) == 3
            assert report.ingest_seconds > 0
            # Three batches x one query each, round-robin over four.
            assert sum(
                len(v) for v in report.read_latency_ms.values()
            ) == 3
            # The quiesced pass covers the whole workload.
            assert set(report.final_counts) == {
                q.label for q in big_queries()
            }
        finally:
            deployment.cluster.close()

    def test_durable_and_memory_agree_on_final_counts(self, tmp_path):
        config = IngestConfig(
            n_docs=400, batch_size=100, n_vehicles=8, seed=5
        )
        in_memory = small_deployment()
        try:
            memory_report = StreamingIngest(
                in_memory, config, queries=big_queries()
            ).run()
        finally:
            in_memory.cluster.close()
        durable = small_deployment(
            durability=DurabilityConfig(
                directory=str(tmp_path), memtable_max_bytes=256 * 1024
            )
        )
        try:
            durable_report = StreamingIngest(
                durable, config, queries=big_queries()
            ).run()
        finally:
            durable.cluster.close()
        assert durable_report.final_counts == memory_report.final_counts
        assert durable_report.docs_ingested == memory_report.docs_ingested
