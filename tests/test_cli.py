"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_encode_args(self):
        args = build_parser().parse_args(["encode", "23.7", "37.9"])
        assert args.command == "encode"
        assert args.lon == 23.7

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "EDBT 2021" in out

    def test_encode(self, capsys):
        assert main(["encode", "23.727539", "37.983810"]) == 0
        out = capsys.readouterr().out
        assert "hilbertIndex" in out
        assert "swbb5" in out  # the paper's Athens geohash prefix
        assert "stHash" in out and "2018" in out

    def test_generate_r(self, tmp_path, capsys):
        out_file = str(tmp_path / "r.csv")
        assert main(["generate", "--dataset", "R", "--records", "50",
                     "--out", out_file]) == 0
        from repro.datagen.csv_io import read_csv_file

        docs = read_csv_file(out_file)
        assert len(docs) == 50
        assert docs[0]["location"]["type"] == "Point"

    def test_generate_s(self, tmp_path):
        out_file = str(tmp_path / "s.csv")
        assert main(["generate", "--dataset", "S", "--records", "30",
                     "--out", out_file]) == 0

    def test_compare_smoke(self, capsys):
        assert main(
            ["compare", "--records", "800", "--shards", "3",
             "--query", "big", "--window", "7"]
        ) == 0
        out = capsys.readouterr().out
        for name in ("bslST", "bslTS", "hil", "hilstar"):
            assert name in out

    def test_stats_analyze_smoke(self, capsys):
        import json

        assert main(
            ["stats", "analyze", "traces", "--records", "400",
             "--shards", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["collection"] == "traces"
        assert payload["totalDocs"] == 400
        assert payload["timeHistogram"]["total"] == 400
        assert payload["cellSketch"]["cells"] > 0
        assert payload["catalog"]["fills"] == 1

    def test_stats_analyze_unknown_collection(self, capsys):
        assert main(
            ["stats", "analyze", "nope", "--records", "200",
             "--shards", "2"]
        ) == 2
