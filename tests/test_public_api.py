"""The public API surface: imports, __all__ hygiene, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sfc",
    "repro.geo",
    "repro.docstore",
    "repro.cluster",
    "repro.service",
    "repro.core",
    "repro.datagen",
    "repro.workloads",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), "%s.%s missing" % (name, symbol)


def test_version():
    import repro

    assert repro.__version__


def test_top_level_workflow_symbols():
    # The names the README's quickstart uses.
    from repro import (
        SpatioTemporalQuery,
        deploy_approach,
        make_approach,
        measure_query,
    )

    assert callable(deploy_approach)
    assert callable(make_approach)
    assert callable(measure_query)
    assert SpatioTemporalQuery is not None


def test_errors_hierarchy():
    from repro import errors

    assert issubclass(errors.DuplicateKeyError, errors.DocumentStoreError)
    assert issubclass(errors.DocumentStoreError, errors.ReproError)
    assert issubclass(errors.ZoneError, errors.ShardingError)
    assert issubclass(errors.ShardingError, errors.ReproError)
