"""Tests for the LineString extension (paper future work)."""

import pytest

from repro.geo.geojson import (
    GeoJSONError,
    linestring_to_geojson,
    parse_geometry,
    parse_linestring,
)
from repro.geo.geometry import BoundingBox, LineString, Point


def line(*coords):
    return LineString(tuple(Point(x, y) for x, y in coords))


class TestLineString:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            LineString((Point(0, 0),))

    def test_bbox(self):
        l = line((0, 0), (10, 5), (3, -2))
        assert l.bbox == BoundingBox(0, -2, 10, 5)

    def test_length(self):
        l = line((23.0, 38.0), (24.0, 38.0))
        assert 80 < l.length_km() < 95  # ~88 km at that latitude

    def test_sample_density(self):
        l = line((0, 0), (1, 0))
        samples = l.sample(0.1)
        assert len(samples) >= 11
        assert samples[0] == Point(0, 0)
        assert samples[-1] == Point(1, 0)

    def test_sample_rejects_bad_step(self):
        with pytest.raises(ValueError):
            line((0, 0), (1, 1)).sample(0)


class TestIntersectsBox:
    BOX = BoundingBox(2, 2, 5, 5)

    def test_endpoint_inside(self):
        assert line((3, 3), (10, 10)).intersects_box(self.BOX)

    def test_crossing_through(self):
        # Enters and leaves without a vertex inside.
        assert line((0, 3.5), (10, 3.5)).intersects_box(self.BOX)

    def test_diagonal_crossing(self):
        assert line((0, 0), (10, 10)).intersects_box(self.BOX)

    def test_fully_outside(self):
        assert not line((6, 0), (10, 3)).intersects_box(self.BOX)

    def test_parallel_near_miss(self):
        assert not line((0, 6), (10, 6)).intersects_box(self.BOX)

    def test_touching_corner(self):
        assert line((0, 4), (2, 2)).intersects_box(self.BOX)

    def test_multi_segment(self):
        l = line((0, 0), (1, 10), (10, 10), (4, 4))
        assert l.intersects_box(self.BOX)


class TestGeoJSON:
    def test_roundtrip(self):
        l = line((23.7, 37.9), (23.8, 38.0))
        assert parse_linestring(linestring_to_geojson(l)) == l

    def test_parse_geometry_dispatch(self):
        geo = {"type": "LineString", "coordinates": [[0, 0], [1, 1]]}
        assert isinstance(parse_geometry(geo), LineString)

    def test_rejects_malformed(self):
        with pytest.raises(GeoJSONError):
            parse_linestring({"type": "LineString", "coordinates": [[0, 0]]})
        with pytest.raises(GeoJSONError):
            parse_linestring({"type": "Point", "coordinates": [0, 0]})
        with pytest.raises(GeoJSONError):
            parse_linestring({"type": "LineString", "coordinates": [[0], [1]]})
