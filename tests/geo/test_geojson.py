"""Tests for GeoJSON parsing/rendering."""

import pytest

from repro.geo.geojson import (
    GeoJSONError,
    parse_geometry,
    parse_point,
    parse_polygon,
    point_to_geojson,
    polygon_to_geojson,
)
from repro.geo.geometry import BoundingBox, Point, Polygon


class TestParsePoint:
    def test_geojson_mapping(self):
        p = parse_point({"type": "Point", "coordinates": [23.7, 37.9]})
        assert p == Point(23.7, 37.9)

    def test_legacy_array(self):
        assert parse_point([23.7, 37.9]) == Point(23.7, 37.9)
        assert parse_point((23.7, 37.9)) == Point(23.7, 37.9)

    def test_legacy_embedded_document(self):
        assert parse_point({"lon": 23.7, "lat": 37.9}) == Point(23.7, 37.9)
        assert parse_point({"lng": 1.0, "lat": 2.0}) == Point(1.0, 2.0)
        assert parse_point(
            {"longitude": 1.0, "latitude": 2.0}
        ) == Point(1.0, 2.0)

    def test_passthrough(self):
        p = Point(1.0, 2.0)
        assert parse_point(p) is p

    def test_rejects_malformed(self):
        with pytest.raises(GeoJSONError):
            parse_point({"type": "Point", "coordinates": [1.0]})
        with pytest.raises(GeoJSONError):
            parse_point("23.7,37.9")
        with pytest.raises(GeoJSONError):
            parse_point({"foo": 1})
        with pytest.raises(GeoJSONError):
            parse_point([1.0, 2.0, 3.0])

    def test_roundtrip(self):
        p = Point(23.727539, 37.983810)
        assert parse_point(point_to_geojson(p)) == p


class TestParsePolygon:
    def test_geojson_polygon(self):
        geo = {
            "type": "Polygon",
            "coordinates": [
                [[0, 0], [10, 0], [10, 10], [0, 10], [0, 0]]
            ],
        }
        poly = parse_polygon(geo)
        assert poly.contains(Point(5, 5))

    def test_bbox_accepted(self):
        poly = parse_polygon(BoundingBox(0, 0, 1, 1))
        assert isinstance(poly, Polygon)

    def test_roundtrip(self):
        poly = BoundingBox(0, 0, 5, 5).to_polygon()
        assert parse_polygon(polygon_to_geojson(poly)) == poly

    def test_rejects_malformed(self):
        with pytest.raises(GeoJSONError):
            parse_polygon({"type": "Polygon"})
        with pytest.raises(GeoJSONError):
            parse_polygon({"type": "Point", "coordinates": [1, 2]})
        with pytest.raises(GeoJSONError):
            parse_polygon({"type": "Polygon", "coordinates": [[[1], [2]]]})


class TestParseGeometry:
    def test_dispatch(self):
        assert isinstance(
            parse_geometry({"type": "Point", "coordinates": [1, 2]}), Point
        )
        poly = {
            "type": "Polygon",
            "coordinates": [[[0, 0], [1, 0], [1, 1], [0, 0]]],
        }
        assert isinstance(parse_geometry(poly), Polygon)

    def test_unknown_type_rejected(self):
        with pytest.raises(GeoJSONError):
            parse_geometry({"type": "MultiPolygon", "coordinates": []})

    def test_legacy_pair_falls_back_to_point(self):
        assert parse_geometry([1.0, 2.0]) == Point(1.0, 2.0)
