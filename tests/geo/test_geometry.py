"""Tests for geometry primitives."""

import pytest

from repro.geo.geometry import BoundingBox, Point, Polygon, haversine_km


class TestPoint:
    def test_valid(self):
        p = Point(23.7, 37.9)
        assert p.as_tuple() == (23.7, 37.9)

    def test_rejects_bad_lon(self):
        with pytest.raises(ValueError):
            Point(181.0, 0.0)

    def test_rejects_bad_lat(self):
        with pytest.raises(ValueError):
            Point(0.0, -91.0)

    def test_ordering_is_lexicographic(self):
        assert Point(1.0, 2.0) < Point(1.0, 3.0) < Point(2.0, 0.0)


class TestHaversine:
    def test_zero_distance(self):
        p = Point(23.7, 37.9)
        assert haversine_km(p, p) == 0.0

    def test_athens_thessaloniki(self):
        # Real-world distance is ~300 km.
        d = haversine_km(Point(23.7275, 37.9838), Point(22.9444, 40.6401))
        assert 290 < d < 310

    def test_symmetry(self):
        a, b = Point(0.0, 0.0), Point(10.0, 10.0)
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


class TestBoundingBox:
    def test_from_corners_paper_notation(self):
        box = BoundingBox.from_corners(
            (19.632533, 34.929233), (28.245285, 41.757797)
        )
        assert box.min_lon == 19.632533
        assert box.max_lat == 41.757797

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BoundingBox(5.0, 0.0, 4.0, 1.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 5.0, 1.0, 4.0)

    def test_contains(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains(Point(5.0, 5.0))
        assert box.contains(Point(0.0, 0.0))  # boundary inclusive
        assert not box.contains(Point(10.1, 5.0))

    def test_contains_lonlat(self):
        box = BoundingBox(0.0, 0.0, 10.0, 10.0)
        assert box.contains_lonlat(10.0, 10.0)
        assert not box.contains_lonlat(-0.1, 5.0)

    def test_intersects_and_intersection(self):
        a = BoundingBox(0.0, 0.0, 10.0, 10.0)
        b = BoundingBox(5.0, 5.0, 15.0, 15.0)
        c = BoundingBox(11.0, 11.0, 12.0, 12.0)
        assert a.intersects(b)
        assert not a.intersects(c)
        inter = a.intersection(b)
        assert inter == BoundingBox(5.0, 5.0, 10.0, 10.0)
        assert a.intersection(c) is None

    def test_touching_boxes_intersect(self):
        a = BoundingBox(0.0, 0.0, 5.0, 5.0)
        b = BoundingBox(5.0, 0.0, 10.0, 5.0)
        assert a.intersects(b)

    def test_paper_small_vs_big_area_ratio(self):
        # Section 5.1: the big rectangle is ~2,603x the small one.
        small = BoundingBox(23.757495, 37.987295, 23.766958, 37.992997)
        big = BoundingBox(23.606039, 38.023982, 24.032754, 38.353926)
        ratio = big.area_deg2() / small.area_deg2()
        assert 2400 < ratio < 2800

    def test_expanded_clamps_to_globe(self):
        box = BoundingBox(-179.5, -89.5, 179.5, 89.5).expanded(5.0)
        assert box == BoundingBox(-180.0, -90.0, 180.0, 90.0)

    def test_center(self):
        box = BoundingBox(0.0, 0.0, 10.0, 20.0)
        assert box.center == Point(5.0, 10.0)

    def test_world(self):
        w = BoundingBox.world()
        assert w.width == 360.0
        assert w.height == 180.0

    def test_area_km2_positive(self):
        box = BoundingBox(23.0, 37.0, 24.0, 38.0)
        assert box.area_km2() > 0

    def test_to_polygon_closed_ring(self):
        poly = BoundingBox(0.0, 0.0, 1.0, 1.0).to_polygon()
        assert poly.ring[0] == poly.ring[-1]
        assert len(poly.ring) == 5


class TestPolygon:
    def test_requires_closed_ring(self):
        with pytest.raises(ValueError):
            Polygon((Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)))

    def test_requires_minimum_points(self):
        with pytest.raises(ValueError):
            Polygon((Point(0, 0), Point(1, 1), Point(0, 0)))

    def test_contains_interior(self):
        poly = BoundingBox(0.0, 0.0, 10.0, 10.0).to_polygon()
        assert poly.contains(Point(5.0, 5.0))
        assert not poly.contains(Point(15.0, 5.0))

    def test_contains_boundary(self):
        poly = BoundingBox(0.0, 0.0, 10.0, 10.0).to_polygon()
        assert poly.contains(Point(0.0, 5.0))
        assert poly.contains(Point(10.0, 10.0))

    def test_non_rectangular(self):
        # A triangle: (0,0), (10,0), (0,10).
        tri = Polygon(
            (Point(0, 0), Point(10, 0), Point(0, 10), Point(0, 0))
        )
        assert tri.contains(Point(2.0, 2.0))
        assert not tri.contains(Point(9.0, 9.0))

    def test_bbox(self):
        tri = Polygon(
            (Point(0, 0), Point(10, 0), Point(0, 10), Point(0, 0))
        )
        assert tri.bbox == BoundingBox(0.0, 0.0, 10.0, 10.0)
