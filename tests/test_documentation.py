"""Documentation guarantees: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__, "%s lacks a module docstring" % module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if obj.__module__ != module.__name__:
            continue  # re-export; checked at its home module
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, (
        "%s exports undocumented items: %s" % (module.__name__, undocumented)
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not inspect.isclass(obj) or obj.__module__ != module.__name__:
            continue
        for attr_name, attr in vars(obj).items():
            if attr_name.startswith("_"):
                continue
            if not (
                inspect.isfunction(attr) or isinstance(attr, (classmethod, staticmethod, property))
            ):
                continue
            target = (
                attr.__func__
                if isinstance(attr, (classmethod, staticmethod))
                else attr.fget
                if isinstance(attr, property)
                else attr
            )
            if target is not None and not inspect.getdoc(target):
                undocumented.append("%s.%s" % (name, attr_name))
    assert not undocumented, (
        "%s has undocumented public methods: %s"
        % (module.__name__, undocumented)
    )
