"""Load generator: closed loop, open-loop overload, workload rendering."""

import pytest

from repro.errors import ServiceError
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
    render_workload,
)

WORKLOAD = [
    {"k": {"$gte": lo, "$lt": lo + 800}} for lo in range(0, 8000, 1000)
]


class TestClosedLoop:
    def test_completes_all_queries(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            gen = LoadGenerator(service, "t", WORKLOAD)
            report = gen.run_closed_loop(clients=4, total_queries=40)
        assert report.mode == "closed"
        assert report.offered == 40
        assert report.completed == 40
        assert report.rejected == 0
        assert report.errors == 0
        assert report.achieved_qps > 0
        assert report.p99_latency_ms >= report.p50_latency_ms > 0
        payload = report.as_dict()
        assert payload["completed"] == 40
        assert payload["planCache"]["hits"] > 0

    def test_single_client_is_serial(self, seeded_cluster):
        config = ServiceConfig(parallel_scatter_gather=False)
        with QueryService(seeded_cluster, config) as service:
            report = LoadGenerator(service, "t", WORKLOAD).run_closed_loop(
                clients=1, total_queries=10
            )
        assert report.completed == 10
        assert report.clients == 1

    def test_rejects_bad_parameters(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            gen = LoadGenerator(service, "t", WORKLOAD)
            with pytest.raises(ServiceError):
                gen.run_closed_loop(clients=0, total_queries=10)
            with pytest.raises(ServiceError):
                gen.run_closed_loop(clients=1, total_queries=0)
            with pytest.raises(ServiceError):
                LoadGenerator(service, "t", [])


class TestOpenLoop:
    def test_overload_produces_rejections(self, seeded_cluster):
        # Tiny service, big offered rate with simulated shard latency:
        # the bounded queue must shed load rather than grow unboundedly.
        config = ServiceConfig(
            max_workers=1,
            max_concurrent_queries=1,
            max_queue_depth=1,
            simulate_shard_latency=True,
            simulated_latency_scale=50.0,
        )
        with QueryService(seeded_cluster, config) as service:
            gen = LoadGenerator(service, "t", WORKLOAD)
            report = gen.run_open_loop(
                target_qps=200, duration_s=0.5, clients=4
            )
        assert report.mode == "open"
        assert report.offered > report.completed
        assert report.rejected > 0
        assert report.errors == 0
        assert (
            report.completed + report.rejected + report.timed_out
            == report.offered
        )

    def test_underload_completes_everything(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            gen = LoadGenerator(service, "t", WORKLOAD)
            report = gen.run_open_loop(target_qps=20, duration_s=0.4)
        assert report.rejected == 0
        assert report.completed == report.offered > 0

    def test_rejects_bad_parameters(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            gen = LoadGenerator(service, "t", WORKLOAD)
            with pytest.raises(ServiceError):
                gen.run_open_loop(target_qps=0, duration_s=1)
            with pytest.raises(ServiceError):
                gen.run_open_loop(target_qps=10, duration_s=0)


class TestRenderWorkload:
    def test_renders_paper_queries(self):
        import datetime as dt

        from repro import SpatioTemporalQuery, make_approach
        from repro.geo import BoundingBox

        t0 = dt.datetime(2018, 8, 1, tzinfo=dt.timezone.utc)
        queries = [
            SpatioTemporalQuery(
                bbox=BoundingBox(23.5 + i * 0.05, 37.8, 23.8 + i * 0.05, 38.1),
                time_from=t0,
                time_to=t0 + dt.timedelta(days=2),
                label="Q%d" % i,
            )
            for i in range(3)
        ]
        for name in ("bslST", "hil"):
            rendered = render_workload(make_approach(name), queries)
            assert len(rendered) == 3
            assert all(isinstance(q, dict) and q for q in rendered)
