"""The process executor backend: parity, deadlines, worker lifecycle.

Satellite of the process-parallel serving PR: the admission-control
and deadline-expiry guarantees QueryService makes must survive the
move from a thread pool to per-shard worker processes.  In particular
the PR-1 leak class is reconstructed in the new topology: a worker
that stalls mid-subquery must produce a clean ``QueryTimeoutError`` —
not a leaked read lock, a poisoned pool, or an orphaned worker.
"""

import pickle

import pytest

from repro.errors import QueryTimeoutError, ServiceError
from repro.service import QueryService, ServiceConfig
from repro.service import executors
from repro.service.wire import WIRE_PROTOCOL

TARGETED = {"k": {"$gte": 1000, "$lt": 5000}}
BROADCAST = {"group": 3}
QUERIES = [
    TARGETED,
    BROADCAST,
    {},
    {"k": 4242},
    {"$or": [{"k": {"$lt": 50}}, {"group": {"$in": [1, 2]}}]},
]


def process_config(**overrides):
    defaults = dict(executor="process", default_timeout_ms=10_000.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def canonical_docs(documents):
    """Per-document canonical pickles.

    Whole-list pickles differ across backends for a reason that is not
    a parity break: the parent's seeded documents share interned
    string objects, so the pickler's memo folds them, while documents
    rebuilt from a wire snapshot share per-shard copies.  Encoding
    each document alone removes the memo from the comparison.
    """
    return [pickle.dumps(d, protocol=WIRE_PROTOCOL) for d in documents]


class TestBackendParity:
    def test_documents_and_stats_match_threaded_backend(
        self, cluster_factory
    ):
        threaded_cluster = cluster_factory()
        process_cluster = cluster_factory()
        with QueryService(
            threaded_cluster, ServiceConfig(executor="thread")
        ) as threaded, QueryService(
            process_cluster, process_config()
        ) as process:
            assert threaded.executor_backend == "thread"
            assert process.executor_backend == "process"
            for query in QUERIES:
                mine = threaded.find("t", query)
                theirs = process.find("t", query)
                assert canonical_docs(theirs.documents) == canonical_docs(
                    mine.documents
                )
                assert theirs.stats.as_dict() == mine.stats.as_dict()

    def test_parity_survives_writes_and_ddl(self, cluster_factory):
        threaded_cluster = cluster_factory()
        process_cluster = cluster_factory()
        with QueryService(
            threaded_cluster, ServiceConfig(executor="thread")
        ) as threaded, QueryService(
            process_cluster, process_config()
        ) as process:
            for service in (threaded, process):
                service.find("t", TARGETED)  # populate replicas
                service.insert_many(
                    "t",
                    [
                        {"_id": 10_000 + i, "k": 2_000 + i, "group": i}
                        for i in range(20)
                    ],
                )
                service.delete_many("t", {"group": 7})
                service.create_index("t", [("group", 1)], name="group_1")
            for query in QUERIES + [{"group": {"$gte": 8}}]:
                mine = threaded.find("t", query)
                theirs = process.find("t", query)
                assert canonical_docs(theirs.documents) == canonical_docs(
                    mine.documents
                )
                assert theirs.stats.as_dict() == mine.stats.as_dict()

    def test_count_documents_matches(self, cluster_factory):
        cluster = cluster_factory()
        expected = cluster.count_documents("t", TARGETED)
        with QueryService(cluster, process_config()) as service:
            assert service.count_documents("t", TARGETED) == expected


class TestReplicaSync:
    def test_writes_bump_epochs_and_resync_replicas(self, cluster_factory):
        cluster = cluster_factory()
        with QueryService(cluster, process_config()) as service:
            service.find("t", {})
            pool = service._worker_pool
            synced = {
                shard_id: pool.client_for(shard_id).synced_epoch(
                    shard_id, "t"
                )
                for shard_id in cluster.shards
            }
            assert all(epoch is not None for epoch in synced.values())
            service.insert_one("t", {"_id": 99_999, "k": 1, "group": 0})
            service.find("t", {})
            resynced = {
                shard_id: pool.client_for(shard_id).synced_epoch(
                    shard_id, "t"
                )
                for shard_id in cluster.shards
            }
            # The insert targeted one shard; that shard's replica must
            # have advanced, the others must not have re-shipped.
            advanced = [
                shard_id
                for shard_id in synced
                if resynced[shard_id] > synced[shard_id]
            ]
            assert len(advanced) == 1
            snapshot = service.metrics_snapshot().as_dict()
            assert snapshot["executor"]["replicaSyncs"] >= len(
                cluster.shards
            ) + 1

    def test_repeated_query_hits_worker_result_cache(self, cluster_factory):
        cluster = cluster_factory()
        with QueryService(cluster, process_config()) as service:
            results = [service.find("t", TARGETED) for _ in range(4)]
            first = canonical_docs(results[0].documents)
            for later in results[1:]:
                assert canonical_docs(later.documents) == first
                assert later.stats.as_dict() == results[0].stats.as_dict()
            executor = service.metrics_snapshot().as_dict()["executor"]
            # Query 1 misses (no hint in the key), query 2 carries the
            # winning hint (new key: miss + insert), queries 3+ hit.
            assert executor["remoteCacheHits"] > 0
            assert executor["remoteSubqueries"] >= executor["remoteCacheHits"]

    def test_writes_invalidate_worker_result_cache(self, cluster_factory):
        cluster = cluster_factory()
        with QueryService(cluster, process_config()) as service:
            for _ in range(3):
                before = service.find("t", TARGETED)
            service.insert_one(
                "t", {"_id": 50_000, "k": 2500, "group": 1}
            )
            after = service.find("t", TARGETED)
            assert len(after.documents) == len(before.documents) + 1
            assert any(
                d["_id"] == 50_000 for d in after.documents
            )


class TestDeadlinesAndAdmission:
    """The PR-1 leak class, reconstructed in the process topology."""

    def test_stalled_worker_times_out_cleanly(self, cluster_factory):
        cluster = cluster_factory()
        shard_id = sorted(cluster.shards)[0]
        with QueryService(cluster, process_config()) as service:
            service.find("t", {})  # spawn workers, sync replicas
            pool = service._worker_pool
            pool.debug_stall_ms[shard_id] = 1_000.0
            with pytest.raises(QueryTimeoutError):
                service.find("t", {}, timeout_ms=100)
            # The shard read lock must have been released on the
            # timeout path: a writer can take it promptly.
            lock = service._shard_locks[shard_id]
            assert lock.acquire_write(timeout=2.0)
            lock.release_write()
            # The worker was abandoned, not leaked: once the stall is
            # lifted the same pool serves the next query with the same
            # (still-alive) worker processes.
            pool.debug_stall_ms.clear()
            procs = [client._proc for client in pool.clients()]
            result = service.find("t", {"k": {"$gte": 0}}, timeout_ms=5_000)
            assert result.documents
            assert [c._proc for c in pool.clients()] == procs
            assert all(proc.is_alive() for proc in procs)

    def test_abandoned_reply_does_not_corrupt_next_result(
        self, cluster_factory
    ):
        # The stalled subquery's late reply arrives *after* its request
        # was discarded; it must be dropped by request id, never
        # delivered to a later request.
        cluster = cluster_factory()
        shard_id = sorted(cluster.shards)[0]
        with QueryService(cluster, process_config()) as service:
            expected = service.find("t", TARGETED)
            pool = service._worker_pool
            pool.debug_stall_ms[shard_id] = 300.0
            with pytest.raises(QueryTimeoutError):
                service.find("t", {}, timeout_ms=50)
            pool.debug_stall_ms.clear()
            again = service.find("t", TARGETED)
            assert canonical_docs(again.documents) == canonical_docs(
                expected.documents
            )
            assert again.stats.as_dict() == expected.stats.as_dict()

    def test_deadline_expired_before_dispatch(self, cluster_factory):
        cluster = cluster_factory()
        with QueryService(cluster, process_config()) as service:
            service.find("t", {})
            with pytest.raises(QueryTimeoutError):
                service.find("t", TARGETED, timeout_ms=0.0)
            # Pool still serves.
            assert service.find("t", TARGETED).documents


class TestWorkerLifecycle:
    def test_dead_worker_is_respawned_with_a_fresh_replica(
        self, cluster_factory
    ):
        cluster = cluster_factory()
        shard_id = sorted(cluster.shards)[0]
        with QueryService(cluster, process_config()) as service:
            expected = service.find("t", TARGETED)
            client = service._worker_pool.client_for(shard_id)
            old_proc = client._proc
            old_proc.terminate()
            old_proc.join(timeout=5.0)
            assert not old_proc.is_alive()
            # The next query may observe the corpse mid-flight (the
            # reader thread fails its pendings with ServiceError) or
            # already find it dead and respawn transparently; either
            # way the one *after* must be served by a fresh worker
            # with a freshly synced replica.
            try:
                first = service.find("t", TARGETED)
            except ServiceError:
                first = service.find("t", TARGETED)
            assert canonical_docs(first.documents) == canonical_docs(
                expected.documents
            )
            assert client._proc is not old_proc
            assert client._proc.is_alive()

    def test_shutdown_terminates_workers(self, cluster_factory):
        cluster = cluster_factory()
        service = QueryService(cluster, process_config())
        service.find("t", {})
        procs = [c._proc for c in service._worker_pool.clients()]
        assert procs and all(p.is_alive() for p in procs)
        service.shutdown()
        for proc in procs:
            proc.join(timeout=5.0)
            assert not proc.is_alive()
        with pytest.raises(ServiceError):
            service.find("t", {})

    def test_sanitize_without_instrumenter_is_refused(
        self, cluster_factory, monkeypatch
    ):
        # REPRO_WORKER_SANITIZE without an armed hook must refuse
        # loudly before spawning, not silently skip instrumentation
        # (layering forbids executors importing the sanitizer, so the
        # hook is registered by ``import repro.sanitizer``).
        cluster = cluster_factory()
        monkeypatch.setenv(executors.ENV_WORKER_SANITIZE, "1")
        monkeypatch.setattr(executors, "worker_instrumenter", None)
        with QueryService(cluster, process_config()) as service:
            with pytest.raises(ServiceError, match="instrumenter"):
                service.find("t", {})

    def test_worker_pool_clamps_to_shard_count(self, cluster_factory):
        cluster = cluster_factory()
        config = process_config(executor_workers=64)
        with QueryService(cluster, config) as service:
            assert len(service._worker_pool.clients()) <= len(
                cluster.shards
            )
