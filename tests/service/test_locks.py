"""Reader-writer lock semantics."""

import threading
import time

from repro.service.locks import ReadWriteLock


class TestSharedMode:
    def test_many_concurrent_readers(self):
        lock = ReadWriteLock()
        inside = []
        barrier = threading.Barrier(4)

        def reader():
            with lock.read_locked():
                barrier.wait(timeout=5)  # all 4 inside simultaneously
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(inside) == 4

    def test_read_timeout_while_written(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        try:
            assert lock.acquire_read(timeout=0.05) is False
        finally:
            lock.release_write()
        assert lock.acquire_read(timeout=0.05) is True
        lock.release_read()


class TestExclusiveMode:
    def test_writer_excludes_writer(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        try:
            assert lock.acquire_write(timeout=0.05) is False
        finally:
            lock.release_write()

    def test_writer_waits_for_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = []

        def writer():
            got_write.append(lock.acquire_write(timeout=2))
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not got_write  # still blocked on the active reader
        lock.release_read()
        t.join()
        assert got_write == [True]

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()

        def writer():
            writer_started.set()
            lock.acquire_write()
            lock.release_write()

        t = threading.Thread(target=writer)
        t.start()
        writer_started.wait(timeout=2)
        time.sleep(0.05)  # writer is now parked, waiting
        # Writer preference: a new reader cannot sneak in.
        assert lock.acquire_read(timeout=0.05) is False
        lock.release_read()
        t.join()
        assert lock.acquire_read(timeout=1) is True
        lock.release_read()

    def test_writer_timeout_wakes_parked_readers(self):
        """A timed-out writer must notify readers it was parking.

        With one read held, a writer waits with a short timeout while a
        second reader parks behind the waiting writer.  When the writer
        gives up, the parked reader must wake promptly — not sit until
        its own (much longer) timeout expires for lack of a notify.
        """
        lock = ReadWriteLock()
        lock.acquire_read()  # keeps the writer from acquiring
        writer_parked = threading.Event()
        reader_elapsed = []

        def writer():
            writer_parked.set()
            assert lock.acquire_write(timeout=0.2) is False

        def reader():
            writer_parked.wait(timeout=2)
            time.sleep(0.05)  # let the writer park first
            t0 = time.perf_counter()
            assert lock.acquire_read(timeout=5) is True
            reader_elapsed.append(time.perf_counter() - t0)
            lock.release_read()

        wt = threading.Thread(target=writer)
        rt = threading.Thread(target=reader)
        wt.start()
        rt.start()
        wt.join(timeout=5)
        rt.join(timeout=5)
        lock.release_read()
        assert reader_elapsed and reader_elapsed[0] < 1.5
