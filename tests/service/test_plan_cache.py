"""Plan cache: shape normalization, invalidation, LRU, statistics."""

from repro.service.plan_cache import PlanCache, query_shape_key


class TestShapeKey:
    def test_constants_are_erased(self):
        a = query_shape_key("t", {"k": {"$gte": 1, "$lt": 5}})
        b = query_shape_key("t", {"k": {"$gte": 100, "$lt": 999}})
        assert a == b

    def test_operator_kinds_distinguish(self):
        eq = query_shape_key("t", {"k": 3})
        rng = query_shape_key("t", {"k": {"$gte": 1, "$lt": 5}})
        inop = query_shape_key("t", {"k": {"$in": [1, 2]}})
        assert len({eq, rng, inop}) == 3

    def test_paths_distinguish(self):
        assert query_shape_key("t", {"k": 3}) != query_shape_key("t", {"j": 3})

    def test_collection_distinguishes(self):
        assert query_shape_key("a", {"k": 3}) != query_shape_key("b", {"k": 3})

    def test_or_of_ranges_normalizes(self):
        # The Hilbert $or pattern: many range clauses, same path.
        a = query_shape_key(
            "t", {"$or": [{"h": {"$gte": 1, "$lte": 2}}, {"h": {"$in": [9]}}]}
        )
        b = query_shape_key(
            "t", {"$or": [{"h": {"$gte": 5, "$lte": 8}}, {"h": {"$in": [4]}}]}
        )
        assert a == b


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = PlanCache()
        key = query_shape_key("t", {"k": 3})
        assert cache.get(key) is None
        cache.put(key, "idx")
        assert cache.get(key) == "idx"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        k1 = query_shape_key("t", {"a": 1})
        k2 = query_shape_key("t", {"b": 1})
        k3 = query_shape_key("t", {"c": 1})
        cache.put(k1, "i1")
        cache.put(k2, "i2")
        assert cache.get(k1) == "i1"  # freshens k1
        cache.put(k3, "i3")  # evicts k2, the least recent
        assert cache.get(k2) is None
        assert cache.get(k1) == "i1"
        assert cache.get(k3) == "i3"

    def test_write_volume_invalidation(self):
        cache = PlanCache(write_invalidation_threshold=10)
        key = query_shape_key("t", {"k": 3})
        cache.put(key, "idx")
        cache.note_writes("t", 9)
        assert cache.get(key) == "idx"  # below threshold
        cache.note_writes("t", 1)
        assert cache.get(key) is None  # threshold reached
        assert cache.evictions == 1

    def test_write_invalidation_is_per_collection(self):
        cache = PlanCache(write_invalidation_threshold=5)
        key = query_shape_key("t", {"k": 3})
        cache.put(key, "idx")
        cache.note_writes("other", 100)
        assert cache.get(key) == "idx"

    def test_invalidate_collection(self):
        cache = PlanCache()
        k1 = query_shape_key("t", {"k": 3})
        k2 = query_shape_key("u", {"k": 3})
        cache.put(k1, "i1")
        cache.put(k2, "i2")
        assert cache.invalidate_collection("t") == 1
        assert cache.get(k1) is None
        assert cache.get(k2) == "i2"

    def test_hit_rate(self):
        cache = PlanCache()
        key = query_shape_key("t", {"k": 3})
        cache.get(key)  # miss
        cache.put(key, "idx")
        for _ in range(9):
            cache.get(key)  # hits
        assert cache.hit_rate == 0.9


class TestExactAdmission:
    """The exact store's admission control under ever-distinct traffic."""

    def _drive_miss_window(self, cache):
        for i in range(PlanCache._EXACT_WINDOW):
            cache.get_compiled(("t", "q%d" % i))

    def test_admits_by_default(self):
        cache = PlanCache()
        assert all(cache.exact_admission() for _ in range(10))
        assert cache.exact_bypasses == 0

    def test_hitless_window_suppresses_store(self):
        cache = PlanCache()
        self._drive_miss_window(cache)
        decisions = [cache.exact_admission() for _ in range(64)]
        # Suppressed: only every _EXACT_PROBE_EVERY-th lookup probes.
        assert decisions.count(True) == 64 // PlanCache._EXACT_PROBE_EVERY
        assert cache.exact_bypasses == 64 - decisions.count(True)

    def test_probe_hit_lifts_suppression(self):
        cache = PlanCache()
        cache.put_compiled(("t", "warm"), ("t", "shape"), None, None, None)
        self._drive_miss_window(cache)
        # Wait out bypasses until a probe is granted, then hit on it.
        while not cache.exact_admission():
            pass
        assert cache.get_compiled(("t", "warm")) is not None
        # Repeat traffic is back: admission is unconditional again.
        assert all(cache.exact_admission() for _ in range(10))

    def test_sparse_hits_keep_store_admitted(self):
        cache = PlanCache()
        cache.put_compiled(("t", "warm"), ("t", "shape"), None, None, None)
        # A window with just enough hits stays admitted.
        for i in range(PlanCache._EXACT_WINDOW):
            if i % 64 == 0:
                cache.get_compiled(("t", "warm"))
            else:
                cache.get_compiled(("t", "q%d" % i))
        assert cache.exact_admission()
        assert cache.exact_bypasses == 0

    def test_bypasses_reported_in_stats(self):
        cache = PlanCache()
        self._drive_miss_window(cache)
        cache.exact_admission()
        assert cache.stats()["exactBypasses"] == cache.exact_bypasses
