"""Concurrency stress: mixed reads/writes vs a serial oracle.

N threads hammer one QueryService with interleaved range reads,
counter increments, inserts, and deletes.  Afterwards the cluster must
match what a serial execution of the same write set would produce —
every insert present exactly once, every increment applied (no lost
updates), catalog counters consistent — and every read observed along
the way must have been internally consistent (only matching documents,
no duplicates).
"""

import random
import threading

import pytest

from repro.errors import QueryTimeoutError
from repro.service import QueryService, ServiceConfig

N_THREADS = 8
OPS_PER_THREAD = 25
BASE_DOCS = 400


@pytest.fixture
def stress_cluster(cluster_factory):
    return cluster_factory(
        n_shards=4, n_docs=BASE_DOCS, chunk_max_bytes=2 * 1024
    )


class TestConcurrentMixedWorkload:
    def test_no_lost_updates_and_reads_consistent(self, stress_cluster):
        cluster = stress_cluster
        config = ServiceConfig(
            max_workers=4,
            max_concurrent_queries=N_THREADS,
            max_queue_depth=N_THREADS * 4,
        )
        increments_done = [0] * N_THREADS
        inserts_done = [[] for _ in range(N_THREADS)]
        deletes_done = [[] for _ in range(N_THREADS)]
        read_errors = []
        failures = []

        def worker(tid: int, service: QueryService) -> None:
            rng = random.Random(1000 + tid)
            try:
                for op in range(OPS_PER_THREAD):
                    roll = rng.random()
                    if roll < 0.5:
                        lo = rng.randrange(0, 9000)
                        result = service.find(
                            "t", {"k": {"$gte": lo, "$lt": lo + 1500}}
                        )
                        ids = [d["_id"] for d in result]
                        if len(ids) != len(set(ids)):
                            read_errors.append("duplicate ids in read")
                        for d in result:
                            if not (lo <= d["k"] < lo + 1500):
                                read_errors.append(
                                    "non-matching doc %r" % d["_id"]
                                )
                    elif roll < 0.75:
                        # Increment the shared counter of one group;
                        # update_many returns how many docs it touched.
                        group = rng.randrange(0, 10)
                        touched = service.update_many(
                            "t",
                            {"group": group},
                            {"$inc": {"counter": 1}},
                        )
                        increments_done[tid] += touched
                    elif roll < 0.9:
                        new_id = 100_000 + tid * 1000 + op
                        service.insert_many(
                            "t",
                            [
                                {
                                    "_id": new_id,
                                    "k": rng.randrange(0, 10_000),
                                    "group": 10 + tid,  # outside $inc range
                                    "counter": 0,
                                    "pad": "y" * 64,
                                }
                            ],
                        )
                        inserts_done[tid].append(new_id)
                    else:
                        if inserts_done[tid]:
                            victim = inserts_done[tid].pop()
                            n = service.delete_many("t", {"_id": victim})
                            if n != 1:
                                read_errors.append(
                                    "delete of %r removed %d" % (victim, n)
                                )
                            deletes_done[tid].append(victim)
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((tid, exc))

        with QueryService(cluster, config) as service:
            threads = [
                threading.Thread(target=worker, args=(tid, service))
                for tid in range(N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert not failures, failures
        assert not read_errors, read_errors[:5]

        # --- serial oracle ---------------------------------------------------
        surviving_inserts = {i for lst in inserts_done for i in lst}
        n_docs = cluster.count_documents("t", {})
        assert n_docs == BASE_DOCS + len(surviving_inserts)

        # Every inserted-and-not-deleted document is present exactly once.
        for new_id in sorted(surviving_inserts):
            assert cluster.count_documents("t", {"_id": new_id}) == 1
        for lst in deletes_done:
            for gone in lst:
                assert cluster.count_documents("t", {"_id": gone}) == 0

        # No lost updates: the counters over the base documents sum to
        # exactly the number of (document, increment) applications the
        # writers performed.
        total = sum(
            d["counter"]
            for d in cluster.find("t", {"group": {"$lt": 10}}).documents
        )
        assert total == sum(increments_done)

        # Catalog bookkeeping survived the interleaving.
        cluster.validate("t")

    def test_concurrent_readers_share_shards(self, stress_cluster):
        """Pure read concurrency: many threads, identical results."""
        cluster = stress_cluster
        expected = sorted(
            d["_id"]
            for d in cluster.find("t", {"k": {"$gte": 0, "$lt": 5000}})
        )
        mismatches = []

        def reader(service: QueryService) -> None:
            for _ in range(10):
                got = sorted(
                    d["_id"]
                    for d in service.find(
                        "t", {"k": {"$gte": 0, "$lt": 5000}}
                    )
                )
                if got != expected:
                    mismatches.append(got)

        with QueryService(cluster) as service:
            threads = [
                threading.Thread(target=reader, args=(service,))
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not mismatches


class TestTimeoutLockSafety:
    def test_timed_out_query_releases_read_locks(self, stress_cluster):
        """A query timing out mid lock-acquisition must leak no locks.

        A writer parks on the last shard (sorted order) so a broadcast
        read acquires every earlier shard's read lock, then times out
        waiting for the blocked one.  Afterwards every shard must be
        write-acquirable and a real write must complete — a leaked read
        lock would deadlock the service permanently.
        """
        with QueryService(
            stress_cluster, ServiceConfig(max_workers=4)
        ) as service:
            shard_ids = sorted(service._shard_locks)
            blocker = service._shard_locks[shard_ids[-1]]
            parked = threading.Event()
            unpark = threading.Event()

            def writer():
                # Park on a dedicated thread: acquiring the last lock
                # from the query thread itself would be an artificial
                # rank inversion, not the scenario under test.
                blocker.acquire_write()
                parked.set()
                unpark.wait(timeout=30.0)
                blocker.release_write()

            thread = threading.Thread(target=writer)
            thread.start()
            assert parked.wait(timeout=10.0)
            try:
                with pytest.raises(QueryTimeoutError):
                    service.find("t", {}, timeout_ms=100)
            finally:
                unpark.set()
                thread.join(timeout=10.0)
            for shard_id in shard_ids:
                lock = service._shard_locks[shard_id]
                assert lock.acquire_write(timeout=2.0), (
                    "leaked read lock on %s" % shard_id
                )
                lock.release_write()
            inserted = service.insert_many(
                "t",
                [
                    {
                        "_id": 10**6,
                        "k": 1,
                        "group": 0,
                        "counter": 0,
                        "pad": "x",
                    }
                ],
            )
            assert inserted == 1
