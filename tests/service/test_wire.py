"""Round-trip tests for the executor wire frames.

Everything that crosses the worker-process boundary must decode back
to exactly what was encoded: plan messages for every query shape the
differential suite exercises, result payloads (including empty result
sets), counter frames field-for-field, error frames, and replica
snapshots — including snapshots taken after deletes, where tombstoned
documents must not leak into the frame.
"""

import datetime as _dt
import pickle
import random

import pytest

from repro.core.approaches import make_approach
from repro.docstore.collection import Collection
from repro.docstore.executor import ExecutionStats
from repro.geo.geometry import BoundingBox
from repro.service.plan_cache import exact_query_key, query_shape_key
from repro.service.wire import (
    WIRE_PROTOCOL,
    BatchFrame,
    BatchGroup,
    PlanMessage,
    ResultFrame,
    ShutdownFrame,
    SubqueryRequest,
    SyncFrame,
    decode_error,
    decode_result,
    decode_stats,
    encode_error,
    encode_result,
    encode_stats,
    load_sync_payload,
    make_sync_payload,
)
from repro.workloads.queries import SpatioTemporalQuery, all_queries

_UTC = _dt.timezone.utc


def _counters(stats):
    """The deterministic execution counters (stage times are wall-clock)."""
    return (
        stats.keys_examined,
        stats.docs_examined,
        stats.n_returned,
        stats.seeks,
        stats.stage,
        stats.index_name,
    )


def _differential_query_documents():
    """Rendered query documents covering the differential suite's shapes.

    Every approach the differential suite parametrizes renders both
    the paper's fixed query sets and a randomized sweep — the same
    generator family ``test_fast_path_differential`` uses.
    """
    rng = random.Random(17)
    spatio_temporal = [q for qs in all_queries().values() for q in qs]
    for i in range(10):
        width = 10.0 ** rng.uniform(-2.0, 0.8)
        height = 10.0 ** rng.uniform(-2.0, 0.6)
        min_lon = rng.uniform(20.0, 28.0)
        min_lat = rng.uniform(34.0, 41.0)
        t_from = _dt.datetime(2018, 7, 1, tzinfo=_UTC) + _dt.timedelta(
            seconds=rng.randrange(0, 90 * 24 * 3600)
        )
        spatio_temporal.append(
            SpatioTemporalQuery(
                bbox=BoundingBox(
                    min_lon,
                    min_lat,
                    min(min_lon + width, 180.0),
                    min(min_lat + height, 90.0),
                ),
                time_from=t_from,
                time_to=t_from + _dt.timedelta(hours=6),
                label="rand-%d" % i,
            )
        )
    documents = []
    for name in ("hil", "bslST", "bslTS"):
        approach = make_approach(name)
        for query in spatio_temporal:
            rendered, _ = approach.render_query(query)
            documents.append(rendered)
    # Service-style scalar shapes the spatio-temporal renderers never
    # produce.
    documents.extend(
        [
            {},
            {"k": 5},
            {"k": {"$gte": 1, "$lt": 9}},
            {"$or": [{"k": 1}, {"group": {"$in": [1, 2]}}]},
        ]
    )
    return documents


class TestPlanMessageRoundTrip:
    def test_every_differential_shape_roundtrips(self):
        for query in _differential_query_documents():
            plan = PlanMessage(
                collection="t",
                query=query,
                hint="some_index",
                max_geo_ranges=32,
                fast_path=True,
                shape_key=query_shape_key("t", query),
                exact_key=exact_query_key("t", query),
                epoch=7,
            )
            clone = pickle.loads(pickle.dumps(plan, protocol=WIRE_PROTOCOL))
            assert clone == plan
            # The cache keys must survive the trip usable as dict keys
            # with unchanged hashes.
            assert hash(clone.shape_key) == hash(plan.shape_key)
            if plan.exact_key is not None:
                assert hash(clone.exact_key) == hash(plan.exact_key)

    def test_batch_frame_roundtrips(self):
        query = {"k": {"$gte": 1}}
        request = SubqueryRequest(
            request_id=3,
            shard_id="shard01",
            plan=PlanMessage(
                collection="t",
                query=query,
                hint=None,
                max_geo_ranges=None,
                fast_path=False,
                shape_key=query_shape_key("t", query),
                exact_key=exact_query_key("t", query),
                epoch=0,
            ),
        )
        frame = BatchFrame(
            syncs=(
                SyncFrame(
                    shard_id="shard01",
                    collection="t",
                    epoch=0,
                    payload=b"opaque",
                ),
            ),
            groups=(
                BatchGroup(
                    shape_key=request.plan.shape_key, requests=(request,)
                ),
            ),
        )
        assert pickle.loads(pickle.dumps(frame, protocol=WIRE_PROTOCOL)) == (
            frame
        )
        shutdown = ShutdownFrame()
        assert isinstance(
            pickle.loads(pickle.dumps(shutdown, protocol=WIRE_PROTOCOL)),
            ShutdownFrame,
        )


def _loaded_collection():
    col = Collection("t")
    col.create_index([("k", 1)], name="k_1")
    col.insert_many(
        {"_id": i, "k": i % 13, "group": i % 3, "pad": "x" * 8}
        for i in range(120)
    )
    return col


class TestCounterFrames:
    def test_real_execution_stats_roundtrip(self):
        col = _loaded_collection()
        for query in ({"k": 4}, {"k": {"$gte": 3, "$lt": 9}}, {}):
            stats = col.find_with_stats(query).stats
            clone = decode_stats(encode_stats(stats))
            assert clone == stats
            assert clone.as_dict() == stats.as_dict()

    def test_every_stats_field_is_framed(self):
        # A field added to ExecutionStats must break this test rather
        # than silently dropping a counter on the wire.
        stats = ExecutionStats()
        framed = set(
            name
            for name in vars(stats)
            if not name.startswith("__")
        )
        frame = encode_stats(stats)
        assert len(frame) == len(framed)

    def test_length_mismatch_is_rejected(self):
        with pytest.raises(ValueError):
            decode_stats((1, 2, 3))


class TestResultFrames:
    def test_documents_roundtrip_byte_identical(self):
        col = _loaded_collection()
        result = col.find_with_stats({"k": {"$gte": 3, "$lt": 9}})
        clone = decode_result(encode_result(result.documents, result.stats))
        assert clone.documents == result.documents
        for sent, received in zip(result.documents, clone.documents):
            assert pickle.dumps(received, protocol=WIRE_PROTOCOL) == (
                pickle.dumps(sent, protocol=WIRE_PROTOCOL)
            )
        assert clone.stats == result.stats

    def test_empty_result_roundtrips(self):
        col = _loaded_collection()
        result = col.find_with_stats({"k": 99})
        assert result.documents == []
        clone = decode_result(encode_result(result.documents, result.stats))
        assert clone.documents == []
        assert clone.stats == result.stats

    def test_result_frame_flags_roundtrip(self):
        frame = ResultFrame(
            request_id=9,
            payload=b"payload",
            cached=True,
            synced=True,
            violations=("lock-order: bad",),
        )
        assert pickle.loads(pickle.dumps(frame, protocol=WIRE_PROTOCOL)) == (
            frame
        )


class TestErrorFrames:
    def test_exception_roundtrips(self):
        err = decode_error(encode_error(ValueError("bad bounds")))
        assert isinstance(err, ValueError)
        assert err.args == ("bad bounds",)

    def test_unpicklable_exception_degrades_loudly(self):
        class Weird(Exception):
            def __init__(self, a, b):
                super().__init__("%s/%s" % (a, b))

        # Weird is a local class: pickling it fails outright, so the
        # codec must fall back to a RuntimeError carrying the repr.
        err = decode_error(encode_error(Weird(1, 2)))
        assert isinstance(err, RuntimeError)
        assert "Weird" in str(err) or "1/2" in str(err)


class TestSnapshotPayloads:
    def test_snapshot_rebuild_is_byte_identical(self):
        col = _loaded_collection()
        definitions, documents = load_sync_payload(make_sync_payload(col))
        replica = Collection.from_snapshot("t", definitions, documents)
        assert [d.name for d in replica.index_definitions()] == [
            d.name for d in col.index_definitions()
        ]
        for query in ({"k": 4}, {"k": {"$gte": 3, "$lt": 9}}, {}):
            mine = col.find_with_stats(query)
            theirs = replica.find_with_stats(query)
            assert theirs.documents == mine.documents
            for sent, received in zip(mine.documents, theirs.documents):
                assert pickle.dumps(
                    received, protocol=WIRE_PROTOCOL
                ) == pickle.dumps(sent, protocol=WIRE_PROTOCOL)
            assert _counters(theirs.stats) == _counters(mine.stats)

    def test_tombstoned_documents_stay_out_of_the_frame(self):
        col = _loaded_collection()
        deleted = col.delete_many({"group": 1})
        assert deleted > 0
        definitions, documents = load_sync_payload(make_sync_payload(col))
        assert len(documents) == col.count_documents()
        assert all(doc["group"] != 1 for doc in documents)
        replica = Collection.from_snapshot("t", definitions, documents)
        for query in ({"group": 1}, {"k": {"$gte": 0}}, {}):
            mine = col.find_with_stats(query)
            theirs = replica.find_with_stats(query)
            assert theirs.documents == mine.documents
            assert _counters(theirs.stats) == _counters(mine.stats)
