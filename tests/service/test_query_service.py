"""QueryService: parity with the library path, admission, plan cache."""

import threading
import time

import pytest

from repro.errors import (
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import QueryService, ServiceConfig

QUERY = {"k": {"$gte": 1000, "$lt": 5000}}
BROADCAST = {"group": 3}  # does not constrain the shard key


class TestResultParity:
    def test_documents_and_stats_match_library_path(self, seeded_cluster):
        base = seeded_cluster.find("t", QUERY)
        with QueryService(seeded_cluster) as service:
            served = service.find("t", QUERY)
        assert [d["_id"] for d in served.documents] == [
            d["_id"] for d in base.documents
        ]
        assert served.stats.as_dict() == base.stats.as_dict()

    def test_parity_holds_on_plan_cache_hit(self, seeded_cluster):
        base = seeded_cluster.find("t", QUERY)
        with QueryService(seeded_cluster) as service:
            first = service.find("t", QUERY)
            second = service.find("t", QUERY)
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert second.stats.as_dict() == base.stats.as_dict()
        assert [d["_id"] for d in second.documents] == [
            d["_id"] for d in base.documents
        ]

    def test_broadcast_parity(self, seeded_cluster):
        base = seeded_cluster.find("t", BROADCAST)
        with QueryService(seeded_cluster) as service:
            served = service.find("t", BROADCAST)
        assert served.stats.broadcast
        assert sorted(d["_id"] for d in served) == sorted(
            d["_id"] for d in base
        )

    def test_sequential_mode_parity(self, seeded_cluster):
        base = seeded_cluster.find("t", QUERY)
        config = ServiceConfig(parallel_scatter_gather=False)
        with QueryService(seeded_cluster, config) as service:
            served = service.find("t", QUERY)
        assert served.stats.as_dict() == base.stats.as_dict()

    def test_count_documents(self, seeded_cluster):
        expected = seeded_cluster.count_documents("t", QUERY)
        with QueryService(seeded_cluster) as service:
            assert service.count_documents("t", QUERY) == expected


class TestPlanCacheIntegration:
    def test_repeated_shape_hits_with_different_constants(
        self, seeded_cluster
    ):
        with QueryService(seeded_cluster) as service:
            service.find("t", {"k": {"$gte": 0, "$lt": 100}})
            for lo in range(100, 1000, 100):
                r = service.find("t", {"k": {"$gte": lo, "$lt": lo + 100}})
                assert r.plan_cache_hit
            assert service.plan_cache.hit_rate > 0.85

    def test_write_volume_invalidates(self, seeded_cluster):
        config = ServiceConfig(plan_cache_write_threshold=10)
        with QueryService(seeded_cluster, config) as service:
            service.find("t", QUERY)
            assert service.find("t", QUERY).plan_cache_hit
            service.insert_many(
                "t",
                [
                    {"_id": 10_000 + i, "k": i, "group": 0, "counter": 0}
                    for i in range(10)
                ],
            )
            assert not service.find("t", QUERY).plan_cache_hit

    def test_index_ddl_invalidates(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            service.find("t", QUERY)
            assert service.find("t", QUERY).plan_cache_hit
            service.create_index("t", [("group", 1)], name="group_1")
            assert not service.find("t", QUERY).plan_cache_hit
            assert service.find("t", QUERY).plan_cache_hit
            service.drop_index("t", "group_1")
            assert not service.find("t", QUERY).plan_cache_hit

    def test_compiled_plan_not_served_across_drop_index(
        self, seeded_cluster
    ):
        # The exact-query compiled plan carries the winning index as
        # its hint; serving it after that index is dropped would hint
        # a nonexistent index (PlanError) or, worse, replay stale
        # bounds.  DDL must retire compiled entries with the shapes.
        with QueryService(seeded_cluster) as service:
            service.create_index("t", [("group", 1)], name="group_1")
            first = service.find("t", BROADCAST)
            assert service.find("t", BROADCAST).plan_cache_hit
            assert service.plan_cache.stats()["compiledEntries"] >= 1
            service.drop_index("t", "group_1")
            assert service.plan_cache.stats()["compiledEntries"] == 0
            after = service.find("t", BROADCAST)
            assert not after.plan_cache_hit
            assert [d["_id"] for d in after.documents] == [
                d["_id"] for d in first.documents
            ]
            # And the rebuilt compiled plan serves hits again.
            assert service.find("t", BROADCAST).plan_cache_hit

    def test_compiled_hit_reuses_exact_query(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            service.find("t", QUERY)
            before = service.plan_cache.stats()["compiledHits"]
            repeat = service.find("t", QUERY)
            assert repeat.plan_cache_hit
            assert service.plan_cache.stats()["compiledHits"] == before + 1
            # Same shape, different constants: not an exact hit, but
            # still a shape-level hit.
            other = service.find("t", {"k": {"$gte": 1001, "$lt": 5001}})
            assert other.plan_cache_hit
            assert service.plan_cache.stats()["compiledHits"] == before + 1

    def test_cache_disabled(self, seeded_cluster):
        config = ServiceConfig(plan_cache_enabled=False)
        with QueryService(seeded_cluster, config) as service:
            assert service.plan_cache is None
            service.find("t", QUERY)
            assert not service.find("t", QUERY).plan_cache_hit


class TestAdmissionControl:
    def test_overload_rejection(self, seeded_cluster):
        config = ServiceConfig(
            max_workers=1, max_concurrent_queries=1, max_queue_depth=0
        )
        service = QueryService(seeded_cluster, config)
        release = threading.Event()
        entered = threading.Event()
        errors = []

        # Occupy the only slot with a write that blocks on `release`.
        def slow_write():
            try:
                service._run_exclusive(
                    lambda: (entered.set(), release.wait(5))
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=slow_write)
        t.start()
        entered.wait(timeout=5)
        with pytest.raises(ServiceOverloadedError):
            service.find("t", QUERY)
        release.set()
        t.join()
        assert not errors
        assert service.metrics.rejected == 1
        # Capacity freed: the same query now succeeds.
        assert len(service.find("t", QUERY)) >= 0
        service.shutdown()

    def test_queue_depth_admits_waiting_requests(self, seeded_cluster):
        config = ServiceConfig(
            max_workers=2, max_concurrent_queries=2, max_queue_depth=8
        )
        with QueryService(seeded_cluster, config) as service:
            results = []

            def client():
                results.append(len(service.find("t", QUERY)))

            threads = [threading.Thread(target=client) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 6
            assert service.metrics.rejected == 0

    def test_deadline_expires_in_queue(self, seeded_cluster):
        config = ServiceConfig(
            max_workers=1, max_concurrent_queries=1, max_queue_depth=2
        )
        service = QueryService(seeded_cluster, config)
        release = threading.Event()
        entered = threading.Event()

        def slow_write():
            service._run_exclusive(lambda: (entered.set(), release.wait(5)))

        t = threading.Thread(target=slow_write)
        t.start()
        entered.wait(timeout=5)
        try:
            with pytest.raises(QueryTimeoutError):
                service.find("t", QUERY, timeout_ms=80)
            assert service.metrics.timed_out == 1
        finally:
            release.set()
            t.join()
            service.shutdown()

    def test_rejected_after_shutdown(self, seeded_cluster):
        service = QueryService(seeded_cluster)
        service.shutdown()
        with pytest.raises(ServiceError):
            service.find("t", QUERY)


class TestWritesThroughService:
    def test_insert_update_delete(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            n0 = service.count_documents("t", {})
            assert (
                service.insert_many(
                    "t",
                    [
                        {"_id": 90_001, "k": 123, "group": 1, "counter": 0},
                        {"_id": 90_002, "k": 456, "group": 2, "counter": 0},
                    ],
                )
                == 2
            )
            assert service.count_documents("t", {}) == n0 + 2
            assert (
                service.update_many(
                    "t", {"_id": 90_001}, {"$inc": {"counter": 5}}
                )
                == 1
            )
            [doc] = service.find("t", {"_id": 90_001}).documents
            assert doc["counter"] == 5
            assert service.delete_many("t", {"_id": 90_002}) == 1
            assert service.count_documents("t", {}) == n0 + 1
            assert service.metrics.writes == 3


class TestServiceMetrics:
    def test_latency_and_queue_wait_recorded(self, seeded_cluster):
        with QueryService(seeded_cluster) as service:
            for _ in range(5):
                service.find("t", QUERY)
            snap = service.metrics.snapshot(service.plan_cache.stats())
            assert snap.completed == 5
            assert snap.p50_latency_ms > 0
            assert snap.p99_latency_ms >= snap.p50_latency_ms
            assert snap.plan_cache["hits"] == 4
            payload = snap.as_dict()
            assert payload["completed"] == 5


class TestServiceBackedMeasurement:
    def test_measure_query_through_service(self):
        import datetime as dt

        from repro import (
            QueryService,
            SpatioTemporalQuery,
            deploy_approach,
            make_approach,
            measure_query,
        )
        from repro.cluster.cluster import ClusterTopology
        from repro.datagen import FleetConfig, FleetGenerator
        from repro.geo import BoundingBox

        docs = FleetGenerator(FleetConfig(n_vehicles=10)).generate_list(400)
        deployment = deploy_approach(
            make_approach("hil"),
            docs,
            topology=ClusterTopology(n_shards=3),
        )
        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.60, 37.90, 23.90, 38.10),
            time_from=dt.datetime(2018, 8, 1, tzinfo=dt.timezone.utc),
            time_to=dt.datetime(2018, 8, 8, tzinfo=dt.timezone.utc),
            label="Qtest",
        )
        direct = measure_query(deployment, query, runs=2, average_last=1)
        with QueryService(deployment.cluster) as service:
            served = measure_query(
                deployment, query, runs=2, average_last=1, service=service
            )
        assert served.n_returned == direct.n_returned
        assert served.nodes == direct.nodes
        assert served.max_keys_examined == direct.max_keys_examined
        assert served.max_docs_examined == direct.max_docs_examined
        assert served.execution_time_ms == pytest.approx(
            direct.execution_time_ms
        )
