"""Cache coherence of the live service, checked by the epoch tracer.

The ISSUE-8 satellite: drive the TargetingCache through interleaved
chunk splits and zone updates, and the plan cache through DDL on a
*different* collection, with the autouse ``cache_epoch_tracer``
fixture (tests/service/conftest.py) recording every fill and hit.
Correctness here means two things at once: answers stay right, and
the tracer's teardown ``assert_clean`` finds no hit whose fill
predates a governing mutation.
"""

from __future__ import annotations

from repro.docstore import bson
from repro.cluster.zones import Zone
from repro.service.service import QueryService


def mid_key(value):
    return (bson.sort_key(value),)


class TestTargetingUnderInterleavedMutations:
    def test_split_and_zone_updates_between_reads(
        self, seeded_cluster, cache_epoch_tracer
    ):
        """Interleave range reads with splits and two zone layouts.

        Every metadata mutation bumps ``metadata_version``; because
        targeting keys embed the version, each post-mutation read must
        miss, retarget, and refill — never hit a pre-mutation entry.
        """
        cluster = seeded_cluster
        query = {"k": {"$gte": 100, "$lt": 7_000}}
        with QueryService(cluster) as service:
            expected = sorted(
                d["_id"] for d in service.find("t", query)
            )
            pattern = cluster.catalog.get("t").pattern
            shard_ids = sorted(cluster.shards)
            layouts = [
                [
                    Zone("a", pattern.global_min(), mid_key(3000), shard_ids[0]),
                    Zone("b", mid_key(3000), pattern.global_max(), shard_ids[1]),
                ],
                [
                    Zone("a", pattern.global_min(), mid_key(5500), shard_ids[2]),
                    Zone("b", mid_key(5500), pattern.global_max(), shard_ids[3]),
                ],
            ]
            for layout in layouts:
                # Warm the cache at the current version...
                for _ in range(2):
                    got = sorted(
                        d["_id"] for d in service.find("t", query)
                    )
                    assert got == expected
                # ...then mutate the routing metadata underneath it.
                cluster.update_zones("t", layout)
                got = sorted(d["_id"] for d in service.find("t", query))
                assert got == expected
            # Writes force chunk splits (chunk_max_bytes is tiny),
            # interleaved with reads that would be wrong if targeting
            # served a pre-split routing decision.
            versions = {cluster.metadata_version}
            for i in range(3):
                service.insert_many(
                    "t",
                    [
                        {
                            "_id": 10_000 + 100 * i + j,
                            "k": 3_000 + 10 * j,
                            "group": j % 10,
                            "counter": 0,
                            "pad": "x" * 512,
                        }
                        for j in range(100)
                    ],
                )
                versions.add(cluster.metadata_version)
                got = service.find(
                    "t", {"k": {"$gte": 3_000, "$lt": 3_500}}
                )
                by_id = {d["_id"] for d in got}
                assert all(
                    10_000 + 100 * n in by_id for n in range(i + 1)
                )
            assert len(versions) > 1, "splits must bump the version"
        # Teardown: cache_epoch_tracer.assert_clean() is the verdict.

    def test_cache_serves_hits_between_mutations(
        self, seeded_cluster, cache_epoch_tracer
    ):
        """The point of the cache: repeats at a stable version hit."""
        cluster = seeded_cluster
        with QueryService(cluster) as service:
            for _ in range(4):
                service.find("t", {"k": {"$gte": 0, "$lt": 2_000}})
            stats = cluster.targeting_cache.stats()
            assert stats["hits"] >= 3


class TestPlanCacheAcrossCollections:
    def test_entries_survive_unrelated_ddl(
        self, cluster_factory, cache_epoch_tracer
    ):
        """DDL on one collection must not stale-out another's plans.

        The tracer's domains are per-collection (``ddl:t`` vs
        ``ddl:u``), so if the plan cache over-shared state across
        collections — or under-invalidated its own — teardown's
        ``assert_clean`` would name the stale hit.
        """
        cluster = cluster_factory(n_docs=200)
        cluster.shard_collection("u", [("k", 1)])
        cluster.insert_many(
            "u",
            [
                {"_id": i, "k": i * 11, "v": i % 5, "pad": "x" * 64}
                for i in range(200)
            ],
        )
        with QueryService(cluster) as service:
            service.create_index("t", [("group", 1)], name="g_idx")
            service.create_index("u", [("v", 1)], name="v_idx")
            t_query = {"group": 3}
            u_query = {"v": 2}
            t_expected = sorted(
                d["_id"] for d in service.find("t", t_query)
            )
            u_expected = sorted(
                d["_id"] for d in service.find("u", u_query)
            )
            before = service.plan_cache.stats()["hits"]
            # DDL churn on "u" only; "t" entries must stay live and
            # keep hitting.
            service.drop_index("u", "v_idx")
            service.create_index("u", [("v", 1), ("k", 1)], name="v_idx")
            for _ in range(2):
                got = sorted(d["_id"] for d in service.find("t", t_query))
                assert got == t_expected
            assert service.plan_cache.stats()["hits"] > before
            # And "u" itself replans correctly after its churn.
            got = sorted(d["_id"] for d in service.find("u", u_query))
            assert got == u_expected

    def test_tracer_generations_are_per_collection(
        self, cluster_factory, cache_epoch_tracer
    ):
        cluster = cluster_factory(n_docs=50)
        with QueryService(cluster) as service:
            service.create_index("t", [("group", 1)], name="g_idx")
            assert cache_epoch_tracer.generation("ddl:t") == 1
            assert cache_epoch_tracer.generation("ddl:u") == 0
