"""Shared fixtures for the query-service test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.sanitizer import LockOrderSanitizer, instrument_query_service
from repro.service.service import QueryService


def build_seeded_cluster(
    n_shards: int = 4, n_docs: int = 500, chunk_max_bytes: int = 4 * 1024
) -> ShardedCluster:
    """A small cluster sharded on ("k", 1) with deterministic documents."""
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=chunk_max_bytes,
    )
    cluster.shard_collection("t", [("k", 1)])
    rng = random.Random(7)
    docs = [
        {
            "_id": i,
            "k": rng.randrange(0, 10_000),
            "group": i % 10,
            "counter": 0,
            "pad": "x" * 64,
        }
        for i in range(n_docs)
    ]
    cluster.insert_many("t", docs)
    return cluster


@pytest.fixture(autouse=True)
def lock_order_sanitizer(monkeypatch):
    """Run every service test under the runtime lock-order sanitizer.

    Each QueryService constructed during the test gets its shard locks
    swapped for instrumented wrappers, and teardown fails the test if
    the accumulated acquisition graph recorded any violation — a
    lock-order cycle would surface here even if the interleaving that
    deadlocks never happened to fire.
    """
    sanitizer = LockOrderSanitizer()
    original_init = QueryService.__init__

    def instrumented_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instrument_query_service(self, sanitizer)

    monkeypatch.setattr(QueryService, "__init__", instrumented_init)
    yield sanitizer
    sanitizer.assert_clean()


@pytest.fixture
def seeded_cluster() -> ShardedCluster:
    return build_seeded_cluster()


@pytest.fixture
def cluster_factory():
    """The builder itself, for tests that need custom sizing."""
    return build_seeded_cluster
