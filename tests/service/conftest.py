"""Shared fixtures for the query-service test suite."""

from __future__ import annotations

import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.sanitizer import (
    CacheTracer,
    LockOrderSanitizer,
    instrument_plan_cache,
    instrument_query_service,
    instrument_stats_catalog,
    instrument_targeting_cache,
)
from repro.service.service import QueryService


def build_seeded_cluster(
    n_shards: int = 4, n_docs: int = 500, chunk_max_bytes: int = 4 * 1024
) -> ShardedCluster:
    """A small cluster sharded on ("k", 1) with deterministic documents."""
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=chunk_max_bytes,
    )
    cluster.shard_collection("t", [("k", 1)])
    rng = random.Random(7)
    docs = [
        {
            "_id": i,
            "k": rng.randrange(0, 10_000),
            "group": i % 10,
            "counter": 0,
            "pad": "x" * 64,
        }
        for i in range(n_docs)
    ]
    cluster.insert_many("t", docs)
    return cluster


@pytest.fixture(autouse=True)
def lock_order_sanitizer(monkeypatch):
    """Run every service test under the runtime lock-order sanitizer.

    Each QueryService constructed during the test gets its shard locks
    swapped for instrumented wrappers, and teardown fails the test if
    the accumulated acquisition graph recorded any violation — a
    lock-order cycle would surface here even if the interleaving that
    deadlocks never happened to fire.
    """
    sanitizer = LockOrderSanitizer()
    original_init = QueryService.__init__

    def instrumented_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instrument_query_service(self, sanitizer)

    monkeypatch.setattr(QueryService, "__init__", instrumented_init)
    yield sanitizer
    sanitizer.assert_clean()


@pytest.fixture(autouse=True)
def cache_epoch_tracer(monkeypatch):
    """Run every service test under the cache epoch tracer.

    Each QueryService constructed during the test gets its targeting
    cache, plan cache (shape, exact, and parameterized-plan stores),
    and statistics catalog wired into one :class:`CacheTracer`;
    teardown fails the test if any cache served a hit whose fill
    predates a governing mutation — the runtime half of the
    CC001–CC004 rules, checked across the whole suite's workloads for
    free.
    """
    tracer = CacheTracer()
    original_init = QueryService.__init__

    def instrumented_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instrument_targeting_cache(self.cluster, tracer)
        instrument_plan_cache(self, tracer)
        instrument_stats_catalog(self, tracer)

    monkeypatch.setattr(QueryService, "__init__", instrumented_init)
    yield tracer
    tracer.assert_clean()


@pytest.fixture
def seeded_cluster() -> ShardedCluster:
    return build_seeded_cluster()


@pytest.fixture
def cluster_factory():
    """The builder itself, for tests that need custom sizing."""
    return build_seeded_cluster
