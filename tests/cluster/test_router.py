"""Tests for query → shard targeting, incl. the lex-range/box check."""

import datetime as dt
import itertools

import pytest

from repro.cluster.catalog import CollectionMetadata
from repro.cluster.chunk import Chunk, ShardKeyPattern
from repro.cluster.router import (
    lex_range_intersects_box,
    shard_key_intervals,
    target_chunks,
)
from repro.docstore import bson
from repro.docstore.planner import Interval, analyze_query

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def iv(lo, hi):
    return Interval(bson.sort_key(lo), bson.sort_key(hi))


def key1(v):
    return (bson.sort_key(v),)


def key2(a, b):
    return (bson.sort_key(a), bson.sort_key(b))


class TestLexIntersect1D:
    def test_inside(self):
        assert lex_range_intersects_box([[iv(5, 7)]], key1(0), key1(10))

    def test_disjoint_below(self):
        assert not lex_range_intersects_box([[iv(5, 7)]], key1(8), key1(10))

    def test_disjoint_above(self):
        assert not lex_range_intersects_box([[iv(5, 7)]], key1(0), key1(5))

    def test_touching_lower_bound_inclusive(self):
        # Chunk [5, 10): value 5 is inside.
        assert lex_range_intersects_box([[iv(5, 5)]], key1(5), key1(10))

    def test_touching_upper_bound_exclusive(self):
        # Chunk [0, 5): value 5 is NOT inside.
        assert not lex_range_intersects_box([[iv(5, 5)]], key1(0), key1(5))

    def test_multiple_intervals(self):
        box = [[iv(1, 2), iv(8, 9)]]
        assert lex_range_intersects_box(box, key1(7), key1(10))
        assert not lex_range_intersects_box(box, key1(3), key1(7))


class TestLexIntersect2D:
    def test_interior_first_field_frees_second(self):
        # Chunk [(5, T0), (7, T0)): any key with first field 6 is inside
        # regardless of the second.
        lo = key2(5, T0)
        hi = key2(7, T0)
        box = [[iv(6, 6)], [iv(T0 + dt.timedelta(days=50), T0 + dt.timedelta(days=60))]]
        assert lex_range_intersects_box(box, lo, hi)

    def test_boundary_first_field_consults_second(self):
        # Chunk [(5, T0+10d), (6, MINKEY)): first field pinned to 5, so
        # the date bound matters.
        lo = key2(5, T0 + dt.timedelta(days=10))
        hi = (bson.sort_key(6), bson.sort_key(bson.MINKEY))
        inside = [[iv(5, 5)], [iv(T0 + dt.timedelta(days=20), T0 + dt.timedelta(days=30))]]
        outside = [[iv(5, 5)], [iv(T0, T0 + dt.timedelta(days=5))]]
        assert lex_range_intersects_box(inside, lo, hi)
        assert not lex_range_intersects_box(outside, lo, hi)

    def test_exhaustive_against_oracle(self):
        # Small discrete universe: keys (a, b) with a, b in 0..3.
        # Compare the checker against brute-force enumeration.
        universe = [key2(a, b) for a in range(4) for b in range(4)]
        bounds = [key2(a, b) for a in range(4) for b in range(4)]
        intervals_choices = [
            [[iv(1, 2)], [iv(0, 3)]],
            [[iv(0, 0)], [iv(2, 3)]],
            [[iv(2, 3), iv(0, 0)], [iv(1, 1)]],
            [[iv(0, 3)], [iv(0, 0)]],
        ]
        for lo, hi in itertools.combinations(bounds, 2):
            for intervals in intervals_choices:
                truth = any(
                    lo <= k < hi
                    and any(
                        i.lo <= k[0] <= i.hi for i in intervals[0]
                    )
                    and any(i.lo <= k[1] <= i.hi for i in intervals[1])
                    for k in universe
                )
                got = lex_range_intersects_box(intervals, lo, hi)
                # The checker is exact-or-conservative: it may say True
                # for an empty discrete gap, never False for a hit.
                if truth:
                    assert got, (lo, hi, intervals)


def build_metadata():
    pattern = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
    meta = CollectionMetadata(
        name="t", pattern=pattern, strategy="range", chunk_max_bytes=1024
    )
    boundaries = [
        (bson.sort_key(h), bson.sort_key(bson.MINKEY)) for h in (10, 20, 30)
    ]
    edges = [pattern.global_min()] + boundaries + [pattern.global_max()]
    for i, (lo, hi) in enumerate(zip(edges, edges[1:])):
        meta.chunks.append(
            Chunk(min_key=lo, max_key=hi, shard_id="shard%02d" % i)
        )
    return meta


class TestShardKeyIntervals:
    def test_range_on_first_field(self):
        meta = build_metadata()
        shape = analyze_query({"h": {"$gte": 5, "$lte": 15}})
        intervals = shard_key_intervals(meta.pattern, shape)
        assert intervals is not None
        assert len(intervals) == 2
        assert intervals[1][0].is_full  # date unconstrained → full

    def test_unconstrained_first_field_broadcasts(self):
        meta = build_metadata()
        shape = analyze_query({"date": {"$gte": T0}})
        assert shard_key_intervals(meta.pattern, shape) is None

    def test_or_intervals_carried(self):
        meta = build_metadata()
        shape = analyze_query(
            {"$or": [{"h": {"$gte": 1, "$lte": 2}}, {"h": {"$gte": 25, "$lte": 26}}]}
        )
        intervals = shard_key_intervals(meta.pattern, shape)
        assert len(intervals[0]) == 2

    def test_hashed_eq_targetable(self):
        pattern = ShardKeyPattern.from_spec([("v", "hashed")])
        shape = analyze_query({"v": 7})
        intervals = shard_key_intervals(pattern, shape)
        assert intervals is not None
        assert intervals[0][0].is_point

    def test_hashed_range_broadcasts(self):
        pattern = ShardKeyPattern.from_spec([("v", "hashed")])
        shape = analyze_query({"v": {"$gte": 1, "$lte": 5}})
        assert shard_key_intervals(pattern, shape) is None


class TestTargetChunks:
    def test_targeted(self):
        meta = build_metadata()
        shape = analyze_query({"h": {"$gte": 12, "$lte": 13}})
        t = target_chunks(meta, shape)
        assert not t.broadcast
        assert t.shard_ids == ["shard01"]

    def test_spanning_ranges(self):
        meta = build_metadata()
        shape = analyze_query({"h": {"$gte": 5, "$lte": 25}})
        t = target_chunks(meta, shape)
        assert t.shard_ids == ["shard00", "shard01", "shard02"]

    def test_broadcast(self):
        meta = build_metadata()
        shape = analyze_query({"other": 1})
        t = target_chunks(meta, shape)
        assert t.broadcast
        assert len(t.chunks) == 4

    def test_or_targets_union(self):
        meta = build_metadata()
        shape = analyze_query(
            {"$or": [{"h": {"$gte": 1, "$lte": 2}}, {"h": {"$gte": 35, "$lte": 36}}]}
        )
        t = target_chunks(meta, shape)
        assert t.shard_ids == ["shard00", "shard03"]
