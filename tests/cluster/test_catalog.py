"""Tests for the config catalog and chunk map surgery."""

import pytest

from repro.cluster.catalog import CollectionMetadata, ConfigCatalog
from repro.cluster.chunk import Chunk, ShardKeyPattern
from repro.docstore import bson
from repro.errors import ShardingError


def make_metadata(boundaries=(10, 20, 30)):
    """A metadata with chunks split at the given h values."""
    pattern = ShardKeyPattern.from_spec([("h", 1)])
    meta = CollectionMetadata(
        name="t", pattern=pattern, strategy="range", chunk_max_bytes=1024
    )
    edges = (
        [pattern.global_min()]
        + [(bson.sort_key(b),) for b in boundaries]
        + [pattern.global_max()]
    )
    shards = ["shard%02d" % (i % 3) for i in range(len(edges) - 1)]
    for lo, hi, shard in zip(edges, edges[1:], shards):
        meta.chunks.append(Chunk(min_key=lo, max_key=hi, shard_id=shard))
    return meta, pattern


class TestLookup:
    def test_chunk_for_key(self):
        meta, pattern = make_metadata()
        key = pattern.extract_canonical({"h": 15})
        chunk = meta.chunk_for_key(key)
        assert chunk.contains(key)

    def test_extremes_covered(self):
        meta, pattern = make_metadata()
        for h in (-(10**9), 0, 10**9):
            key = pattern.extract_canonical({"h": h})
            assert meta.chunk_for_key(key).contains(key)

    def test_boundary_key_goes_right(self):
        meta, pattern = make_metadata()
        key = pattern.extract_canonical({"h": 20})
        chunk = meta.chunk_for_key(key)
        assert chunk.min_key == key


class TestSplit:
    def test_split_preserves_tiling(self):
        meta, pattern = make_metadata()
        chunk = meta.chunk_for_key(pattern.extract_canonical({"h": 15}))
        split_key = pattern.extract_canonical({"h": 15})
        left, right = meta.split_chunk(chunk, split_key)
        assert left.max_key == right.min_key == split_key
        meta.validate()

    def test_split_keeps_shard(self):
        meta, pattern = make_metadata()
        chunk = meta.chunk_for_key(pattern.extract_canonical({"h": 15}))
        owner = chunk.shard_id
        left, right = meta.split_chunk(
            chunk, pattern.extract_canonical({"h": 15})
        )
        assert left.shard_id == right.shard_id == owner

    def test_split_outside_range_rejected(self):
        meta, pattern = make_metadata()
        chunk = meta.chunk_for_key(pattern.extract_canonical({"h": 15}))
        with pytest.raises(ShardingError):
            meta.split_chunk(chunk, pattern.extract_canonical({"h": 25}))

    def test_split_at_min_rejected(self):
        meta, pattern = make_metadata()
        chunk = meta.chunk_for_key(pattern.extract_canonical({"h": 15}))
        with pytest.raises(ShardingError):
            meta.split_chunk(chunk, chunk.min_key)

    def test_mark_jumbo(self):
        meta, pattern = make_metadata()
        chunk = meta.chunks[0]
        meta.mark_jumbo(chunk)
        assert chunk.jumbo


class TestViews:
    def test_chunk_counts(self):
        meta, _ = make_metadata()
        counts = meta.chunk_counts()
        assert sum(counts.values()) == 4

    def test_chunks_on_shard(self):
        meta, _ = make_metadata()
        assert len(meta.chunks_on_shard("shard00")) == 2

    def test_shards_used_sorted(self):
        meta, _ = make_metadata()
        assert meta.shards_used() == ["shard00", "shard01", "shard02"]

    def test_validate_detects_gap(self):
        meta, _ = make_metadata()
        del meta.chunks[1]
        with pytest.raises(ShardingError):
            meta.validate()

    def test_strategy_validated(self):
        pattern = ShardKeyPattern.from_spec([("h", 1)])
        with pytest.raises(ShardingError):
            CollectionMetadata(
                name="t", pattern=pattern, strategy="weird", chunk_max_bytes=1
            )


class TestConfigCatalog:
    def test_add_and_get(self):
        catalog = ConfigCatalog()
        meta, _ = make_metadata()
        catalog.add_collection(meta)
        assert catalog.get("t") is meta
        assert "t" in catalog
        assert catalog.list_collections() == ["t"]

    def test_duplicate_rejected(self):
        catalog = ConfigCatalog()
        meta, _ = make_metadata()
        catalog.add_collection(meta)
        with pytest.raises(ShardingError):
            catalog.add_collection(meta)

    def test_missing_rejected(self):
        with pytest.raises(ShardingError):
            ConfigCatalog().get("nope")
