"""Integration tests for the sharded cluster."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.cluster.zones import Zone
from repro.docstore import bson
from repro.docstore.matcher import matches
from repro.errors import ShardingError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def make_cluster(n_shards=4, chunk_max_bytes=4 * 1024):
    return ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=chunk_max_bytes,
    )


def load_docs(cluster, n=600, shard_key=(("h", 1),)):
    cluster.shard_collection("t", list(shard_key))
    rng = random.Random(5)
    docs = []
    for i in range(n):
        docs.append(
            {
                "_id": i,
                "h": rng.randrange(0, 1000),
                "date": T0 + dt.timedelta(hours=rng.uniform(0, 2000)),
                "pad": "x" * 64,
            }
        )
    cluster.insert_many("t", docs)
    return docs


class TestTopology:
    def test_defaults_match_paper(self):
        t = ClusterTopology()
        assert (t.n_shards, t.n_config_servers, t.n_routers) == (12, 3, 2)

    def test_rejects_invalid(self):
        with pytest.raises(ShardingError):
            ClusterTopology(n_shards=0)
        with pytest.raises(ShardingError):
            ClusterTopology(n_routers=0)


class TestShardCollection:
    def test_initial_single_chunk(self):
        cluster = make_cluster()
        meta = cluster.shard_collection("t", [("h", 1)])
        assert len(meta.chunks) == 1
        meta.validate()

    def test_shard_key_index_created_everywhere(self):
        cluster = make_cluster()
        cluster.shard_collection("t", [("h", 1), ("date", 1)])
        for shard in cluster.shards.values():
            assert "shardkey_h_date" in shard.collection("t").list_indexes()

    def test_double_sharding_rejected(self):
        cluster = make_cluster()
        cluster.shard_collection("t", [("h", 1)])
        with pytest.raises(ShardingError):
            cluster.shard_collection("t", [("h", 1)])


class TestInsertSplitBalance:
    def test_chunks_split_as_data_grows(self):
        cluster = make_cluster()
        load_docs(cluster)
        meta = cluster.catalog.get("t")
        assert len(meta.chunks) > 4
        meta.validate()
        cluster.validate("t")

    def test_all_documents_stored_exactly_once(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        total = sum(
            len(s.collection("t")) for s in cluster.shards.values()
        )
        assert total == len(docs)

    def test_balancer_evens_chunk_counts(self):
        cluster = make_cluster()
        load_docs(cluster)
        cluster.run_balancer("t")
        counts = cluster.chunk_distribution("t")
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_auto_balance_spreads_during_load(self):
        cluster = make_cluster()
        load_docs(cluster)
        counts = cluster.chunk_distribution("t")
        assert len(counts) == 4  # every shard received chunks

    def test_jumbo_chunk_detected(self):
        # All documents share one full shard-key value: unsplittable.
        cluster = make_cluster(chunk_max_bytes=512)
        cluster.shard_collection("t", [("h", 1)])
        cluster.insert_many(
            "t", [{"_id": i, "h": 7, "pad": "x" * 64} for i in range(100)]
        )
        meta = cluster.catalog.get("t")
        assert any(c.jumbo for c in meta.chunks)

    def test_compound_key_splits_on_second_field(self):
        # The paper's Section 4.2.2: one hot Hilbert cell splits on date.
        cluster = make_cluster(chunk_max_bytes=2 * 1024)
        cluster.shard_collection("t", [("h", 1), ("date", 1)])
        cluster.insert_many(
            "t",
            [
                {
                    "_id": i,
                    "h": 7,
                    "date": T0 + dt.timedelta(minutes=i),
                    "pad": "x" * 64,
                }
                for i in range(300)
            ],
        )
        meta = cluster.catalog.get("t")
        assert len(meta.chunks) > 1
        assert not any(c.jumbo for c in meta.chunks)
        cluster.validate("t")


class TestFind:
    def test_agrees_with_brute_force(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        q = {"h": {"$gte": 100, "$lte": 400}}
        result = cluster.find("t", q)
        expected = [d for d in docs if matches(q, d)]
        assert len(result) == len(expected)
        assert not result.stats.broadcast

    def test_broadcast_on_non_shard_key(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        q = {"date": {"$gte": T0, "$lte": T0 + dt.timedelta(hours=500)}}
        result = cluster.find("t", q)
        expected = [d for d in docs if matches(q, d)]
        assert len(result) == len(expected)
        assert result.stats.broadcast

    def test_targeted_uses_fewer_nodes(self):
        cluster = make_cluster()
        load_docs(cluster)
        cluster.run_balancer("t")
        narrow = cluster.find("t", {"h": {"$gte": 10, "$lte": 20}})
        assert narrow.stats.nodes < len(cluster.shards)

    def test_execution_time_positive(self):
        cluster = make_cluster()
        load_docs(cluster)
        result = cluster.find("t", {"h": {"$gte": 0, "$lte": 999}})
        assert result.stats.execution_time_ms > 0

    def test_stats_dict(self):
        cluster = make_cluster()
        load_docs(cluster)
        result = cluster.find("t", {"h": {"$gte": 0, "$lte": 10}})
        d = result.stats.as_dict()
        assert "nodes" in d and "maxKeysExamined" in d


class TestMigrationsAndZones:
    def _zones(self, cluster):
        pattern = cluster.catalog.get("t").pattern
        gmin, gmax = pattern.global_min(), pattern.global_max()
        mid = (bson.sort_key(500),)
        return [
            Zone("low", gmin, mid, "shard00"),
            Zone("high", mid, gmax, "shard01"),
        ]

    def test_update_zones_moves_data(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        cluster.update_zones("t", self._zones(cluster))
        meta = cluster.catalog.get("t")
        for chunk in meta.chunks:
            zone = meta.zone_set.zone_for_range(chunk.min_key, chunk.max_key)
            assert zone is not None
            assert chunk.shard_id == zone.shard_id
        cluster.validate("t")
        # No data lost.
        total = sum(len(s.collection("t")) for s in cluster.shards.values())
        assert total == len(docs)

    def test_zones_improve_targeting_locality(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        cluster.run_balancer("t")
        before = cluster.find("t", {"h": {"$gte": 0, "$lte": 450}})
        cluster.update_zones("t", self._zones(cluster))
        after = cluster.find("t", {"h": {"$gte": 0, "$lte": 450}})
        assert len(after) == len(before)
        assert after.stats.nodes <= before.stats.nodes
        assert after.stats.nodes == 1  # all low-h data on shard00

    def test_zone_unknown_shard_rejected(self):
        cluster = make_cluster()
        load_docs(cluster)
        pattern = cluster.catalog.get("t").pattern
        bad = [
            Zone(
                "z",
                pattern.global_min(),
                pattern.global_max(),
                "shard99",
            )
        ]
        with pytest.raises(ShardingError):
            cluster.update_zones("t", bad)

    def test_queries_correct_after_zones(self):
        cluster = make_cluster()
        docs = load_docs(cluster)
        cluster.update_zones("t", self._zones(cluster))
        q = {"h": {"$gte": 250, "$lte": 750}}
        result = cluster.find("t", q)
        expected = [d for d in docs if matches(q, d)]
        assert len(result) == len(expected)


class TestAggregateAndTotals:
    def test_cluster_aggregate(self):
        cluster = make_cluster()
        load_docs(cluster, n=100)
        out = cluster.aggregate("t", [{"$count": "n"}])
        assert out == [{"n": 100}]

    def test_bucket_auto_across_shards(self):
        cluster = make_cluster()
        load_docs(cluster, n=200)
        out = cluster.aggregate(
            "t", [{"$bucketAuto": {"groupBy": "$h", "buckets": 4}}]
        )
        assert sum(b["count"] for b in out) == 200

    def test_collection_totals(self):
        cluster = make_cluster()
        load_docs(cluster, n=50)
        totals = cluster.collection_totals("t")
        assert totals["count"] == 50
        assert totals["dataSize"] > 0
        assert totals["totalIndexSize"] > 0
