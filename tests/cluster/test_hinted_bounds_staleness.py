"""Staleness audit for the router's shared hinted plan bounds.

``ShardedCluster.find`` builds hinted index bounds once against the
first targeted shard and ships them to every other shard
(``plan_bounds``) — the CC006 sharing shape the cache-coherence pass
notes.  The sharing is safe only because of two properties these tests
pin: :meth:`Collection.hinted_bounds` holds no memo (every call
recomputes from the live index set), and the receiving shard's
``hint in self._indexes`` guard drops bounds whose index no longer
exists rather than scanning with them.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.cluster.zones import Zone
from repro.docstore import bson
from repro.docstore.planner import analyze_query
from repro.errors import PlanError


def build_cluster(n_shards: int = 2) -> ShardedCluster:
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=2 * 1024,
    )
    cluster.shard_collection("t", [("k", 1)])
    cluster.insert_many(
        "t",
        [
            {"_id": i, "k": (i * 37) % 1000, "v": i % 7, "pad": "x" * 64}
            for i in range(400)
        ],
    )
    cluster.create_index("t", [("v", 1)], name="v_idx")
    return cluster


class TestNoMemo:
    """hinted_bounds recomputes from the live index set on every call."""

    def test_bounds_disappear_with_the_index(self):
        cluster = build_cluster()
        shard = next(iter(cluster.shards.values()))
        col = shard.collection("t")
        shape = analyze_query({"v": 3})
        assert col.hinted_bounds("v_idx", shape) is not None
        col.drop_index("v_idx")
        assert col.hinted_bounds("v_idx", shape) is None

    def test_bounds_follow_a_redefined_index(self):
        """Drop + recreate under the same name: fresh definition wins."""
        cluster = build_cluster()
        shard = next(iter(cluster.shards.values()))
        col = shard.collection("t")
        shape = analyze_query({"v": 3, "k": 5})
        before = col.hinted_bounds("v_idx", shape)
        col.drop_index("v_idx")
        col.create_index([("v", 1), ("k", 1)], name="v_idx")
        after = col.hinted_bounds("v_idx", shape)
        assert before is not None and after is not None
        # The compound redefinition bounds one more field.
        assert after[1] == before[1] + 1

    def test_unknown_hint_returns_none(self):
        cluster = build_cluster()
        shard = next(iter(cluster.shards.values()))
        col = shard.collection("t")
        assert col.hinted_bounds("nope", analyze_query({"v": 3})) is None


class TestRouterSharing:
    """The shared bounds stay correct across metadata mutations."""

    def test_hinted_find_agrees_with_unhinted_across_a_zone_split(self):
        cluster = build_cluster()
        query = {"v": 2}
        expected = sorted(
            d["_id"] for d in cluster.find("t", query)
        )
        hinted = cluster.find("t", query, hint="v_idx")
        assert sorted(d["_id"] for d in hinted) == expected
        pattern = cluster.catalog.get("t").pattern
        mid = (bson.sort_key(500),)
        low, high = sorted(cluster.shards)
        cluster.update_zones(
            "t",
            [
                Zone("low", pattern.global_min(), mid, low),
                Zone("high", mid, pattern.global_max(), high),
            ],
        )
        hinted_after = cluster.find("t", query, hint="v_idx")
        assert sorted(d["_id"] for d in hinted_after) == expected

    def test_dropped_hint_fails_loud_not_stale(self):
        """After DDL the hint raises; no shard scans with dead bounds."""
        cluster = build_cluster()
        cluster.find("t", {"v": 2}, hint="v_idx")
        cluster.drop_index("t", "v_idx")
        with pytest.raises(PlanError):
            cluster.find("t", {"v": 2}, hint="v_idx")

    def test_stale_plan_bounds_are_dropped_by_the_index_guard(self):
        """A shard handed bounds for a dead index must not use them.

        This drives the ``hint in self._indexes`` guard directly: the
        bounds were computed while the index existed, the index is
        gone, and the only acceptable outcome is the planner's loud
        PlanError — never an executed scan over a dropped index.
        """
        cluster = build_cluster()
        shard = next(iter(cluster.shards.values()))
        col = shard.collection("t")
        shape = analyze_query({"v": 3})
        stale_bounds = col.hinted_bounds("v_idx", shape)
        assert stale_bounds is not None
        col.drop_index("v_idx")
        with pytest.raises(PlanError):
            col.find_with_stats(
                {"v": 3}, hint="v_idx", plan_bounds=stale_bounds
            )
