"""Failure-path tests: misuse and corrupted-state detection."""

import datetime as dt

import pytest

from repro.cluster.chunk import Chunk
from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.errors import ShardingError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def make_cluster():
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=2), chunk_max_bytes=4 * 1024
    )
    cluster.shard_collection("t", [("h", 1)])
    return cluster


class TestMisuse:
    def test_query_unsharded_collection(self):
        cluster = make_cluster()
        with pytest.raises(ShardingError):
            cluster.find("nope", {"h": 1})

    def test_insert_unsharded_collection(self):
        cluster = make_cluster()
        with pytest.raises(ShardingError):
            cluster.insert_many("nope", [{"h": 1}])

    def test_migrate_to_unknown_shard(self):
        cluster = make_cluster()
        cluster.insert_many("t", [{"_id": 1, "h": 1}])
        meta = cluster.catalog.get("t")
        with pytest.raises(ShardingError):
            cluster._migrate_chunk(meta, meta.chunks[0], "shard99")

    def test_migrate_to_self_is_noop(self):
        cluster = make_cluster()
        cluster.insert_many("t", [{"_id": 1, "h": 1}])
        meta = cluster.catalog.get("t")
        owner = meta.chunks[0].shard_id
        cluster._migrate_chunk(meta, meta.chunks[0], owner)
        assert meta.chunks[0].shard_id == owner
        cluster.validate("t")

    def test_document_missing_shard_key_field_routes_as_null(self):
        # MongoDB routes missing shard-key values under null.
        cluster = make_cluster()
        cluster.insert_many("t", [{"_id": 1}])
        assert cluster.collection_totals("t")["count"] == 1


class TestCorruptionDetection:
    def test_validate_detects_count_drift(self):
        cluster = make_cluster()
        cluster.insert_many(
            "t", [{"_id": i, "h": i, "pad": "x" * 40} for i in range(50)]
        )
        meta = cluster.catalog.get("t")
        meta.chunks[0].doc_count += 5  # simulate bookkeeping corruption
        with pytest.raises(ShardingError):
            cluster.validate("t")

    def test_validate_detects_chunk_gap(self):
        cluster = make_cluster()
        cluster.insert_many(
            "t", [{"_id": i, "h": i, "pad": "x" * 40} for i in range(200)]
        )
        meta = cluster.catalog.get("t")
        if len(meta.chunks) > 1:
            del meta.chunks[0]
            with pytest.raises(ShardingError):
                cluster.validate("t")

    def test_chunk_rejects_inverted_range(self):
        from repro.docstore import bson

        with pytest.raises(ShardingError):
            Chunk(
                min_key=(bson.sort_key(5),),
                max_key=(bson.sort_key(5),),
                shard_id="s",
            )


class TestBalancerResilience:
    def test_balancer_idempotent(self):
        cluster = make_cluster()
        cluster.insert_many(
            "t", [{"_id": i, "h": i, "pad": "x" * 50} for i in range(300)]
        )
        first = cluster.run_balancer("t")
        second = cluster.run_balancer("t")
        assert second == 0 or second < first
        cluster.validate("t")

    def test_rebalancing_after_manual_migration(self):
        cluster = make_cluster()
        cluster.insert_many(
            "t", [{"_id": i, "h": i, "pad": "x" * 50} for i in range(300)]
        )
        cluster.run_balancer("t")
        meta = cluster.catalog.get("t")
        # Pile everything onto shard00, then rebalance.
        for chunk in list(meta.chunks):
            cluster._migrate_chunk(meta, chunk, "shard00")
        cluster.run_balancer("t")
        counts = cluster.chunk_distribution("t")
        assert max(counts.values()) - min(counts.values()) <= 1
        cluster.validate("t")
