"""Tests for collection and cluster snapshots."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.cluster.snapshot import (
    cluster_from_snapshot,
    cluster_to_snapshot,
    dump_cluster,
    load_cluster,
)
from repro.docstore.bson import MAXKEY, MINKEY, ObjectId
from repro.docstore.collection import Collection
from repro.docstore.snapshot import (
    collection_from_snapshot,
    collection_to_snapshot,
    dump_collection,
    load_collection,
    value_from_jsonable,
    value_to_jsonable,
)

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            42,
            3.14,
            "text",
            True,
            None,
            [1, 2, [3]],
            {"a": {"b": 1}},
            ObjectId(timestamp=1000, random_bytes=b"abcde", counter=5),
            dt.datetime(2018, 8, 1, 12, 30, tzinfo=UTC),
            b"\x00\x01\xff",
            MINKEY,
            MAXKEY,
            (1, "two", 3.0),
        ],
    )
    def test_roundtrip(self, value):
        assert value_from_jsonable(value_to_jsonable(value)) == value

    def test_json_serializable(self):
        import json

        doc = {
            "_id": ObjectId(timestamp=0, random_bytes=b"abcde", counter=1),
            "date": T0,
            "nested": {"blob": b"xy"},
        }
        text = json.dumps(value_to_jsonable(doc))
        assert value_from_jsonable(json.loads(text)) == doc


class TestCollectionSnapshot:
    def _collection(self):
        col = Collection("traces")
        col.create_index([("location", "2dsphere"), ("date", 1)], name="ld")
        col.create_index([("v", 1)], name="v_1")
        rng = random.Random(4)
        col.insert_many(
            {
                "v": i,
                "location": {
                    "type": "Point",
                    "coordinates": [rng.uniform(23, 24), rng.uniform(37, 38)],
                },
                "date": T0 + dt.timedelta(hours=i),
            }
            for i in range(50)
        )
        return col

    def test_roundtrip_documents_and_indexes(self):
        col = self._collection()
        restored = collection_from_snapshot(collection_to_snapshot(col))
        assert len(restored) == 50
        assert set(restored.list_indexes()) == set(col.list_indexes())

    def test_restored_queries_identical(self):
        col = self._collection()
        restored = collection_from_snapshot(collection_to_snapshot(col))
        q = {"v": {"$gte": 10, "$lte": 20}}
        a = col.find_with_stats(q, hint="v_1")
        b = restored.find_with_stats(q, hint="v_1")
        assert len(a) == len(b)
        assert a.stats.keys_examined == b.stats.keys_examined

    def test_file_roundtrip(self, tmp_path):
        col = self._collection()
        path = str(tmp_path / "col.json")
        dump_collection(col, path)
        restored = load_collection(path)
        assert len(restored) == 50


class TestClusterSnapshot:
    def _cluster(self, with_zones=False):
        cluster = ShardedCluster(
            topology=ClusterTopology(n_shards=3), chunk_max_bytes=4 * 1024
        )
        cluster.shard_collection("t", [("h", 1), ("date", 1)])
        rng = random.Random(9)
        cluster.insert_many(
            "t",
            [
                {
                    "_id": i,
                    "h": rng.randrange(0, 500),
                    "date": T0 + dt.timedelta(hours=i),
                    "pad": "x" * 40,
                }
                for i in range(300)
            ],
        )
        cluster.run_balancer("t")
        if with_zones:
            from repro.core.zoning import configure_zones

            configure_zones(cluster, "t", "h")
        return cluster

    def test_roundtrip_preserves_metrics(self):
        cluster = self._cluster()
        restored = cluster_from_snapshot(cluster_to_snapshot(cluster))
        q = {"h": {"$gte": 100, "$lte": 300}}
        a = cluster.find("t", q)
        b = restored.find("t", q)
        assert len(a) == len(b)
        assert a.stats.nodes == b.stats.nodes
        assert a.stats.max_keys_examined == b.stats.max_keys_examined
        assert sorted(a.stats.per_shard) == sorted(b.stats.per_shard)

    def test_roundtrip_chunk_map(self):
        cluster = self._cluster()
        restored = cluster_from_snapshot(cluster_to_snapshot(cluster))
        original = cluster.catalog.get("t")
        rebuilt = restored.catalog.get("t")
        assert len(original.chunks) == len(rebuilt.chunks)
        assert original.chunk_counts() == rebuilt.chunk_counts()
        restored.validate("t")

    def test_roundtrip_zones(self):
        cluster = self._cluster(with_zones=True)
        restored = cluster_from_snapshot(cluster_to_snapshot(cluster))
        assert restored.catalog.get("t").zone_set is not None
        assert len(restored.catalog.get("t").zone_set) == len(
            cluster.catalog.get("t").zone_set
        )
        restored.validate("t")

    def test_restored_cluster_accepts_writes(self):
        cluster = self._cluster()
        restored = cluster_from_snapshot(cluster_to_snapshot(cluster))
        restored.insert_many(
            "t",
            [{"_id": 9999, "h": 123, "date": T0, "pad": "x" * 40}],
        )
        assert len(restored.find("t", {"h": 123})) >= 1
        restored.validate("t")

    def test_file_roundtrip(self, tmp_path):
        cluster = self._cluster()
        path = str(tmp_path / "cluster.json")
        dump_cluster(cluster, path)
        restored = load_cluster(path)
        assert restored.collection_totals("t")["count"] == 300
