"""Router targeting edge cases, end-to-end through the cluster.

Exercises :meth:`ShardedCluster.targeting_for` — the hook the query
service uses to pick read locks before fanning out — on the corners
that matter for correctness: contradictory (empty) shard-key
intervals, ``$or`` shapes that force a broadcast, and hashed-shard-key
equality targeting.  Shard sets and the ``broadcast`` flag are
asserted exactly.
"""

import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.docstore import bson
from repro.docstore.index import hashed_value


def _range_cluster() -> ShardedCluster:
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=4), chunk_max_bytes=2 * 1024
    )
    cluster.shard_collection("t", [("k", 1)])
    rng = random.Random(3)
    cluster.insert_many(
        "t",
        [
            {"_id": i, "k": rng.randrange(0, 10_000), "pad": "x" * 64}
            for i in range(400)
        ],
    )
    return cluster


def _hashed_cluster() -> ShardedCluster:
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=4), chunk_max_bytes=2 * 1024
    )
    cluster.shard_collection("v", [("vid", "hashed")])
    cluster.insert_many(
        "v",
        [{"_id": i, "vid": i % 20, "pad": "x" * 64} for i in range(400)],
    )
    return cluster


@pytest.fixture(scope="module")
def range_cluster():
    return _range_cluster()


@pytest.fixture(scope="module")
def hashed_cluster():
    return _hashed_cluster()


class TestEmptyIntervals:
    def test_contradictory_range_targets_no_shards(self, range_cluster):
        # k > 5 AND k < 3 is unsatisfiable: a *targeted* operation that
        # visits zero chunks, not a broadcast.
        t = range_cluster.targeting_for("t", {"k": {"$gt": 5, "$lt": 3}})
        assert t.broadcast is False
        assert t.shard_ids == []
        assert t.chunks == []

    def test_contradictory_range_returns_nothing(self, range_cluster):
        result = range_cluster.find("t", {"k": {"$gt": 5, "$lt": 3}})
        assert result.documents == []
        assert result.stats.nodes == 0

    def test_empty_in_list_is_conservatively_broadcast(self, range_cluster):
        # `$in: []` matches nothing, but the planner records it as a
        # non-constraining predicate, so the router falls back to a
        # broadcast — conservative (extra shards contacted) yet
        # correct: no shard returns a document.
        t = range_cluster.targeting_for("t", {"k": {"$in": []}})
        assert t.broadcast is True
        assert range_cluster.find("t", {"k": {"$in": []}}).documents == []


class TestOrBroadcast:
    def test_or_across_paths_broadcasts_to_all(self, range_cluster):
        # One branch does not constrain the shard key, so every shard
        # holding a chunk must participate.
        metadata = range_cluster.catalog.get("t")
        t = range_cluster.targeting_for(
            "t", {"$or": [{"k": {"$lt": 100}}, {"pad": "y"}]}
        )
        assert t.broadcast is True
        assert t.shard_ids == metadata.shards_used()
        assert len(t.chunks) == len(metadata.chunks)

    def test_non_key_query_broadcasts(self, range_cluster):
        metadata = range_cluster.catalog.get("t")
        t = range_cluster.targeting_for("t", {"pad": "y"})
        assert t.broadcast is True
        assert t.shard_ids == metadata.shards_used()

    def test_or_of_shard_key_ranges_stays_targeted(self, range_cluster):
        # Every branch constrains `k`: the union of the branch ranges
        # routes the query, no broadcast.
        t = range_cluster.targeting_for(
            "t",
            {
                "$or": [
                    {"k": {"$gte": 0, "$lt": 50}},
                    {"k": {"$gte": 9000, "$lt": 9050}},
                ]
            },
        )
        metadata = range_cluster.catalog.get("t")
        assert t.broadcast is False
        assert 0 < len(t.shard_ids) < len(metadata.shards_used()) + 1
        # The targeted set must be exactly the chunk owners of the
        # two ranges.
        expected = sorted(
            {
                c.shard_id
                for c in metadata.chunks
                for lo, hi in ((0, 50), (9000, 9050))
                if c.min_key < (bson.sort_key(hi),)
                and c.max_key > (bson.sort_key(lo),)
            }
        )
        assert t.shard_ids == expected


class TestHashedTargeting:
    def test_equality_targets_single_owner_chunk(self, hashed_cluster):
        metadata = hashed_cluster.catalog.get("v")
        t = hashed_cluster.targeting_for("v", {"vid": 7})
        assert t.broadcast is False
        key = (bson.sort_key(hashed_value(7)),)
        expected = sorted(
            {
                c.shard_id
                for c in metadata.chunks
                if c.min_key <= key < c.max_key
            }
        )
        assert t.shard_ids == expected
        assert len(t.shard_ids) == 1

    def test_equality_results_match_broadcast_scan(self, hashed_cluster):
        targeted = hashed_cluster.find("v", {"vid": 7})
        by_scan = hashed_cluster.find("v", {"pad": "x" * 64})
        expected = sorted(
            d["_id"] for d in by_scan.documents if d["vid"] == 7
        )
        assert sorted(d["_id"] for d in targeted.documents) == expected

    def test_in_list_targets_union_of_owners(self, hashed_cluster):
        metadata = hashed_cluster.catalog.get("v")
        t = hashed_cluster.targeting_for("v", {"vid": {"$in": [3, 9]}})
        assert t.broadcast is False
        expected = sorted(
            {
                c.shard_id
                for c in metadata.chunks
                for v in (3, 9)
                if c.min_key
                <= (bson.sort_key(hashed_value(v)),)
                < c.max_key
            }
        )
        assert t.shard_ids == expected

    def test_range_on_hashed_key_broadcasts(self, hashed_cluster):
        # Ranges are meaningless under the hash: mongos must broadcast.
        metadata = hashed_cluster.catalog.get("v")
        t = hashed_cluster.targeting_for("v", {"vid": {"$gte": 3, "$lt": 9}})
        assert t.broadcast is True
        assert t.shard_ids == metadata.shards_used()
