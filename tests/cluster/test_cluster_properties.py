"""Property-based tests: cluster queries vs a brute-force oracle."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.docstore.matcher import matches

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)

docs_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),  # h
        st.integers(min_value=0, max_value=2000),  # hours offset
    ),
    min_size=1,
    max_size=150,
)


def build_cluster(entries, chunk_max_bytes):
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=4),
        chunk_max_bytes=chunk_max_bytes,
    )
    cluster.shard_collection("t", [("h", 1), ("date", 1)])
    cluster.insert_many(
        "t",
        [
            {
                "_id": i,
                "h": h,
                "date": T0 + dt.timedelta(hours=hours),
                "pad": "x" * 40,
            }
            for i, (h, hours) in enumerate(entries)
        ],
    )
    return cluster


@settings(max_examples=20, deadline=None)
@given(
    entries=docs_strategy,
    h_lo=st.integers(min_value=0, max_value=500),
    h_hi=st.integers(min_value=0, max_value=500),
    chunk_kb=st.sampled_from([1, 4, 16]),
)
def test_cluster_find_matches_oracle(entries, h_lo, h_hi, chunk_kb):
    """Routing + per-shard scans return exactly the matching set, for
    any chunk size (i.e. any chunk map shape)."""
    if h_lo > h_hi:
        h_lo, h_hi = h_hi, h_lo
    cluster = build_cluster(entries, chunk_kb * 1024)
    q = {"h": {"$gte": h_lo, "$lte": h_hi}}
    result = cluster.find("t", q)
    expected = sorted(
        i for i, (h, _hrs) in enumerate(entries) if h_lo <= h <= h_hi
    )
    assert sorted(d["_id"] for d in result) == expected


@settings(max_examples=15, deadline=None)
@given(entries=docs_strategy, chunk_kb=st.sampled_from([1, 4]))
def test_chunk_map_invariants_after_load(entries, chunk_kb):
    """Whatever the insert order/volume, the chunk map tiles the key
    space and the catalog counts match shard contents."""
    cluster = build_cluster(entries, chunk_kb * 1024)
    cluster.run_balancer("t")
    cluster.validate("t")
    total = sum(len(s.collection("t")) for s in cluster.shards.values())
    assert total == len(entries)


@settings(max_examples=10, deadline=None)
@given(
    entries=docs_strategy,
    boundary=st.integers(min_value=1, max_value=499),
)
def test_zones_preserve_results(entries, boundary):
    """Zone installation (splits + migrations) never changes queries."""
    from repro.cluster.zones import Zone
    from repro.docstore import bson

    cluster = build_cluster(entries, 2 * 1024)
    q = {"h": {"$gte": 0, "$lte": 500}}
    before = sorted(d["_id"] for d in cluster.find("t", q))
    pattern = cluster.catalog.get("t").pattern
    mid = (bson.sort_key(boundary), bson.sort_key(bson.MINKEY))
    zones = [
        Zone("low", pattern.global_min(), mid, "shard00"),
        Zone("high", mid, pattern.global_max(), "shard01"),
    ]
    cluster.update_zones("t", zones)
    after = sorted(d["_id"] for d in cluster.find("t", q))
    assert before == after
    cluster.validate("t")
