"""Targeting-cache correctness across routing-metadata changes.

The fast path memoizes routing decisions in
:class:`~repro.cluster.router.TargetingCache`.  Cache keys embed the
cluster's ``metadata_version``, so every chunk split, chunk migration,
zone update, and DDL bump retires all prior entries *implicitly*: a
stale cached decision can never be served because its key can never be
looked up again.  These tests pin that contract by forcing each
metadata mutation and asserting the cached answer retargets — and that
the cached fast path always agrees with the uncached router.
"""

import random

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.cluster.router import (
    TargetingCache,
    shard_key_intervals,
    target_chunks_cached,
    targeting_cache_key,
)
from repro.docstore import bson
from repro.docstore.planner import analyze_query


def build_cluster(n_shards: int = 4) -> ShardedCluster:
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=2 * 1024,
    )
    cluster.shard_collection("t", [("k", 1)])
    rng = random.Random(11)
    cluster.insert_many(
        "t",
        [
            {"_id": i, "k": rng.randrange(0, 10_000), "pad": "x" * 64}
            for i in range(600)
        ],
    )
    return cluster


def cached_targeting(cluster, query):
    return cluster.targeting_for("t", query=query, fast_path=True)


def uncached_targeting(cluster, query):
    return cluster.targeting_for("t", query=query, fast_path=False)


class TestVersionKeyedInvalidation:
    def test_cache_key_embeds_metadata_version(self):
        cluster = build_cluster()
        metadata = cluster.catalog.get("t")
        shape = analyze_query({"k": {"$gte": 10, "$lt": 20}})
        intervals = shard_key_intervals(metadata.pattern, shape)
        k1 = targeting_cache_key("t", 1, intervals)
        k2 = targeting_cache_key("t", 2, intervals)
        assert k1 is not None and k2 is not None and k1 != k2

    def test_split_retargets_cached_query(self):
        cluster = build_cluster()
        query = {"k": {"$gte": 0, "$lte": 9_999}}
        before = cached_targeting(cluster, query)
        version_before = cluster.metadata_version
        # Grow one key range until the router must split its chunk.
        cluster.insert_many(
            "t",
            [
                {"_id": 10_000 + i, "k": 5_000, "pad": "y" * 256}
                for i in range(200)
            ],
        )
        assert cluster.metadata_version > version_before
        after = cached_targeting(cluster, query)
        control = uncached_targeting(cluster, query)
        assert after.shard_ids == control.shard_ids
        assert len(after.chunks) == len(control.chunks)
        # The split made strictly more chunks than the cached answer knew.
        assert len(after.chunks) >= len(before.chunks)

    def test_migration_retargets_cached_query(self):
        cluster = build_cluster()
        metadata = cluster.catalog.get("t")
        chunk = metadata.chunks[0]
        query = {"k": {"$gte": 0, "$lt": 50}}  # lands in the first chunk
        before = cached_targeting(cluster, query)
        assert chunk.shard_id in before.shard_ids
        dest = next(
            s for s in cluster.shards if s != chunk.shard_id
        )
        cluster._migrate_chunk(metadata, chunk, dest)
        after = cached_targeting(cluster, query)
        control = uncached_targeting(cluster, query)
        assert after.shard_ids == control.shard_ids
        assert dest in after.shard_ids
        # Same documents either way, and no stale shard consulted.
        docs_fast = cluster.find("t", query, fast_path=True).documents
        docs_slow = cluster.find("t", query, fast_path=False).documents
        assert docs_fast == docs_slow

    def test_update_zones_retargets_cached_query(self):
        from repro.cluster.zones import Zone

        cluster = build_cluster()
        query = {"k": {"$gte": 0, "$lt": 100}}
        cached_targeting(cluster, query)  # prime the cache
        shards = list(cluster.shards)

        def key(v):
            return (bson.sort_key(v),)

        cluster.update_zones(
            "t",
            [
                Zone("low", key(0), key(5_000), shards[-1]),
                Zone("high", key(5_000), key(10_000), shards[0]),
            ],
        )
        after = cached_targeting(cluster, query)
        control = uncached_targeting(cluster, query)
        assert after.shard_ids == control.shard_ids
        # Zone 'low' pins the queried range to the last shard.
        assert after.shard_ids == [shards[-1]]

    def test_hits_resume_after_invalidation(self):
        cluster = build_cluster()
        query = {"k": {"$gte": 100, "$lt": 200}}
        cached_targeting(cluster, query)
        cached_targeting(cluster, query)
        stats = cluster.targeting_cache.stats()
        assert stats["hits"] >= 1
        cluster._bump_metadata_version()
        cached_targeting(cluster, query)  # miss: version changed
        misses_after_bump = cluster.targeting_cache.stats()["misses"]
        cached_targeting(cluster, query)  # hit again at the new version
        final = cluster.targeting_cache.stats()
        assert final["misses"] == misses_after_bump
        assert final["hits"] >= stats["hits"] + 1


class TestCachedMatchesUncached:
    def test_randomized_ranges_agree(self):
        cluster = build_cluster()
        rng = random.Random(23)
        for _ in range(40):
            lo = rng.randrange(0, 9_000)
            query = {"k": {"$gte": lo, "$lt": lo + rng.randrange(1, 2_000)}}
            fast = cached_targeting(cluster, query)
            slow = uncached_targeting(cluster, query)
            assert fast.shard_ids == slow.shard_ids
            assert fast.broadcast == slow.broadcast

    def test_broadcast_queries_agree(self):
        cluster = build_cluster()
        for query in ({}, {"pad": "x" * 64}):
            fast = cached_targeting(cluster, query)
            slow = uncached_targeting(cluster, query)
            assert fast.broadcast and slow.broadcast
            assert fast.shard_ids == slow.shard_ids


class TestCacheMechanics:
    def test_lru_bound(self):
        cache = TargetingCache(max_entries=4)
        cluster = build_cluster()
        metadata = cluster.catalog.get("t")
        for i in range(10):
            shape = analyze_query({"k": {"$gte": i, "$lt": i + 1}})
            target_chunks_cached(
                metadata, shape, cache, cluster.metadata_version
            )
        stats = cache.stats()
        assert stats["entries"] <= 4
        assert stats["evictions"] >= 6

    def test_unhashable_interval_is_uncacheable(self):
        assert targeting_cache_key("t", 1, None) is not None  # broadcast
