"""Tests for shard keys and chunks."""

import datetime as dt

import pytest

from repro.cluster.chunk import Chunk, ShardKeyPattern
from repro.docstore import bson
from repro.docstore.index import hashed_value
from repro.errors import ShardingError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


class TestShardKeyPattern:
    def test_from_spec(self):
        p = ShardKeyPattern.from_spec([("hilbertIndex", 1), ("date", 1)])
        assert p.paths == ("hilbertIndex", "date")
        assert len(p) == 2
        assert not p.is_hashed

    def test_hashed_pattern(self):
        p = ShardKeyPattern.from_spec([("vehicle", "hashed")])
        assert p.is_hashed

    def test_rejects_empty(self):
        with pytest.raises(ShardingError):
            ShardKeyPattern(fields=())

    def test_rejects_bad_kind(self):
        with pytest.raises(ShardingError):
            ShardKeyPattern.from_spec([("a", "2dsphere")])

    def test_extract_raw(self):
        p = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        doc = {"h": 42, "date": T0}
        assert p.extract_raw(doc) == (42, T0)

    def test_extract_missing_is_null(self):
        p = ShardKeyPattern.from_spec([("h", 1)])
        assert p.extract_raw({}) == (None,)

    def test_extract_hashed(self):
        p = ShardKeyPattern.from_spec([("v", "hashed")])
        assert p.extract_raw({"v": 7}) == (hashed_value(7),)

    def test_extract_canonical_orders_like_bson(self):
        p = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        a = p.extract_canonical({"h": 1, "date": T0})
        b = p.extract_canonical({"h": 1, "date": T0 + dt.timedelta(days=1)})
        c = p.extract_canonical({"h": 2, "date": T0})
        assert a < b < c

    def test_global_bounds(self):
        p = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        gmin, gmax = p.global_min(), p.global_max()
        key = p.extract_canonical({"h": 5, "date": T0})
        assert gmin < key < gmax

    def test_dotted_path_keys(self):
        p = ShardKeyPattern.from_spec([("a.b", 1)])
        assert p.extract_raw({"a": {"b": 3}}) == (3,)


class TestChunk:
    def _chunk(self, lo, hi):
        p = ShardKeyPattern.from_spec([("h", 1)])
        return Chunk(
            min_key=(bson.sort_key(lo),),
            max_key=(bson.sort_key(hi),),
            shard_id="shard00",
        )

    def test_contains_half_open(self):
        p = ShardKeyPattern.from_spec([("h", 1)])
        chunk = self._chunk(10, 20)
        assert chunk.contains(p.extract_canonical({"h": 10}))
        assert chunk.contains(p.extract_canonical({"h": 19}))
        assert not chunk.contains(p.extract_canonical({"h": 20}))
        assert not chunk.contains(p.extract_canonical({"h": 9}))

    def test_rejects_empty_range(self):
        with pytest.raises(ShardingError):
            self._chunk(10, 10)

    def test_describe(self):
        chunk = self._chunk(0, 5)
        d = chunk.describe()
        assert d["shard"] == "shard00"
        assert d["jumbo"] is False
