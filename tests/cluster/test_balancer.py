"""Tests for the balancer in isolation (with a scripted migrate fn)."""

import pytest

from repro.cluster.balancer import Balancer
from repro.cluster.catalog import CollectionMetadata
from repro.cluster.chunk import Chunk, ShardKeyPattern
from repro.cluster.zones import Zone, ZoneSet
from repro.docstore import bson


def key(v):
    return (bson.sort_key(v),)


def build_meta(assignments):
    """assignments: list of (lo, hi, shard) over integer h values."""
    pattern = ShardKeyPattern.from_spec([("h", 1)])
    meta = CollectionMetadata(
        name="t", pattern=pattern, strategy="range", chunk_max_bytes=1024
    )
    for i, (lo, hi, shard) in enumerate(assignments):
        min_key = pattern.global_min() if lo is None else key(lo)
        max_key = pattern.global_max() if hi is None else key(hi)
        meta.chunks.append(
            Chunk(min_key=min_key, max_key=max_key, shard_id=shard)
        )
    return meta


def recording_migrate(log):
    def migrate(metadata, chunk, dest):
        log.append((chunk.min_key, chunk.shard_id, dest))
        chunk.shard_id = dest

    return migrate


class TestEvenOut:
    def test_already_balanced_no_moves(self):
        meta = build_meta(
            [(None, 10, "s0"), (10, 20, "s1"), (20, None, "s0")]
        )
        log = []
        balancer = Balancer(["s0", "s1"], recording_migrate(log))
        moved = balancer.balance(meta)
        assert moved == 0

    def test_evens_out_counts(self):
        meta = build_meta(
            [
                (None, 10, "s0"),
                (10, 20, "s0"),
                (20, 30, "s0"),
                (30, 40, "s0"),
                (40, None, "s0"),
            ]
        )
        log = []
        balancer = Balancer(["s0", "s1", "s2"], recording_migrate(log))
        balancer.balance(meta)
        counts = meta.chunk_counts()
        full = {s: counts.get(s, 0) for s in ("s0", "s1", "s2")}
        assert max(full.values()) - min(full.values()) <= 1

    def test_empty_shards_receive_chunks(self):
        meta = build_meta([(None, 10, "s0"), (10, None, "s0")])
        log = []
        balancer = Balancer(["s0", "s1"], recording_migrate(log))
        balancer.balance(meta)
        assert meta.chunk_counts().get("s1", 0) == 1

    def test_requires_shards(self):
        with pytest.raises(ValueError):
            Balancer([], lambda *a: None)


class TestZoneEnforcement:
    def test_chunks_move_to_zone_owner(self):
        meta = build_meta(
            [(None, 10, "s1"), (10, 20, "s1"), (20, None, "s0")]
        )
        pattern = meta.pattern
        meta.zone_set = ZoneSet(
            [
                Zone("a", pattern.global_min(), key(20), "s0"),
                Zone("b", key(20), pattern.global_max(), "s1"),
            ]
        )
        log = []
        balancer = Balancer(["s0", "s1"], recording_migrate(log))
        balancer.balance(meta)
        assert meta.chunks[0].shard_id == "s0"
        assert meta.chunks[1].shard_id == "s0"
        assert meta.chunks[2].shard_id == "s1"

    def test_zoned_chunks_never_leave_zone(self):
        # s0 owns everything via one zone: evening-out must not migrate
        # zoned chunks to s1 even though counts are lopsided.
        meta = build_meta(
            [(None, 10, "s0"), (10, 20, "s0"), (20, 30, "s0"), (30, None, "s0")]
        )
        pattern = meta.pattern
        meta.zone_set = ZoneSet(
            [Zone("all", pattern.global_min(), pattern.global_max(), "s0")]
        )
        log = []
        balancer = Balancer(["s0", "s1"], recording_migrate(log))
        balancer.balance(meta)
        assert all(c.shard_id == "s0" for c in meta.chunks)

    def test_unzoned_chunks_still_balanced(self):
        # Zone covers only [0, 10); the rest should spread normally.
        meta = build_meta(
            [
                (None, 0, "s0"),
                (0, 10, "s0"),
                (10, 20, "s0"),
                (20, 30, "s0"),
                (30, None, "s0"),
            ]
        )
        pattern = meta.pattern
        meta.zone_set = ZoneSet([Zone("z", key(0), key(10), "s0")])
        log = []
        balancer = Balancer(["s0", "s1"], recording_migrate(log))
        balancer.balance(meta)
        counts = meta.chunk_counts()
        assert counts.get("s1", 0) >= 2
        # The zoned chunk stayed.
        zoned = [c for c in meta.chunks if c.min_key == key(0)][0]
        assert zoned.shard_id == "s0"
