"""Tests for the deterministic execution-time model."""

from repro.cluster.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.docstore.executor import ExecutionStats


def stats(keys=0, docs=0, returned=0, seeks=0):
    s = ExecutionStats()
    s.keys_examined = keys
    s.docs_examined = docs
    s.n_returned = returned
    s.seeks = seeks
    return s


class TestShardTime:
    def test_zero_work_zero_time(self):
        assert DEFAULT_COST_MODEL.shard_time_ms(stats()) == 0.0

    def test_monotone_in_each_counter(self):
        model = DEFAULT_COST_MODEL
        base = model.shard_time_ms(stats(keys=100, docs=10))
        assert model.shard_time_ms(stats(keys=200, docs=10)) > base
        assert model.shard_time_ms(stats(keys=100, docs=20)) > base

    def test_docs_cost_more_than_keys(self):
        # Fetching a document is an order of magnitude dearer than a
        # B-tree key comparison — the premise behind the paper's
        # "documents examined" metric mattering most.
        model = DEFAULT_COST_MODEL
        assert model.per_doc_ms > model.per_key_ms


class TestQueryTime:
    def test_empty_is_base(self):
        assert DEFAULT_COST_MODEL.query_time_ms({}) == DEFAULT_COST_MODEL.base_ms

    def test_straggler_dominates(self):
        model = CostModel()
        light = stats(keys=10, docs=1)
        heavy = stats(keys=10_000, docs=1_000)
        one_heavy = model.query_time_ms({"a": heavy})
        balanced = model.query_time_ms({"a": heavy, "b": light})
        # Adding a light shard adds only the roundtrip overhead.
        import pytest

        assert balanced - one_heavy == pytest.approx(
            model.per_shard_roundtrip_ms
            + model.per_merged_result_ms * light.n_returned
        )

    def test_more_nodes_more_overhead(self):
        model = CostModel()
        s = stats(keys=100, docs=10, returned=5)
        few = model.query_time_ms({"a": s})
        many = model.query_time_ms({"a": s, "b": s, "c": s, "d": s})
        assert many > few

    def test_custom_coefficients(self):
        model = CostModel(per_doc_ms=1.0)
        assert model.shard_time_ms(stats(docs=10)) == 10.0
