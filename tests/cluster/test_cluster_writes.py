"""Tests for cluster-level delete_many / update_many."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.errors import ShardingError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def loaded_cluster(n=300):
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=3), chunk_max_bytes=4 * 1024
    )
    cluster.shard_collection("t", [("h", 1)])
    rng = random.Random(2)
    cluster.insert_many(
        "t",
        [
            {
                "_id": i,
                "h": rng.randrange(0, 500),
                "flag": i % 2 == 0,
                "n": i,
                "pad": "x" * 40,
            }
            for i in range(n)
        ],
    )
    cluster.run_balancer("t")
    return cluster


class TestDeleteMany:
    def test_targeted_delete(self):
        cluster = loaded_cluster()
        before = cluster.collection_totals("t")["count"]
        deleted = cluster.delete_many("t", {"h": {"$gte": 0, "$lte": 100}})
        assert deleted > 0
        assert cluster.collection_totals("t")["count"] == before - deleted
        assert len(cluster.find("t", {"h": {"$gte": 0, "$lte": 100}})) == 0
        cluster.validate("t")

    def test_broadcast_delete(self):
        cluster = loaded_cluster()
        deleted = cluster.delete_many("t", {"flag": True})
        assert deleted == 150
        assert len(cluster.find("t", {"flag": True})) == 0
        cluster.validate("t")

    def test_delete_nothing(self):
        cluster = loaded_cluster()
        assert cluster.delete_many("t", {"h": {"$gte": 10_000}}) == 0


class TestUpdateMany:
    def test_broadcast_update(self):
        cluster = loaded_cluster()
        updated = cluster.update_many(
            "t", {"flag": True}, {"$set": {"reviewed": True}}
        )
        assert updated == 150
        assert len(cluster.find("t", {"reviewed": True})) == 150

    def test_targeted_update(self):
        cluster = loaded_cluster()
        updated = cluster.update_many(
            "t", {"h": {"$gte": 0, "$lte": 50}}, {"$inc": {"n": 1000}}
        )
        assert updated == len(cluster.find("t", {"n": {"$gte": 1000}}))

    def test_shard_key_mutation_rejected(self):
        cluster = loaded_cluster()
        with pytest.raises(ShardingError):
            cluster.update_many("t", {}, {"$set": {"h": 1}})
        with pytest.raises(ShardingError):
            cluster.update_many("t", {}, {"$inc": {"h": 5}})

    def test_queries_correct_after_update(self):
        cluster = loaded_cluster()
        cluster.update_many("t", {}, {"$set": {"seen": 1}})
        result = cluster.find("t", {"h": {"$gte": 100, "$lte": 400}})
        assert all(d["seen"] == 1 for d in result)
        cluster.validate("t")
