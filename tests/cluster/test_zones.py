"""Tests for zone definitions."""

import pytest

from repro.cluster.zones import Zone, ZoneSet
from repro.docstore import bson
from repro.errors import ZoneError


def key(v):
    return (bson.sort_key(v),)


def zone(name, lo, hi, shard="shard00"):
    return Zone(name=name, min_key=key(lo), max_key=key(hi), shard_id=shard)


class TestZone:
    def test_contains_half_open(self):
        z = zone("z", 10, 20)
        assert z.contains(key(10))
        assert z.contains(key(19))
        assert not z.contains(key(20))

    def test_rejects_empty_range(self):
        with pytest.raises(ZoneError):
            zone("z", 10, 10)

    def test_covers_range(self):
        z = zone("z", 10, 20)
        assert z.covers_range(key(10), key(20))
        assert z.covers_range(key(12), key(15))
        assert not z.covers_range(key(5), key(15))
        assert not z.covers_range(key(15), key(25))

    def test_overlaps_range(self):
        z = zone("z", 10, 20)
        assert z.overlaps_range(key(15), key(25))
        assert z.overlaps_range(key(5), key(11))
        assert not z.overlaps_range(key(20), key(30))
        assert not z.overlaps_range(key(0), key(10))


class TestZoneSet:
    def test_ordered_iteration(self):
        zs = ZoneSet([zone("b", 20, 30), zone("a", 0, 10)])
        assert [z.name for z in zs] == ["a", "b"]
        assert len(zs) == 2

    def test_rejects_overlap(self):
        with pytest.raises(ZoneError):
            ZoneSet([zone("a", 0, 15), zone("b", 10, 20)])

    def test_adjacent_zones_allowed(self):
        zs = ZoneSet([zone("a", 0, 10), zone("b", 10, 20)])
        assert len(zs) == 2

    def test_zone_for_range(self):
        zs = ZoneSet([zone("a", 0, 10, "s0"), zone("b", 10, 20, "s1")])
        assert zs.zone_for_range(key(2), key(8)).name == "a"
        assert zs.zone_for_range(key(8), key(12)) is None  # straddles
        assert zs.zone_for_range(key(25), key(30)) is None  # outside

    def test_overlapping_zones(self):
        zs = ZoneSet([zone("a", 0, 10), zone("b", 10, 20)])
        names = [z.name for z in zs.overlapping_zones(key(5), key(15))]
        assert names == ["a", "b"]

    def test_boundaries_sorted_unique(self):
        zs = ZoneSet([zone("a", 0, 10), zone("b", 10, 20)])
        assert zs.boundaries() == [key(0), key(10), key(20)]
