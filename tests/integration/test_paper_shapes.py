"""End-to-end assertions of the paper's qualitative findings.

These tests deploy all approaches on scaled-down R and S data sets and
check the *shape* of the paper's results — who wins, what grows, which
metric explains it — rather than absolute numbers.
"""

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.core.benchmark import measure_query
from repro.core.zoning import configure_zones
from repro.datagen.datasets import ReproScale, load_r_dataset, load_s_dataset
from repro.workloads.queries import big_queries, small_queries

TOPOLOGY = ClusterTopology(n_shards=12)
CHUNK_BYTES = 48 * 1024
RUNS = 2


@pytest.fixture(scope="module")
def r_docs():
    _info, docs = load_r_dataset(ReproScale(r1_records=6000))
    return docs


@pytest.fixture(scope="module")
def r_info():
    info, _docs = load_r_dataset(ReproScale(r1_records=200))
    return info


@pytest.fixture(scope="module")
def deployments(r_docs, r_info):
    out = {}
    for name in ("bslST", "bslTS", "hil"):
        approach = make_approach(name, dataset_bbox=r_info.bbox)
        out[name] = deploy_approach(
            approach, r_docs, topology=TOPOLOGY, chunk_max_bytes=CHUNK_BYTES
        )
    return out


def measure_all(deployments, query):
    return {
        name: measure_query(dep, query, runs=RUNS, average_last=1)
        for name, dep in deployments.items()
    }


class TestResultCorrectness:
    def test_all_approaches_return_identical_counts(self, deployments):
        for query in small_queries() + big_queries():
            counts = {
                name: len(dep.execute(query)[0])
                for name, dep in deployments.items()
            }
            assert len(set(counts.values())) == 1, (query.label, counts)

    def test_big_queries_return_more_than_small(self, deployments):
        dep = deployments["hil"]
        for qs, qb in zip(small_queries(), big_queries()):
            ns = len(dep.execute(qs)[0])
            nb = len(dep.execute(qb)[0])
            assert nb >= ns

    def test_result_counts_grow_with_temporal_span(self, deployments):
        dep = deployments["hil"]
        counts = [len(dep.execute(q)[0]) for q in big_queries()]
        assert counts == sorted(counts)
        assert counts[-1] > 0


class TestBaselineNodeGrowth:
    def test_bsl_nodes_grow_with_temporal_constraint(self, deployments):
        # Section 5.2: for both baselines, nodes grow with the temporal
        # window regardless of spatial extent (Figs. 5c-8c).
        for name in ("bslST", "bslTS"):
            nodes = [
                measure_all(deployments, q)[name].nodes
                for q in big_queries()
            ]
            assert nodes[0] <= nodes[1] <= nodes[3]
            assert nodes[3] >= 8  # a month touches most of the cluster

    def test_hil_nodes_driven_by_space_not_time(self, deployments):
        # hil's node count is set by the spatial extent; growing the
        # time window does not blow it up the way it does for bsl.
        nodes = [
            measure_all(deployments, q)["hil"].nodes for q in big_queries()
        ]
        assert max(nodes) - min(nodes) <= 4

    def test_hil_small_queries_use_few_nodes(self, deployments):
        # Spatially tiny queries touch few Hilbert cells → fewer nodes
        # than the baselines need for the same long windows (the
        # locality argument of Section 5.2's discussion).
        q4 = small_queries()[3]
        results = measure_all(deployments, q4)
        assert results["hil"].nodes <= 4
        assert results["hil"].nodes <= results["bslST"].nodes


class TestBigQueryPerformance:
    def test_hil_examines_fewer_docs_on_short_big_queries(self, deployments):
        # Fig. 6: for Qb1/Qb2, baselines burden few nodes with many
        # examined keys/docs; hil spreads and prunes better.
        results = measure_all(deployments, big_queries()[1])
        assert (
            results["hil"].max_docs_examined
            <= results["bslST"].max_docs_examined
        )

    def test_hil_wins_execution_time_on_big_queries(self, deployments):
        # Summary of Section 5.2: hil outperforms bsl for big queries.
        # At test scale Qb1 does ~no work on the time-targeted baseline
        # (it retrieves ~0 docs; the paper's retrieves 580), so the
        # comparison runs over Qb2-Qb4 and expects hil to beat the
        # spatial-first baseline on most, never falling far behind the
        # best baseline.
        wins = 0
        for q in big_queries()[1:]:
            results = measure_all(deployments, q)
            if (
                results["hil"].execution_time_ms
                <= results["bslST"].execution_time_ms
            ):
                wins += 1
            best_bsl = min(
                results["bslST"].execution_time_ms,
                results["bslTS"].execution_time_ms,
            )
            assert results["hil"].execution_time_ms <= best_bsl * 2.0
        assert wins >= 2


class TestZones:
    def test_zones_reduce_or_keep_nodes(self, r_docs):
        # Section 5.3: with zones, queries use fewer (or equal) nodes.
        plain = deploy_approach(
            make_approach("hil"),
            r_docs,
            topology=TOPOLOGY,
            chunk_max_bytes=CHUNK_BYTES,
        )
        before = {
            q.label: measure_query(plain, q, runs=1, average_last=1)
            for q in big_queries()
        }
        configure_zones(plain.cluster, plain.collection, "hilbertIndex")
        plain.zones_enabled = True
        after = {
            q.label: measure_query(plain, q, runs=1, average_last=1)
            for q in big_queries()
        }
        for label in before:
            assert after[label].nodes <= before[label].nodes
            assert after[label].n_returned == before[label].n_returned


class TestSDataset:
    @pytest.fixture(scope="class")
    def s_deployments(self):
        info, docs = load_s_dataset(ReproScale(r1_records=3000))
        out = {}
        for name in ("bslST", "hil"):
            approach = make_approach(name, dataset_bbox=info.bbox)
            out[name] = deploy_approach(
                approach,
                docs,
                topology=TOPOLOGY,
                chunk_max_bytes=8 * 1024,
            )
        return out

    def test_counts_agree_on_uniform_data(self, s_deployments):
        for q in big_queries():
            counts = {
                name: len(dep.execute(q)[0])
                for name, dep in s_deployments.items()
            }
            assert len(set(counts.values())) == 1

    def test_s_returns_relatively_more_for_big_queries(self, s_deployments):
        # S is uniform over a small MBR that contains Qb: a month-long
        # big query selects a large share of the data (Table 3).
        dep = s_deployments["hil"]
        total = dep.totals()["count"]
        got = len(dep.execute(big_queries()[3])[0])
        assert got > total * 0.05
