"""Differential testing: interpreter vs exact-cached vs shape-bound plans.

The parameterized plan cache is a pure performance transform: binding
fresh box/date constants into a cached shape plan must produce exactly
what full analysis + compilation would have produced.  ~200 randomized
service calls run through three arms over the same deployed cluster —

* **interpreter** — plan cache off, fast path off (the paper-faithful
  reference);
* **exact** — plan cache on, shape plans off: only verbatim repeats
  hit;
* **shape** — shape-keyed parameterized plans on: every structural
  repeat binds into a cached template.

Every arm must return byte-identical documents AND identical execution
counters (``keysExamined``/``docsExamined``, per shard) for every
query, and each caching arm must actually exercise its hit path (the
outcome counters prove the differential covered what it claims to).
"""

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import (
    COLLECTION,
    HilbertApproach,
    deploy_approach,
)
from repro.datagen import FleetConfig, FleetGenerator
from repro.service import QueryService, ServiceConfig
from repro.sfc.ranges import RangeDecompositionCache
from repro.workloads.queries import randomized_queries

N_DOCS = 800
N_DISTINCT = 100  # each replayed twice -> 200 calls per arm

ARM_CONFIGS = {
    "interpreter": dict(plan_cache_enabled=False, fast_path=False),
    "exact": dict(plan_cache_enabled=True, shape_plans_enabled=False),
    "shape": dict(plan_cache_enabled=True, shape_plans_enabled=True),
}


@pytest.fixture(scope="module")
def deployment():
    docs = FleetGenerator(FleetConfig(seed=7)).generate_list(N_DOCS)
    return deploy_approach(
        HilbertApproach.global_domain(order=15),
        docs,
        topology=ClusterTopology(
            n_shards=4, n_config_servers=1, n_routers=1
        ),
        chunk_max_bytes=128 * 1024,
    )


@pytest.fixture(scope="module")
def workload(deployment):
    """Rendered query documents: 100 distinct, each replayed twice.

    Rendered once, outside the arms, so all three replay verbatim the
    same documents — the differential isolates the service's plan
    caching, nothing else.  The second replay of each query is the hit
    path: an exact-key hit in the exact arm, a shape hit in the shape
    arm (the constants repeat, so both stores apply).
    """
    encoder = deployment.approach.encoder
    cache = RangeDecompositionCache()
    rendered = [
        st.to_hilbert_query(encoder, cache=cache).query
        for st in randomized_queries(N_DISTINCT, seed=5)
    ]
    return rendered + rendered


def run_arm(deployment, workload, **config_overrides):
    config = ServiceConfig(
        parallel_scatter_gather=False, **config_overrides
    )
    frames = []
    with QueryService(deployment.cluster, config) as service:
        for query in workload:
            result = service.find(COLLECTION, query)
            frames.append(
                (result.documents, result.stats.as_dict())
            )
        outcomes = dict(service.metrics_snapshot().plan_outcomes)
    return frames, outcomes


class TestThreeWayDifferential:
    @pytest.fixture(scope="class")
    def arm_results(self, deployment, workload):
        return {
            name: run_arm(deployment, workload, **overrides)
            for name, overrides in ARM_CONFIGS.items()
        }

    def test_documents_and_counters_identical(self, arm_results):
        reference, _ = arm_results["interpreter"]
        for name in ("exact", "shape"):
            frames, _ = arm_results[name]
            for i, (frame, ref) in enumerate(zip(frames, reference)):
                assert frame[0] == ref[0], (
                    "%s arm: documents diverged on call %d" % (name, i)
                )
                assert frame[1] == ref[1], (
                    "%s arm: counters diverged on call %d" % (name, i)
                )

    def test_each_arm_exercised_its_hit_path(self, arm_results):
        _, interp = arm_results["interpreter"]
        _, exact = arm_results["exact"]
        _, shape = arm_results["shape"]
        # The interpreter arm never consults the plan cache.
        assert all(v == 0 for v in interp.values())
        # Exact arm: the second replay of each distinct query hits.
        assert exact["exactHits"] >= N_DISTINCT
        assert exact["shapeHits"] == 0
        # Shape arm: the exact store still wins on verbatim replays
        # (second pass), while first-pass queries — every one a new
        # literal — bind into the cached shape templates.
        assert shape["exactHits"] >= N_DISTINCT
        assert shape["shapeHits"] >= N_DISTINCT - 10
        assert shape["misses"] <= 10


class TestShapeBindingAcrossConstants:
    def test_fresh_constants_bind_without_divergence(
        self, deployment
    ):
        """Never-seen constants on a warm shape must match a cold run.

        The module workload replays exact queries (so both stores
        hit); this drives 50 *new* literals through a shape warmed by
        50 different ones and compares against a plan-cache-free
        service — binding, not memoized answers, must produce the
        results.
        """
        encoder = deployment.approach.encoder
        cache = RangeDecompositionCache(use_skeleton=True)
        stream = [
            st.to_hilbert_query(encoder, cache=cache).query
            for st in randomized_queries(100, seed=99)
        ]
        warm, probe = stream[:50], stream[50:]
        with QueryService(
            deployment.cluster,
            ServiceConfig(parallel_scatter_gather=False),
        ) as service:
            for query in warm:
                service.find(COLLECTION, query)
            bound = [
                (r.documents, r.stats.as_dict())
                for r in (
                    service.find(COLLECTION, q) for q in probe
                )
            ]
            outcomes = dict(service.metrics_snapshot().plan_outcomes)
        assert outcomes["shapeHits"] >= 95
        with QueryService(
            deployment.cluster,
            ServiceConfig(
                parallel_scatter_gather=False, plan_cache_enabled=False
            ),
        ) as service:
            cold = [
                (r.documents, r.stats.as_dict())
                for r in (
                    service.find(COLLECTION, q) for q in probe
                )
            ]
        assert bound == cold
