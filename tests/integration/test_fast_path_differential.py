"""Differential testing: compiled fast path vs the legacy interpreter.

Hundreds of randomized spatio-temporal queries run twice through the
same deployed cluster — once with ``fast_path=True`` (compiled
matchers, shared hinted bounds, targeting/decomposition memos,
multi-range scans) and once with ``fast_path=False`` (the
paper-faithful interpreter).  Every query must produce byte-identical
documents AND identical execution counters (``keysExamined``,
``docsExamined``, ``nReturned``, per shard): the fast path is a pure
performance transform with no observable semantic surface.
"""

import datetime as _dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import COLLECTION, deploy_approach, make_approach
from repro.datagen import FleetConfig, FleetGenerator
from repro.datagen.datasets import GREECE_BBOX
from repro.geo.geometry import BoundingBox
from repro.workloads.queries import QUERY_WINDOWS, SpatioTemporalQuery

N_DOCS = 1_200
TOPOLOGY = ClusterTopology(n_shards=6)

_UTC = _dt.timezone.utc
_TIME_LO = _dt.datetime(2018, 7, 1, tzinfo=_UTC)
_TIME_SPAN_S = int(
    (_dt.datetime(2018, 10, 1, tzinfo=_UTC) - _TIME_LO).total_seconds()
)


def _random_queries(rng: random.Random, n: int):
    """Randomized rectangles + windows over (and around) the data region.

    Mixes tiny through country-sized boxes and minute through
    multi-month windows; some combinations match nothing, which is as
    important to cover as dense hits.
    """
    queries = []
    for i in range(n):
        width = 10.0 ** rng.uniform(-2.0, 0.8)  # 0.01 .. ~6 degrees
        height = 10.0 ** rng.uniform(-2.0, 0.6)
        min_lon = rng.uniform(GREECE_BBOX.min_lon - 1.0, GREECE_BBOX.max_lon)
        min_lat = rng.uniform(GREECE_BBOX.min_lat - 1.0, GREECE_BBOX.max_lat)
        bbox = BoundingBox(
            min_lon,
            min_lat,
            min(min_lon + width, 180.0),
            min(min_lat + height, 90.0),
        )
        start_s = rng.randrange(0, _TIME_SPAN_S)
        duration_s = int(60 * 10.0 ** rng.uniform(0.0, 3.2))  # 1min..~4mo
        t_from = _TIME_LO + _dt.timedelta(seconds=start_s)
        queries.append(
            SpatioTemporalQuery(
                bbox=bbox,
                time_from=t_from,
                time_to=t_from + _dt.timedelta(seconds=duration_s),
                label="rand-%d" % i,
            )
        )
    # Degenerate shapes the random sweep may miss: a point-sized box
    # and an instant window.
    queries.append(
        SpatioTemporalQuery(
            bbox=BoundingBox(23.7, 38.0, 23.7, 38.0),
            time_from=QUERY_WINDOWS[0][1],
            time_to=QUERY_WINDOWS[0][1],
            label="degenerate",
        )
    )
    return queries


@pytest.fixture(scope="module")
def docs():
    return FleetGenerator(FleetConfig(n_vehicles=30)).generate_list(N_DOCS)


@pytest.fixture(
    scope="module", params=["hil", "bslST", "bslTS"], ids=str
)
def deployment(request, docs):
    return deploy_approach(
        make_approach(request.param),
        docs,
        topology=TOPOLOGY,
        chunk_max_bytes=24 * 1024,
    )


def _assert_identical(deployment, query):
    rendered_fast, _ = deployment.approach.render_query(
        query, fast_path=True
    )
    rendered_slow, _ = deployment.approach.render_query(
        query, fast_path=False
    )
    # The decomposition memo must not change what is rendered.
    assert rendered_fast == rendered_slow, query.label
    fast = deployment.cluster.find(
        COLLECTION, rendered_fast, fast_path=True
    )
    slow = deployment.cluster.find(
        COLLECTION, rendered_slow, fast_path=False
    )
    assert fast.documents == slow.documents, query.label
    assert fast.stats.as_dict() == slow.stats.as_dict(), query.label


class TestCompiledVsInterpreter:
    def test_randomized_queries_identical(self, deployment):
        # ~200 randomized queries across the three approaches (the
        # fixture parametrizes); seeds differ per approach so each
        # deployment sees its own rectangles.
        rng = random.Random(hash(deployment.approach.name) % 10_000)
        for query in _random_queries(rng, 66):
            _assert_identical(deployment, query)
        # The sweep must also exercise dense hits, not only sparse or
        # empty rectangles: the whole region over the whole timespan
        # matches every record, and must stay identical too.
        everything = SpatioTemporalQuery(
            bbox=GREECE_BBOX,
            time_from=_TIME_LO,
            time_to=_TIME_LO + _dt.timedelta(seconds=_TIME_SPAN_S),
            label="everything",
        )
        _assert_identical(deployment, everything)
        rendered, _ = deployment.approach.render_query(everything)
        result = deployment.cluster.find(COLLECTION, rendered)
        assert len(result.documents) > N_DOCS // 2
