"""Syntax/import guards for the example scripts.

Full example runs are exercised manually (they deploy clusters); here
we guarantee each script at least parses and its imports resolve, so a
refactor cannot silently break the documented entry points.
"""

import ast
import importlib
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_parses(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source, filename=name)
    # Each example documents itself and is runnable as a script.
    assert ast.get_docstring(tree), "%s lacks a module docstring" % name
    assert "__main__" in source, "%s is not runnable as a script" % name


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_resolve(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=name)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                importlib.import_module(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name) or importlib.util.find_spec(
                    "%s.%s" % (node.module, alias.name)
                ), "%s: %s.%s missing" % (name, node.module, alias.name)


def test_expected_example_set():
    # The README documents these seven walkthroughs.
    expected = {
        "quickstart.py",
        "fleet_analytics.py",
        "approach_comparison.py",
        "curve_gallery.py",
        "zone_tuning.py",
        "trajectory_queries.py",
        "adaptive_partitioning.py",
        "lifecycle_and_knn.py",
        "service_throughput.py",
    }
    assert expected <= set(EXAMPLES)
