"""Tests for the dataset registry (R1-R4, S)."""

import pytest

from repro.datagen.datasets import ReproScale, load_r_dataset, load_s_dataset


class TestReproScale:
    def test_default(self):
        assert ReproScale().r1_records == 30_000

    def test_scale_factors_match_table4(self):
        scale = ReproScale(r1_records=1000)
        assert [scale.r_records(f) for f in (1, 2, 3, 4)] == [
            1000,
            2000,
            3000,
            4000,
        ]

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ReproScale().r_records(5)

    def test_s_is_twice_r1(self):
        assert ReproScale(r1_records=500).s_records == 1000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_R_RECORDS", "1234")
        assert ReproScale.from_env().r1_records == 1234

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_R_RECORDS", raising=False)
        assert ReproScale.from_env().r1_records == 30_000


class TestLoaders:
    def test_load_r(self):
        info, docs = load_r_dataset(ReproScale(r1_records=500))
        assert info.name == "R1"
        assert info.kind == "fleet"
        assert len(docs) == 500

    def test_load_r_scaled(self):
        info, docs = load_r_dataset(ReproScale(r1_records=300), scale_factor=2)
        assert info.name == "R2"
        assert len(docs) == 600

    def test_scaling_adds_vehicles_same_bbox(self):
        # Table 4: larger instances add vehicles, same MBR.
        _, r1 = load_r_dataset(ReproScale(r1_records=400), scale_factor=1)
        _, r2 = load_r_dataset(ReproScale(r1_records=400), scale_factor=2)
        v1 = {d["vehicle_id"] for d in r1}
        v2 = {d["vehicle_id"] for d in r2}
        assert len(v2) > len(v1)

    def test_load_s(self):
        info, docs = load_s_dataset(ReproScale(r1_records=300))
        assert info.name == "S"
        assert len(docs) == 600
        assert info.kind == "uniform"
