"""Tests for the uniform (S) data generator."""

import datetime as dt

from repro.datagen.uniform import (
    S_BBOX,
    S_TIMESPAN,
    UniformConfig,
    UniformGenerator,
)
from repro.datagen.vehicles import GREECE_BBOX
from repro.docstore.bson import bson_document_size


def gen(n=1000, **kwargs):
    return UniformGenerator(UniformConfig(**kwargs)).generate_list(n)


class TestUniformGenerator:
    def test_exact_count(self):
        assert len(gen(123)) == 123

    def test_deterministic(self):
        assert gen(200, seed=9) == gen(200, seed=9)

    def test_inside_paper_mbr(self):
        for doc in gen(1000):
            lon, lat = doc["location"]["coordinates"]
            assert S_BBOX.contains_lonlat(lon, lat)

    def test_mbr_is_small_fraction_of_r(self):
        # Section 5.1: S's MBR is ~1.54% of R's MBR area.
        fraction = S_BBOX.area_deg2() / GREECE_BBOX.area_deg2()
        assert 0.014 < fraction < 0.017

    def test_timespan_is_2_5_months(self):
        span = S_TIMESPAN[1] - S_TIMESPAN[0]
        assert dt.timedelta(days=74) < span < dt.timedelta(days=78)
        for doc in gen(500):
            assert S_TIMESPAN[0] <= doc["date"] <= S_TIMESPAN[1]

    def test_documents_are_narrow(self):
        # Four CSV columns + GeoJSON: much smaller than R documents.
        sizes = [bson_document_size(d) for d in gen(100)]
        assert max(sizes) < 250

    def test_fields(self):
        doc = gen(1)[0]
        assert set(doc) == {"id", "location", "longitude", "latitude", "date"}
        assert doc["longitude"] == doc["location"]["coordinates"][0]

    def test_roughly_uniform_spatially(self):
        docs = gen(4000)
        # Split the MBR into 4 lon quarters; each should hold ~25%.
        width = (S_BBOX.max_lon - S_BBOX.min_lon) / 4
        counts = [0] * 4
        for d in docs:
            q = min(3, int((d["longitude"] - S_BBOX.min_lon) / width))
            counts[q] += 1
        for c in counts:
            assert 800 < c < 1200

    def test_ids_sequential(self):
        assert [d["id"] for d in gen(10)] == list(range(10))
