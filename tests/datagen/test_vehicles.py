"""Tests for the fleet (R) data generator."""

import datetime as dt

from repro.datagen.vehicles import (
    GREECE_BBOX,
    R_TIMESPAN,
    FleetConfig,
    FleetGenerator,
)
from repro.docstore.bson import bson_document_size
from repro.workloads.queries import BIG_BBOX, SMALL_BBOX


def gen(n=2000, **kwargs):
    return FleetGenerator(FleetConfig(**kwargs)).generate_list(n)


class TestFleetGenerator:
    def test_exact_count(self):
        assert len(gen(777)) == 777
        assert gen(0) == []

    def test_deterministic(self):
        a = gen(300, seed=42)
        b = gen(300, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = gen(100, seed=1)
        b = gen(100, seed=2)
        assert a != b

    def test_all_points_inside_paper_mbr(self):
        for doc in gen(1500):
            lon, lat = doc["location"]["coordinates"]
            assert GREECE_BBOX.contains_lonlat(lon, lat)

    def test_timestamps_inside_paper_span(self):
        for doc in gen(1500):
            assert R_TIMESPAN[0] <= doc["date"] < R_TIMESPAN[1]

    def test_documents_are_wide(self):
        # Stand-in for the paper's 75-value records: ~1 KB BSON.
        sizes = [bson_document_size(d) for d in gen(100)]
        assert min(sizes) > 500
        assert max(sizes) < 2000

    def test_required_fields_present(self):
        doc = gen(1)[0]
        for field in ("vehicle_id", "location", "date", "speed_kmh",
                      "weather", "road", "poi"):
            assert field in doc
        assert doc["location"]["type"] == "Point"

    def test_athens_skew(self):
        # Half the fleet is Athens-based; the big query box (greater
        # Athens) must hold far more points than a same-sized area
        # elsewhere in Greece.
        docs = gen(4000)
        in_big = sum(
            1
            for d in docs
            if BIG_BBOX.contains_lonlat(*d["location"]["coordinates"])
        )
        # A box of the same size in the empty south-west.
        from repro.geo.geometry import BoundingBox

        empty_box = BoundingBox(20.0, 35.2, 20.43, 35.53)
        in_empty = sum(
            1
            for d in docs
            if empty_box.contains_lonlat(*d["location"]["coordinates"])
        )
        assert in_big > 20 * max(1, in_empty)

    def test_small_box_is_selective_but_reachable(self):
        docs = gen(20_000)
        in_small = sum(
            1
            for d in docs
            if SMALL_BBOX.contains_lonlat(*d["location"]["coordinates"])
        )
        assert 0 < in_small < len(docs) * 0.01

    def test_trajectory_correlation(self):
        # Consecutive records of one trip (adjacent record ids, same
        # vehicle) are typically close in space — the locality the
        # Hilbert sharding exploits.  Long-haul trips allow big steps,
        # so assert on the median step, not the maximum.
        docs = gen(2000)
        steps = []
        for a, b in zip(docs, docs[1:]):
            if a["vehicle_id"] != b["vehicle_id"]:
                continue  # trip boundary
            lon_a, lat_a = a["location"]["coordinates"]
            lon_b, lat_b = b["location"]["coordinates"]
            steps.append(abs(lon_a - lon_b) + abs(lat_a - lat_b))
        assert len(steps) > 500
        steps.sort()
        assert steps[len(steps) // 2] < 0.2  # median step is local

    def test_roughly_chronological_stream(self):
        docs = gen(3000)
        dates = [d["date"] for d in docs]
        # Compare first and last deciles.
        early = sorted(dates[:300])[150]
        late = sorted(dates[-300:])[150]
        assert late > early

    def test_record_ids_sequential(self):
        docs = gen(50)
        assert [d["record_id"] for d in docs] == list(range(50))
