"""Tests for the CSV export/ingest pipeline (Appendix A.1)."""

import datetime as dt

from repro.datagen.csv_io import (
    csv_to_documents,
    documents_to_csv,
    read_csv_file,
    write_csv_file,
)
from repro.datagen.uniform import UniformGenerator
from repro.datagen.vehicles import FleetConfig, FleetGenerator

UTC = dt.timezone.utc


class TestRoundtrip:
    def test_s_documents_roundtrip(self):
        docs = UniformGenerator().generate_list(20)
        text = documents_to_csv(docs)
        back = list(csv_to_documents(text))
        assert len(back) == 20
        for original, restored in zip(docs, back):
            assert restored["location"]["type"] == "Point"
            assert restored["location"]["coordinates"] == list(
                original["location"]["coordinates"]
            ) or tuple(restored["location"]["coordinates"]) == tuple(
                original["location"]["coordinates"]
            )
            assert restored["date"] == original["date"]
            assert restored["id"] == original["id"]

    def test_r_documents_roundtrip_keeps_structure(self):
        docs = FleetGenerator(FleetConfig(n_vehicles=5)).generate_list(10)
        back = list(csv_to_documents(documents_to_csv(docs)))
        assert len(back) == 10
        first = back[0]
        assert first["location"]["type"] == "Point"
        assert isinstance(first["date"], dt.datetime)
        # Dotted columns rebuild nested documents.
        assert isinstance(first["weather"], dict)
        assert "humidity_pct" in first["weather"]
        assert first["vehicle_id"] == docs[0]["vehicle_id"]

    def test_empty(self):
        assert documents_to_csv([]) == ""
        assert list(csv_to_documents("")) == []

    def test_type_coercion(self):
        text = "a,b,c,flag\n1,2.5,hello,True\n"
        (doc,) = csv_to_documents(text)
        assert doc == {"a": 1, "b": 2.5, "c": "hello", "flag": True}

    def test_file_io(self, tmp_path):
        docs = UniformGenerator().generate_list(5)
        path = str(tmp_path / "s.csv")
        write_csv_file(path, docs)
        back = read_csv_file(path)
        assert len(back) == 5

    def test_ingested_documents_queryable(self):
        # The full Appendix A.1 path: CSV → documents → store → query.
        from repro.docstore.collection import Collection

        docs = UniformGenerator().generate_list(50)
        restored = list(csv_to_documents(documents_to_csv(docs)))
        col = Collection("t")
        col.create_index([("location", "2dsphere"), ("date", 1)])
        col.insert_many(restored)
        q = {
            "location": {
                "$geoWithin": {"$box": [[23.3, 37.6], [24.3, 38.5]]}
            }
        }
        assert len(col.find_with_stats(q)) == 50
