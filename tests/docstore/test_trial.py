"""Tests for trial-based plan ranking."""

import datetime as dt
import random

import pytest

from repro.docstore.collection import Collection
from repro.docstore.matcher import Matcher
from repro.docstore.planner import analyze_query, plan_candidates
from repro.docstore.trial import plan_query_by_trial, run_trial
from repro.errors import DocumentStoreError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def build_collection(n=400, seed=6):
    rng = random.Random(seed)
    col = Collection("t")
    col.create_index([("a", 1), ("b", 1)], name="a_b")
    col.create_index([("b", 1)], name="b_1")
    for _ in range(n):
        col.insert_one({"a": rng.randrange(0, 50), "b": rng.randrange(0, 50)})
    return col


class TestRunTrial:
    def test_reports_work_and_results(self):
        col = build_collection()
        shape = analyze_query({"a": {"$gte": 0, "$lte": 49}})
        (plan,) = [
            p
            for p in plan_candidates(
                shape, [col.get_index("a_b"), col.get_index("b_1")]
            )
        ]
        result = run_trial(plan, col._records, Matcher({}), work_budget=50)
        assert result.keys_examined <= 50
        assert result.results_found > 0
        assert not result.completed  # 400 docs > 50-key budget

    def test_completes_small_scans(self):
        col = build_collection()
        shape = analyze_query({"a": 3, "b": 3})
        plans = plan_candidates(
            shape, [col.get_index("a_b"), col.get_index("b_1")]
        )
        compound = [p for p in plans if p.index_name == "a_b"][0]
        result = run_trial(
            compound, col._records, Matcher({"a": 3, "b": 3}), work_budget=100
        )
        assert result.completed


class TestTrialPlanning:
    def test_picks_more_selective_plan(self):
        # Query selective on (a AND b): the compound beats the b-only
        # index, and the trial discovers it by productivity.
        col = build_collection()
        q = {"a": {"$gte": 10, "$lte": 12}, "b": {"$gte": 10, "$lte": 12}}
        shape = analyze_query(q)
        plan = plan_query_by_trial(
            shape,
            [col.get_index("a_b"), col.get_index("b_1")],
            col._records,
            Matcher(q),
            collection_size=len(col),
        )
        assert plan.index_name == "a_b"

    def test_trial_mode_same_results_as_estimate(self):
        col = build_collection()
        q = {"a": {"$gte": 5, "$lte": 30}, "b": {"$gte": 0, "$lte": 20}}
        estimate = col.find_with_stats(q, planning="estimate")
        trial = col.find_with_stats(q, planning="trial")
        assert len(estimate) == len(trial)

    def test_collscan_when_no_candidates(self):
        col = Collection("t")
        col.insert_many({"x": i} for i in range(10))
        result = col.find_with_stats({"x": {"$gte": 3}}, planning="trial")
        assert result.plan.kind == "COLLSCAN"
        assert len(result) == 7

    def test_unknown_mode_rejected(self):
        col = build_collection(10)
        with pytest.raises(DocumentStoreError):
            col.find_with_stats({"a": 1}, planning="psychic")

    def test_trial_agrees_with_table7_pattern(self):
        # The bslST scenario: compound (geo, date) vs date index.  For
        # a big box and a 1-hour window, both the estimator and the
        # trial must keep the date index; for a tiny box over months,
        # both must pick the compound.
        rng = random.Random(4)
        col = Collection("t")
        col.create_index(
            [("location", "2dsphere"), ("date", 1)], name="loc_date"
        )
        col.create_index([("date", 1)], name="date_1")
        for i in range(600):
            col.insert_one(
                {
                    "location": {
                        "type": "Point",
                        "coordinates": [
                            rng.uniform(20.0, 28.0),
                            rng.uniform(35.0, 41.0),
                        ],
                    },
                    "date": T0 + dt.timedelta(minutes=rng.uniform(0, 60 * 24 * 150)),
                }
            )
        big_short = {
            "location": {"$geoWithin": {"$box": [[20.5, 35.5], [27.5, 40.5]]}},
            "date": {"$gte": T0, "$lte": T0 + dt.timedelta(hours=1)},
        }
        tiny_long = {
            "location": {"$geoWithin": {"$box": [[23.70, 37.90], [23.72, 37.92]]}},
            "date": {"$gte": T0, "$lte": T0 + dt.timedelta(days=150)},
        }
        for planning in ("estimate", "trial"):
            assert (
                col.find_with_stats(big_short, planning=planning).plan.index_name
                == "date_1"
            ), planning
            assert (
                col.find_with_stats(tiny_long, planning=planning).plan.index_name
                == "loc_date"
            ), planning
