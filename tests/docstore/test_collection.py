"""Tests for the Collection facade."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.bson import ObjectId
from repro.docstore.collection import Collection
from repro.docstore.matcher import matches
from repro.errors import DuplicateKeyError, IndexError_

UTC = dt.timezone.utc


class TestInsert:
    def test_assigns_objectid(self):
        col = Collection("t")
        _id = col.insert_one({"a": 1})
        assert isinstance(_id, ObjectId)
        assert len(col) == 1

    def test_preserves_explicit_id(self):
        col = Collection("t")
        assert col.insert_one({"_id": 42, "a": 1}) == 42

    def test_duplicate_id_rejected(self):
        col = Collection("t")
        col.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            col.insert_one({"_id": 1})

    def test_insert_many(self):
        col = Collection("t")
        ids = col.insert_many({"i": i} for i in range(10))
        assert len(ids) == 10
        assert len(col) == 10

    def test_insert_does_not_alias_caller_document(self):
        col = Collection("t")
        doc = {"a": 1}
        col.insert_one(doc)
        assert "_id" not in doc  # caller's dict untouched


class TestFind:
    def test_find_returns_copies(self):
        col = Collection("t")
        col.insert_one({"_id": 1, "a": {"b": 1}})
        found = col.find_one({"_id": 1})
        found["a"]["b"] = 999
        assert col.find_one({"_id": 1})["a"]["b"] == 1

    def test_find_by_id_uses_id_index(self):
        col = Collection("t")
        for i in range(100):
            col.insert_one({"_id": i})
        result = col.find_with_stats({"_id": 50})
        assert result.plan.kind == "IXSCAN"
        assert result.plan.index_name == "_id_"
        assert result.stats.keys_examined <= 2

    def test_find_empty_query_returns_all(self):
        col = Collection("t")
        col.insert_many({"i": i} for i in range(5))
        assert len(col.find().to_list()) == 5

    def test_cursor_modifiers(self):
        col = Collection("t")
        col.insert_many({"i": i} for i in range(10))
        out = col.find().sort({"i": -1}).skip(2).limit(3).to_list()
        assert [d["i"] for d in out] == [7, 6, 5]

    def test_count_documents(self):
        col = Collection("t")
        col.insert_many({"i": i} for i in range(10))
        assert col.count_documents() == 10
        assert col.count_documents({"i": {"$gte": 5}}) == 5

    def test_find_one_none_when_empty(self):
        col = Collection("t")
        assert col.find_one({"a": 1}) is None


class TestDeleteUpdate:
    def test_delete_many(self):
        col = Collection("t")
        col.create_index([("i", 1)])
        col.insert_many({"i": i} for i in range(10))
        assert col.delete_many({"i": {"$lt": 4}}) == 4
        assert len(col) == 6
        # Index is maintained: a find via the index agrees.
        assert len(col.find_with_stats({"i": {"$gte": 0, "$lte": 9}})) == 6

    def test_update_many_set(self):
        col = Collection("t")
        col.create_index([("i", 1)])
        col.insert_many({"i": i} for i in range(5))
        assert col.update_many({"i": {"$lte": 1}}, {"$set": {"flag": True}}) == 2
        assert col.count_documents({"flag": True}) == 2

    def test_update_reindexes(self):
        col = Collection("t")
        col.create_index([("i", 1)], name="i_1")
        col.insert_one({"i": 1})
        col.update_many({"i": 1}, {"$set": {"i": 99}})
        result = col.find_with_stats({"i": {"$gte": 90, "$lte": 100}}, hint="i_1")
        assert len(result) == 1

    def test_update_unset(self):
        col = Collection("t")
        col.insert_one({"i": 1, "junk": "x"})
        col.update_many({}, {"$unset": {"junk": ""}})
        assert "junk" not in col.find_one({})

    def test_unknown_update_operator_rejected(self):
        col = Collection("t")
        col.insert_one({"i": 1})
        from repro.errors import DocumentStoreError

        with pytest.raises(DocumentStoreError):
            col.update_many({}, {"$rename": {"i": "j"}})


class TestIndexManagement:
    def test_create_and_list(self):
        col = Collection("t")
        col.create_index([("a", 1)], name="a_1")
        assert set(col.list_indexes()) == {"_id_", "a_1"}

    def test_backfills_existing_documents(self):
        col = Collection("t")
        col.insert_many({"i": i} for i in range(20))
        col.create_index([("i", 1)], name="i_1")
        result = col.find_with_stats({"i": {"$gte": 5, "$lte": 9}}, hint="i_1")
        assert len(result) == 5

    def test_duplicate_name_rejected(self):
        col = Collection("t")
        col.create_index([("a", 1)], name="x")
        with pytest.raises(IndexError_):
            col.create_index([("b", 1)], name="x")

    def test_drop_index(self):
        col = Collection("t")
        col.create_index([("a", 1)], name="x")
        col.drop_index("x")
        assert "x" not in col.list_indexes()

    def test_cannot_drop_id_index(self):
        col = Collection("t")
        with pytest.raises(IndexError_):
            col.drop_index("_id_")

    def test_drop_missing_rejected(self):
        col = Collection("t")
        with pytest.raises(IndexError_):
            col.drop_index("nope")


class TestExplainAndStats:
    def test_explain_structure(self):
        col = Collection("t")
        col.create_index([("a", 1)], name="a_1")
        col.insert_many({"a": i} for i in range(10))
        explain = col.explain({"a": {"$gte": 3}})
        assert explain["queryPlanner"]["winningPlan"]["stage"] == "IXSCAN"
        assert explain["executionStats"]["nReturned"] == 7

    def test_stats_keys(self):
        col = Collection("t")
        col.insert_one({"a": 1})
        stats = col.stats()
        assert stats["count"] == 1
        assert stats["size"] > 0
        assert stats["nindexes"] == 1
        assert "_id_" in stats["indexSizes"]


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=80
    ),
    lo=st.integers(min_value=0, max_value=30),
    hi=st.integers(min_value=0, max_value=30),
)
def test_property_index_find_matches_brute_force(values, lo, hi):
    """Range finds through the index equal naive filtering."""
    if lo > hi:
        lo, hi = hi, lo
    col = Collection("t")
    col.create_index([("v", 1)], name="v_1")
    col.insert_many({"v": v} for v in values)
    q = {"v": {"$gte": lo, "$lte": hi}}
    via_index = col.find_with_stats(q, hint="v_1")
    assert via_index.plan.kind == "IXSCAN"
    expected = [v for v in values if lo <= v <= hi]
    assert sorted(d["v"] for d in via_index) == sorted(expected)
