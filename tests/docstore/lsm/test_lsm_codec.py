"""The value codec: reversibility over the store's BSON value set."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.bson import MAXKEY, MINKEY, ObjectId
from repro.docstore.lsm import decode_document, encode_document
from repro.errors import DocumentStoreError

UTC = dt.timezone.utc


def roundtrip(doc):
    return decode_document(encode_document(doc))


class TestRoundTrip:
    def test_every_scalar_type(self):
        doc = {
            "null": None,
            "f": False,
            "t": True,
            "int": -(2**40),
            "float": 3.25,
            "str": "καλημέρα",
            "bytes": b"\x00\xff",
            "aware": dt.datetime(2018, 7, 1, 12, 30, tzinfo=UTC),
            "naive": dt.datetime(2018, 7, 1, 12, 30),
            "oid": ObjectId(),
            "min": MINKEY,
            "max": MAXKEY,
        }
        assert roundtrip(doc) == doc

    def test_nested_containers(self):
        doc = {
            "list": [1, "two", [3.0, None], {"deep": True}],
            "doc": {"a": {"b": {"c": [b"x"]}}},
            "empty_list": [],
            "empty_doc": {},
        }
        assert roundtrip(doc) == doc

    def test_aware_datetimes_normalize_to_utc(self):
        athens = dt.timezone(dt.timedelta(hours=3))
        doc = {"ts": dt.datetime(2018, 7, 1, 15, 0, tzinfo=athens)}
        back = roundtrip(doc)["ts"]
        assert back.tzinfo == UTC
        assert back == doc["ts"]

    def test_unsupported_value_raises(self):
        with pytest.raises(DocumentStoreError):
            encode_document({"bad": object()})

    def test_truncated_payload_raises(self):
        raw = encode_document({"x": "hello"})
        with pytest.raises(DocumentStoreError):
            decode_document(raw[: len(raw) - 2])


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
    st.datetimes(
        min_value=dt.datetime(2000, 1, 1),
        max_value=dt.datetime(2030, 1, 1),
        timezones=st.just(UTC),
    ),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
_document = st.dictionaries(st.text(max_size=8), _value, max_size=6)


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_document)
    def test_arbitrary_documents_roundtrip(self, doc):
        assert roundtrip(doc) == doc
