"""SSTable writing, point lookup, scanning, and the bloom filter."""

import os

import pytest

from repro.docstore.lsm.sstable import BloomFilter, SSTable, write_sstable
from repro.errors import DocumentStoreError


def entries(n, tombstone_every=0):
    out = []
    for i in range(n):
        key = b"key-%05d" % i
        if tombstone_every and i % tombstone_every == 0:
            out.append((key, None))
        else:
            out.append((key, b"value-%05d" % i))
    return out


def build(tmp_path, data, **kwargs):
    path = str(tmp_path / "run-0.sst")
    write_sstable(path, data, **kwargs)
    return SSTable(path)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.sized(500, bits_per_key=10)
        keys = [b"key-%d" % i for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_is_sane(self):
        bloom = BloomFilter.sized(1000, bits_per_key=10)
        for i in range(1000):
            bloom.add(b"present-%d" % i)
        false_hits = sum(
            1 for i in range(10_000) if b"absent-%d" % i in bloom
        )
        assert false_hits < 500  # ~1% expected at 10 bits/key

    def test_serialize_roundtrip(self):
        bloom = BloomFilter.sized(100, bits_per_key=10)
        bloom.add(b"alpha")
        back = BloomFilter.deserialize(bloom.serialize())
        assert b"alpha" in back
        assert back.nbits == bloom.nbits


class TestReadPath:
    def test_every_key_is_found(self, tmp_path):
        data = entries(300)
        table = build(tmp_path, data, sparse_interval=16)
        for key, value in data:
            assert table.get(key) == (True, value)
        table.close()

    def test_missing_keys_miss(self, tmp_path):
        table = build(tmp_path, entries(100))
        assert table.get(b"nope") == (False, None)
        assert table.get(b"key-99999") == (False, None)
        table.close()

    def test_tombstones_read_back_as_present_none(self, tmp_path):
        data = entries(64, tombstone_every=4)
        table = build(tmp_path, data)
        assert table.get(b"key-00000") == (True, None)
        assert table.get(b"key-00001") == (True, b"value-00001")
        table.close()

    def test_iter_entries_preserves_order_and_tombstones(self, tmp_path):
        data = entries(128, tombstone_every=5)
        table = build(tmp_path, data, sparse_interval=8)
        assert list(table.iter_entries()) == data
        table.close()

    def test_sparse_interval_one_still_works(self, tmp_path):
        data = entries(40)
        table = build(tmp_path, data, sparse_interval=1)
        for key, value in data:
            assert table.get(key) == (True, value)
        table.close()


class TestWritePath:
    def test_unsorted_entries_are_rejected(self, tmp_path):
        path = str(tmp_path / "bad.sst")
        with pytest.raises(DocumentStoreError):
            write_sstable(path, [(b"b", b"1"), (b"a", b"2")])

    def test_no_orphan_tmp_file_after_write(self, tmp_path):
        build(tmp_path, entries(10)).close()
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_tombstone_bytes_accounted(self, tmp_path):
        clean = build(tmp_path, entries(50))
        assert clean.tombstone_bytes == 0
        clean.close()
        mixed = build(tmp_path, entries(50, tombstone_every=2))
        assert mixed.tombstone_bytes > 0
        mixed.close()

    def test_remove_deletes_the_file(self, tmp_path):
        table = build(tmp_path, entries(5))
        path = table.path
        table.remove()
        assert not os.path.exists(path)
