"""Crash recovery, property-style.

The contract under test: killing the engine at *any* WAL byte offset
— including mid-frame, the torn tail a real crash leaves — recovers
exactly the state produced by some prefix of the acknowledged
operations, namely every operation whose frame survived in full.
Frame boundaries are recomputed here from first principles (the record
encoding is deterministic), so the expectation never goes through the
replay code it is checking.
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.lsm import DurabilityConfig, LSMEngine
from repro.docstore.lsm.wal import OP_DELETE, OP_PUT, SYNC_OFF, WalRecord, frame


def make_operations(seed, n):
    """A deterministic op stream mixing puts, updates, and deletes."""
    import random

    rng = random.Random(seed)
    ops = []
    for i in range(n):
        key = b"key-%03d" % rng.randrange(n // 2 + 1)
        if rng.random() < 0.25:
            ops.append((OP_DELETE, key, None))
        else:
            ops.append((OP_PUT, key, b"v%04d-" % i + b"x" * rng.randrange(40)))
    return ops


def expected_state(ops):
    """Fold an op prefix into the live key/value map."""
    state = {}
    for op, key, value in ops:
        if op == OP_PUT:
            state[key] = value
        else:
            state.pop(key, None)
    return state


def frame_ends(ops):
    """Cumulative WAL byte offset after each op's frame."""
    ends, offset = [], 0
    for op, key, value in ops:
        offset += len(frame(WalRecord(op, key, value or b"").encode()))
        ends.append(offset)
    return ends


def write_and_abandon(directory, ops):
    """Apply ops and close; the single WAL segment holds all of them."""
    engine = LSMEngine(
        DurabilityConfig(
            directory=directory,
            sync=SYNC_OFF,
            memtable_max_bytes=1 << 30,  # never flush: all state in WAL
            compaction=False,
        )
    )
    engine.recover()
    engine.apply_batch(ops)
    engine.close()
    (wal,) = [
        os.path.join(directory, n)
        for n in os.listdir(directory)
        if n.endswith(".log")
    ]
    return wal


def recover_state(directory):
    engine = LSMEngine(
        DurabilityConfig(
            directory=directory,
            sync=SYNC_OFF,
            memtable_max_bytes=1 << 30,
            compaction=False,
        )
    )
    engine.recover()
    state = dict(engine.scan())
    engine.close()
    return engine, state


class TestCrashAtArbitraryOffsets:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cut=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_truncation_recovers_a_frame_prefix(self, seed, cut):
        ops = make_operations(seed, 40)
        ends = frame_ends(ops)
        offset = int(cut * ends[-1])
        workdir = tempfile.mkdtemp(prefix="lsm_crash_")
        try:
            wal = write_and_abandon(workdir, ops)
            with open(wal, "r+b") as fh:
                fh.truncate(offset)
            survivors = sum(1 for end in ends if end <= offset)
            _, state = recover_state(workdir)
            assert state == expected_state(ops[:survivors])
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_torn_final_record(self, tmp_path):
        # The canonical crash shape: the last frame is cut mid-payload.
        ops = make_operations(7, 20)
        ends = frame_ends(ops)
        wal = write_and_abandon(str(tmp_path), ops)
        with open(wal, "r+b") as fh:
            fh.truncate(ends[-1] - 1)
        _, state = recover_state(str(tmp_path))
        assert state == expected_state(ops[:-1])

    def test_flushed_state_survives_wal_loss(self, tmp_path):
        # Once checkpointed, the data lives in a run: deleting every
        # WAL segment afterwards must lose nothing.
        engine = LSMEngine(
            DurabilityConfig(
                directory=str(tmp_path), sync=SYNC_OFF, compaction=False
            )
        )
        engine.recover()
        ops = make_operations(11, 30)
        engine.apply_batch(ops)
        engine.checkpoint()
        engine.close()
        for name in os.listdir(tmp_path):
            if name.endswith(".log"):
                os.remove(tmp_path / name)
        _, state = recover_state(str(tmp_path))
        assert state == expected_state(ops)

    def test_writes_after_torn_recovery_are_durable(self, tmp_path):
        # Regression: recovery must open a *fresh* WAL segment, never
        # append behind a torn tail (replay stops at the tear, so
        # records behind it would be acknowledged yet unrecoverable).
        ops = make_operations(3, 20)
        ends = frame_ends(ops)
        wal = write_and_abandon(str(tmp_path), ops)
        with open(wal, "r+b") as fh:
            fh.truncate(ends[-1] - 1)
        engine = LSMEngine(
            DurabilityConfig(
                directory=str(tmp_path),
                sync=SYNC_OFF,
                memtable_max_bytes=1 << 30,
                compaction=False,
            )
        )
        engine.recover()
        engine.put_one(b"post-crash", b"must-survive")
        engine.close()
        _, state = recover_state(str(tmp_path))
        expected = expected_state(ops[:-1])
        expected[b"post-crash"] = b"must-survive"
        assert state == expected

    def test_orphan_run_and_tmp_files_are_swept(self, tmp_path):
        engine = LSMEngine(
            DurabilityConfig(
                directory=str(tmp_path), sync=SYNC_OFF, compaction=False
            )
        )
        engine.recover()
        engine.apply_batch(make_operations(5, 10))
        engine.checkpoint()
        engine.close()
        # Simulate a crash mid-flush: an uncommitted run + temp file,
        # plus a manifest rewrite cut before its os.replace.
        (tmp_path / "run-00000099.sst").write_bytes(b"junk")
        (tmp_path / "run-00000098.sst.tmp").write_bytes(b"junk")
        (tmp_path / "MANIFEST.json.manifest-tmp").write_bytes(b"junk")
        engine2, _ = recover_state(str(tmp_path))
        names = set(os.listdir(tmp_path))
        assert "run-00000099.sst" not in names
        assert "run-00000098.sst.tmp" not in names
        assert "MANIFEST.json.manifest-tmp" not in names
        assert "MANIFEST.json" in names
