"""Size-tiered picking and the k-way merge."""

from repro.docstore.lsm.compaction import merge_runs, pick_compaction
from repro.docstore.lsm.sstable import SSTable, write_sstable


def make_run(tmp_path, name, data):
    path = str(tmp_path / name)
    write_sstable(path, sorted(data))
    return SSTable(path)


class TestPickCompaction:
    def test_too_few_runs_is_none(self, tmp_path):
        runs = [
            make_run(tmp_path, "r%d.sst" % i, [(b"k", b"v")])
            for i in range(3)
        ]
        assert pick_compaction(runs, min_runs=4) is None
        for run in runs:
            run.close()

    def test_same_band_runs_are_picked(self, tmp_path):
        runs = [
            make_run(
                tmp_path,
                "r%d.sst" % i,
                [(b"key-%d-%d" % (i, j), b"v" * 20) for j in range(10)],
            )
            for i in range(4)
        ]
        picked = pick_compaction(runs, min_runs=4)
        assert picked == [0, 1, 2, 3]
        for run in runs:
            run.close()

    def test_band_mismatch_is_not_picked(self, tmp_path):
        small = [
            make_run(tmp_path, "s%d.sst" % i, [(b"k%d" % i, b"v")])
            for i in range(2)
        ]
        big = [
            make_run(
                tmp_path,
                "b%d.sst" % i,
                [(b"key-%d-%d" % (i, j), b"v" * 400) for j in range(50)],
            )
            for i in range(2)
        ]
        assert pick_compaction(small + big, min_runs=3) is None
        for run in small + big:
            run.close()


class TestMergeRuns:
    def test_newest_version_wins(self, tmp_path):
        old = make_run(tmp_path, "old.sst", [(b"a", b"1"), (b"b", b"1")])
        new = make_run(tmp_path, "new.sst", [(b"b", b"2"), (b"c", b"2")])
        merged = list(merge_runs([old, new], drop_tombstones=False))
        assert merged == [(b"a", b"1"), (b"b", b"2"), (b"c", b"2")]
        old.close()
        new.close()

    def test_tombstones_kept_when_not_oldest(self, tmp_path):
        old = make_run(tmp_path, "old.sst", [(b"a", b"1")])
        new = make_run(tmp_path, "new.sst", [(b"a", None)])
        merged = list(merge_runs([old, new], drop_tombstones=False))
        assert merged == [(b"a", None)]
        old.close()
        new.close()

    def test_tombstones_dropped_when_oldest_included(self, tmp_path):
        old = make_run(tmp_path, "old.sst", [(b"a", b"1"), (b"b", b"1")])
        new = make_run(tmp_path, "new.sst", [(b"a", None)])
        merged = list(merge_runs([old, new], drop_tombstones=True))
        assert merged == [(b"b", b"1")]
        old.close()
        new.close()

    def test_three_way_merge_is_sorted_and_deduplicated(self, tmp_path):
        runs = [
            make_run(
                tmp_path,
                "r%d.sst" % age,
                [(b"key-%03d" % k, b"run%d" % age) for k in range(age, 30, 3)],
            )
            for age in range(3)
        ]
        merged = list(merge_runs(runs, drop_tombstones=False))
        keys = [k for k, _ in merged]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        # key-002 exists only in the newest run (age 2).
        assert dict(merged)[b"key-002"] == b"run2"
        for run in runs:
            run.close()
