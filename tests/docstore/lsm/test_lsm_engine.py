"""LSMEngine behaviour: writes, flush, compaction, events, stats."""

import os
import threading

import pytest

from repro.docstore.lsm import DurabilityConfig, LSMEngine
from repro.errors import DocumentStoreError


def make_engine(tmp_path, **overrides):
    defaults = dict(
        directory=str(tmp_path),
        memtable_max_bytes=2_000,
        compaction_min_runs=2,
        compaction=False,
    )
    defaults.update(overrides)
    engine = LSMEngine(DurabilityConfig(**defaults))
    engine.recover()
    return engine


def fill(engine, n, start=0):
    for i in range(start, start + n):
        engine.put_one(b"key-%05d" % i, b"value-%05d" % i * 4)


class TestReadYourWrites:
    def test_get_after_put_and_delete(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        engine.put_one(b"a", b"1")
        engine.put_one(b"b", b"2")
        engine.delete_one(b"a")
        assert engine.get(b"a") is None
        assert engine.get(b"b") == b"2"
        assert engine.get(b"absent") is None
        engine.close()

    def test_reads_span_memtable_and_runs(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        fill(engine, 50)
        engine.checkpoint()  # everything now in a run
        engine.put_one(b"key-00000", b"updated")
        engine.delete_one(b"key-00001")
        assert engine.get(b"key-00000") == b"updated"
        assert engine.get(b"key-00001") is None
        assert engine.get(b"key-00002") == b"value-00002" * 4
        engine.close()

    def test_scan_merges_newest_versions(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        fill(engine, 20)
        engine.checkpoint()
        engine.put_one(b"key-00003", b"fresh")
        engine.delete_one(b"key-00004")
        live = dict(engine.scan())
        assert live[b"key-00003"] == b"fresh"
        assert b"key-00004" not in live
        assert len(live) == 19
        engine.close()


class TestFlush:
    def test_budget_overflow_flushes_automatically(self, tmp_path):
        engine = make_engine(tmp_path)
        fill(engine, 200)
        stats = engine.stats()
        assert stats.flushes > 0
        assert stats.n_runs > 0
        engine.close()

    def test_flush_deletes_covered_wal_segments(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        fill(engine, 30)
        engine.checkpoint()
        logs = [p for p in tmp_path.iterdir() if p.suffix == ".log"]
        assert len(logs) == 1  # only the fresh segment survives
        engine.close()

    def test_empty_checkpoint_is_a_no_op(self, tmp_path):
        engine = make_engine(tmp_path)
        before = engine.stats().flushes
        engine.checkpoint()
        assert engine.stats().flushes == before
        engine.close()

    def test_failed_run_write_leaves_state_intact(
        self, tmp_path, monkeypatch
    ):
        # Regression: a flush that dies mid-run-write (ENOSPC shape)
        # must not swap the memtable or drop WAL segments — the data
        # stays visible and a later flush succeeds cleanly.
        import repro.docstore.lsm.engine as engine_mod

        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        fill(engine, 20)

        def boom(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(engine_mod, "write_sstable", boom)
        with pytest.raises(OSError):
            engine.checkpoint()
        monkeypatch.undo()
        stats = engine.stats()
        assert stats.flushes == 0
        assert stats.n_runs == 0
        assert stats.memtable_entries == 20
        assert engine.get(b"key-00000") == b"value-00000" * 4
        engine.checkpoint()
        assert engine.stats().n_runs == 1
        logs = [p for p in tmp_path.iterdir() if p.suffix == ".log"]
        assert len(logs) == 1  # old segments deleted only on success
        engine.close()
        engine2 = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        assert engine2.get(b"key-00019") == b"value-00019" * 4
        engine2.close()


class TestCompaction:
    def test_compact_now_merges_runs(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        for round_ in range(4):
            fill(engine, 25, start=round_ * 10)
            engine.checkpoint()
        before = engine.stats()
        assert before.n_runs == 4
        assert engine.compact_now() is True
        after = engine.stats()
        assert after.n_runs < before.n_runs
        assert after.compactions == before.compactions + 1
        assert dict(engine.scan()) == {
            b"key-%05d" % i: b"value-%05d" % i * 4 for i in range(55)
        }
        engine.close()

    def test_compaction_drops_tombstones_of_oldest_band(self, tmp_path):
        # Two same-size-band runs: the old generation, then a run that
        # tombstones all of it and writes a replacement generation.
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        value = b"v" * 200
        for i in range(30):
            engine.put_one(b"old-%05d" % i, value)
        engine.checkpoint()
        for i in range(30):
            engine.delete_one(b"old-%05d" % i)
            engine.put_one(b"new-%05d" % i, value)
        engine.checkpoint()
        assert engine.stats().run_tombstone_bytes > 0
        assert engine.compact_now() is True
        # The merge included the oldest run, so the tombstones — now
        # shadowing nothing — were dropped outright.
        assert engine.stats().run_tombstone_bytes == 0
        live = dict(engine.scan())
        assert len(live) == 30
        assert all(key.startswith(b"new-") for key in live)
        engine.close()

    def test_retired_runs_stay_readable_for_snapshots(self, tmp_path):
        # Regression: compaction retires inputs by unlinking only, so
        # a reader that snapshotted the run list just before the swap
        # keeps pread()ing them — closing would hand it a dead fd (or
        # a recycled one pointing at the wrong file).
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        for round_ in range(2):
            fill(engine, 20, start=round_ * 20)
            engine.checkpoint()
        with engine._manifest_lock:
            snapshot = list(engine._runs)
        assert engine.compact_now() is True
        assert not os.path.exists(snapshot[0].path)
        found, value = snapshot[0].get(b"key-00000")
        assert found and value == b"value-00000" * 4
        for run in snapshot:
            run.close()
        engine.close()

    def test_no_loss_under_concurrent_writers_and_compaction(
        self, tmp_path
    ):
        # Flushes (under the write lock) and background compactions
        # allocate file numbers and retire runs concurrently; racing
        # allocations or eager fd closes would lose or corrupt data.
        engine = make_engine(
            tmp_path,
            memtable_max_bytes=1_500,
            compaction=True,
            compaction_min_runs=2,
            sync="off",
        )
        n_threads, per_thread = 4, 150
        errors = []

        def writer(t):
            try:
                for i in range(per_thread):
                    key = b"t%d-%05d" % (t, i)
                    engine.put_one(key, key * 6)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        # Reads race flushes and run retirement the whole time.
        for _ in range(50):
            engine.get(b"t0-00000")
            dict(engine.scan())
        for thread in threads:
            thread.join()
        assert not errors
        live = dict(engine.scan())
        assert len(live) == n_threads * per_thread
        for t in range(n_threads):
            for i in range(per_thread):
                key = b"t%d-%05d" % (t, i)
                assert live[key] == key * 6
        engine.close()

    def test_compact_now_requires_background_off(self, tmp_path):
        engine = make_engine(tmp_path, compaction=True)
        with pytest.raises(DocumentStoreError):
            engine.compact_now()
        engine.close()

    def test_background_compactor_converges(self, tmp_path):
        import time

        engine = make_engine(tmp_path, compaction=True)
        fill(engine, 400)
        deadline = time.time() + 10
        while time.time() < deadline:
            if engine.stats().compactions > 0:
                break
            time.sleep(0.05)
        assert engine.stats().compactions > 0
        assert len(dict(engine.scan())) == 400
        engine.close()


class TestEventsAndLifecycle:
    def test_flush_and_compaction_bump_the_epoch(self, tmp_path):
        events = []
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        engine.add_listener(events.append)
        epoch0 = engine.storage_epoch
        fill(engine, 20)
        engine.checkpoint()
        assert engine.storage_epoch > epoch0
        assert [e.kind for e in events] == ["flush"]
        assert events[-1].epoch == engine.storage_epoch
        engine.close()

    def test_double_recover_raises(self, tmp_path):
        engine = make_engine(tmp_path)
        with pytest.raises(DocumentStoreError):
            engine.recover()
        engine.close()

    def test_use_after_close_raises(self, tmp_path):
        engine = make_engine(tmp_path)
        engine.close()
        with pytest.raises(DocumentStoreError):
            engine.put_one(b"k", b"v")

    def test_apply_batch_is_atomic_in_the_wal(self, tmp_path):
        engine = make_engine(tmp_path, memtable_max_bytes=1 << 20)
        from repro.docstore.lsm.wal import OP_DELETE, OP_PUT

        engine.apply_batch(
            [
                (OP_PUT, b"a", b"1"),
                (OP_PUT, b"b", b"2"),
                (OP_DELETE, b"a", None),
            ]
        )
        assert engine.get(b"a") is None
        assert engine.get(b"b") == b"2"
        engine.close()
