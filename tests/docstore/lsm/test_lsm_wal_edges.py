"""WAL codec and frame edge cases the round-trip tests never hit.

Zero-length payloads, keys at pathological sizes, a torn tail whose
bytes *happen* to frame-validate (the CRC-collision case), and replay
across a segment boundary — each pins down a recovery behavior a
crash can actually demand.
"""

import struct
import zlib

import pytest

from repro.docstore.lsm import DurabilityConfig, LSMEngine
from repro.docstore.lsm.wal import (
    OP_DELETE,
    OP_PUT,
    SYNC_OFF,
    WalRecord,
    WriteAheadLog,
    frame,
    iter_wal_records,
)

_FRAME_HEADER = struct.Struct("<II")


class TestZeroLengthPayloads:
    def test_empty_key_and_value_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(
            [
                WalRecord(op=OP_PUT, key=b"", value=b""),
                WalRecord(op=OP_PUT, key=b"k", value=b""),
                WalRecord(op=OP_DELETE, key=b""),
            ]
        )
        wal.close()
        replayed = list(iter_wal_records(path))
        assert [(r.op, r.key, r.value) for r in replayed] == [
            (OP_PUT, b"", b""),
            (OP_PUT, b"k", b""),
            (OP_DELETE, b"", b""),
        ]

    def test_empty_frame_ends_replay(self, tmp_path):
        # A zero-length *frame payload* cannot hold a record header;
        # only corruption produces it, so replay must stop there —
        # keeping what came before — rather than raise out of recovery.
        path = tmp_path / "wal.log"
        good = frame(WalRecord(op=OP_PUT, key=b"a", value=b"1").encode())
        path.write_bytes(good + frame(b"") + good)
        replayed = list(iter_wal_records(str(path)))
        assert [r.key for r in replayed] == [b"a"]


class TestMaxSizeKeys:
    @pytest.mark.parametrize("key_len", [1, 255, 65_536, 1_000_000])
    def test_round_trip_at_size(self, tmp_path, key_len):
        path = str(tmp_path / "wal.log")
        key = bytes([key_len % 251]) * key_len
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append([WalRecord(op=OP_PUT, key=key, value=b"v" * 512)])
        wal.close()
        (record,) = iter_wal_records(path)
        assert record.key == key
        assert record.value == b"v" * 512

    def test_key_length_field_beyond_payload_ends_replay(self, tmp_path):
        # key_len claims more bytes than the payload holds; the frame
        # CRC is valid (we computed it over the short payload), so only
        # record-level validation can reject it.
        path = tmp_path / "wal.log"
        good = frame(WalRecord(op=OP_PUT, key=b"a", value=b"1").encode())
        bogus = struct.pack("<BI", OP_PUT, 1_000) + b"short"
        path.write_bytes(good + frame(bogus))
        replayed = list(iter_wal_records(str(path)))
        assert [r.key for r in replayed] == [b"a"]


class TestCrcCollisionOnTornFrame:
    def _torn_with_valid_header(self):
        """A torn tail whose surviving bytes frame-validate.

        Take a real frame, cut the payload mid-record, and give it the
        header a CRC collision would fake: correct length and a CRC
        that matches the truncated bytes.  The frame layer accepts it;
        the record layer must be the backstop.
        """
        payload = WalRecord(
            op=OP_PUT, key=b"victim", value=b"payload"
        ).encode()
        torn = payload[:4]  # shorter than the record header itself
        return _FRAME_HEADER.pack(len(torn), zlib.crc32(torn)) + torn

    def test_replay_stops_instead_of_raising(self, tmp_path):
        path = tmp_path / "wal.log"
        good = frame(WalRecord(op=OP_PUT, key=b"a", value=b"1").encode())
        path.write_bytes(good + self._torn_with_valid_header())
        replayed = list(iter_wal_records(str(path)))
        assert [r.key for r in replayed] == [b"a"]

    def test_unknown_op_with_valid_crc_ends_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        good = frame(WalRecord(op=OP_PUT, key=b"a", value=b"1").encode())
        garbage = frame(struct.pack("<BI", 99, 1) + b"k")
        path.write_bytes(good + garbage + good)
        # Corruption is a boundary, not a skip: the second good frame
        # after it is unreachable, exactly like a torn tail.
        replayed = list(iter_wal_records(str(path)))
        assert [r.key for r in replayed] == [b"a"]


class TestReplayAcrossSegmentBoundary:
    def _config(self, directory):
        return DurabilityConfig(
            directory=directory,
            sync="always",
            memtable_max_bytes=1 << 20,
            compaction=False,
        )

    def test_two_crash_generations_replay_in_segment_order(
        self, tmp_path
    ):
        config = self._config(str(tmp_path))
        first = LSMEngine(config)
        first.recover()
        first.put_one(b"k1", b"gen-one")
        first.put_one(b"shared", b"old")
        # No close(): the process "dies" with the WAL un-truncated.

        second = LSMEngine(config)
        second.recover()
        assert second.get(b"k1") == b"gen-one"
        second.put_one(b"k2", b"gen-two")
        second.put_one(b"shared", b"new")
        # Die again: now two live segments cover one memtable.

        wals = sorted(p.name for p in tmp_path.glob("wal-*.log"))
        assert len(wals) >= 2

        third = LSMEngine(config)
        third.recover()
        try:
            assert third.get(b"k1") == b"gen-one"
            assert third.get(b"k2") == b"gen-two"
            # Later segment wins for the overwritten key — replay
            # order across the boundary is the write order.
            assert third.get(b"shared") == b"new"
        finally:
            third.close()

    def test_flush_after_multi_segment_recovery_drops_them_all(
        self, tmp_path
    ):
        config = self._config(str(tmp_path))
        for i in range(3):
            engine = LSMEngine(config)
            engine.recover()
            engine.put_one(b"key-%d" % i, b"value")
            # Crash between generations: segments accumulate.
        engine = LSMEngine(config)
        engine.recover()
        engine.checkpoint()
        try:
            live = sorted(p.name for p in tmp_path.glob("wal-*.log"))
            # Every covered segment is gone; exactly the fresh one
            # opened after the flush remains.
            assert len(live) == 1
            for i in range(3):
                assert engine.get(b"key-%d" % i) == b"value"
        finally:
            engine.close()
