"""Every LSM test runs under the filesystem-trace oracle.

The shim records each test's syscall-level effect trace over the
engine, WAL, and SSTable modules and applies the online ordering
checkers (unsynced rename, unlink before directory fsync, pread of a
closed descriptor) live.  A violation anywhere in the suite fails
that test at teardown — the whole suite doubles as the oracle's
workload, so any write-path regression the static FS rules describe
must also show up here or the cross-validation tests lose their
other half.

Tests that monkeypatch engine symbols (``write_sstable`` fault
injection) are unaffected: the shim rebinds only the ``os`` and
``open`` names, never the engine's own functions.
"""

import pytest

from repro.sanitizer import FsTracer


@pytest.fixture(autouse=True)
def fs_trace_oracle():
    """Trace the LSM modules for the duration of one test."""
    tracer = FsTracer()
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()
    tracer.assert_clean()
