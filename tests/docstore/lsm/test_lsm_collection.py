"""The durable write path at the Collection/Database/service layers.

Covers the PR's integration contract: ``durability=`` mounts the LSM
engine without disturbing the default in-memory behaviour, writes
survive close-and-reopen, storage events carry the collection name up
through the database, the query service's plan cache treats a flush
like any other invalidation, and the storage-size model accounts for
tombstones (satellite 1).
"""

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.docstore.collection import Collection
from repro.docstore.database import Database
from repro.docstore.lsm import DurabilityConfig
from repro.docstore.storage import StorageModel, collection_data_size
from repro.errors import DocumentStoreError
from repro.service import QueryService, ServiceConfig


def durable(tmp_path, **overrides):
    defaults = dict(directory=str(tmp_path), compaction=False)
    defaults.update(overrides)
    return DurabilityConfig(**defaults)


class TestCollectionRoundTrip:
    def test_writes_survive_reopen(self, tmp_path):
        config = durable(tmp_path)
        collection = Collection("traces", durability=config)
        ids = collection.insert_many(
            [{"x": i, "tag": "a" if i % 2 else "b"} for i in range(40)]
        )
        collection.delete_many({"tag": "b"})
        collection.update_many({"x": {"$gte": 30}}, {"$set": {"hot": True}})
        collection.close()

        reopened = Collection("traces", durability=config)
        assert len(reopened) == 20
        assert {d["_id"] for d in reopened.find({})} == set(ids[1::2])
        assert len(list(reopened.find({"hot": True}))) == 5
        reopened.close()

    def test_insert_one_and_indexes_after_recovery(self, tmp_path):
        config = durable(tmp_path)
        collection = Collection("traces", durability=config)
        collection.create_index([("x", 1)])
        collection.insert_one({"_id": 1, "x": 10})
        collection.close()

        reopened = Collection("traces", durability=config)
        reopened.create_index([("x", 1)])
        result = reopened.find({"x": 10})
        assert [d["_id"] for d in result] == [1]
        reopened.close()

    def test_duplicate_key_mid_batch_keeps_prefix_durable(self, tmp_path):
        config = durable(tmp_path)
        collection = Collection("traces", durability=config)
        with pytest.raises(DocumentStoreError):
            collection.insert_many(
                [{"_id": 1}, {"_id": 2}, {"_id": 1}, {"_id": 3}]
            )
        collection.close()
        reopened = Collection("traces", durability=config)
        assert {d["_id"] for d in reopened.find({})} == {1, 2}
        reopened.close()

    def test_default_collection_has_no_engine(self):
        collection = Collection("traces")
        collection.insert_one({"x": 1})
        assert collection.engine is None
        assert "durability" not in collection.stats()
        collection.close()  # a no-op, but must exist


class TestDatabaseIntegration:
    def test_events_carry_the_collection_name(self, tmp_path):
        events = []
        db = Database(
            "fleet",
            durability=durable(tmp_path, memtable_max_bytes=2_000),
        )
        db.add_storage_listener(events.append)
        col = db["traces"]
        col.insert_many([{"x": i, "pad": "p" * 100} for i in range(100)])
        assert events, "budget overflow should have flushed"
        assert {e.collection for e in events} == {"traces"}
        assert {e.kind for e in events} <= {"flush", "compaction"}
        db.close()

    def test_reopen_recovers_every_collection(self, tmp_path):
        db = Database("fleet", durability=durable(tmp_path))
        db["a"].insert_many([{"i": i} for i in range(5)])
        db["b"].insert_many([{"i": i} for i in range(7)])
        db.close()
        reopened = Database("fleet", durability=durable(tmp_path))
        assert len(reopened["a"]) == 5
        assert len(reopened["b"]) == 7
        reopened.close()

    def test_drop_collection_removes_the_files(self, tmp_path):
        db = Database("fleet", durability=durable(tmp_path))
        db["doomed"].insert_one({"x": 1})
        db.drop_collection("doomed")
        assert not (tmp_path / "doomed").exists()
        db.close()


class TestServiceCacheEpoch:
    def test_flush_invalidates_cached_plans(self, tmp_path):
        cluster = ShardedCluster(
            topology=ClusterTopology(n_shards=2),
            durability=DurabilityConfig(
                directory=str(tmp_path),
                memtable_max_bytes=2_000,
                compaction=False,
            ),
        )
        cluster.shard_collection("traces", [("x", 1)], strategy="range")
        cluster.insert_many("traces", [{"x": i} for i in range(10)])
        config = ServiceConfig(max_workers=2, simulate_shard_latency=False)
        with QueryService(cluster, config) as service:
            service.find("traces", {"x": {"$gte": 3}})
            service.find("traces", {"x": {"$gte": 3}})
            stats = service.plan_cache.stats()
            assert stats["hits"] >= 1
            assert stats["compiledEntries"] > 0
            assert stats["shapeEntries"] > 0
            # Pad documents force memtable overflow -> flush events on
            # every shard -> the cached plans for "traces" must go.
            cluster.insert_many(
                "traces",
                [{"x": i, "pad": "p" * 200} for i in range(10, 60)],
            )
            after = service.plan_cache.stats()
            assert after["compiledEntries"] == 0
            assert after["shapeEntries"] == 0
            assert after["evictions"] > stats["evictions"]
        cluster.close()


class TestStorageSizeAccounting:
    def test_tombstones_add_to_storage_size(self):
        model = StorageModel()
        docs = [{"_id": i, "x": "payload" * 4} for i in range(10)]
        base = model.storage_size(docs)
        with_tombstones = model.storage_size(docs, tombstone_bytes=500)
        assert with_tombstones == base + 500

    def test_storage_size_from_data_is_generator_safe(self):
        model = StorageModel()
        docs = [{"_id": i, "x": "payload" * 4} for i in range(10)]
        data_size = collection_data_size(d for d in docs)
        assert data_size == collection_data_size(docs)
        assert model.storage_size_from_data(
            data_size
        ) == model.storage_size(docs)

    def test_durable_collection_stats_report_tombstones(self, tmp_path):
        config = durable(tmp_path)
        collection = Collection("traces", durability=config)
        collection.insert_many([{"_id": i, "x": "y" * 50} for i in range(20)])
        collection.checkpoint()
        collection.delete_many({"_id": {"$lt": 10}})
        collection.checkpoint()
        stats = collection.stats()
        assert stats["durability"]["tombstoneBytes"] > 0
        assert stats["durability"]["runs"] == 2
        assert stats["storageSize"] > StorageModel().storage_size(
            list(collection.find({}))
        )
        collection.close()
