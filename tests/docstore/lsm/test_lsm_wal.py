"""WAL framing, replay semantics, and group commit."""

import os
import zlib

import pytest

from repro.docstore.lsm.wal import (
    OP_DELETE,
    OP_PUT,
    SYNC_ALWAYS,
    SYNC_OFF,
    WalRecord,
    WriteAheadLog,
    frame,
    iter_wal_records,
)
from repro.errors import DocumentStoreError


def records(n):
    return [
        WalRecord(OP_PUT, b"key-%03d" % i, b"value-%03d" % i)
        for i in range(n)
    ]


class TestFraming:
    def test_record_roundtrip(self):
        for rec in (
            WalRecord(OP_PUT, b"k", b"v"),
            WalRecord(OP_PUT, b"k", b""),
            WalRecord(OP_DELETE, b"k"),
        ):
            assert WalRecord.decode(rec.encode()) == rec

    def test_frame_carries_crc(self):
        payload = WalRecord(OP_PUT, b"a", b"b").encode()
        framed = frame(payload)
        assert len(framed) == 8 + len(payload)
        assert zlib.crc32(payload) == int.from_bytes(framed[4:8], "little")


class TestReplay:
    def test_full_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(records(5))
        wal.close()
        assert list(iter_wal_records(path)) == records(5)

    def test_torn_final_frame_is_dropped(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(records(5))
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        assert list(iter_wal_records(path)) == records(4)

    def test_corrupt_frame_stops_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(records(5))
        wal.close()
        # Flip one payload byte in the middle record.
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        replayed = list(iter_wal_records(path))
        assert len(replayed) < 5
        for got, expected in zip(replayed, records(5)):
            assert got == expected

    def test_empty_file_replays_nothing(self, tmp_path):
        path = str(tmp_path / "wal.log")
        open(path, "wb").close()
        assert list(iter_wal_records(path)) == []


class TestGroupCommit:
    def test_always_policy_is_durable_at_return(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=SYNC_ALWAYS)
        lsn = wal.append(records(3))
        assert lsn == 2
        assert wal.durable_lsn >= lsn
        wal.close()

    def test_lsns_are_contiguous_across_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=SYNC_OFF)
        assert wal.append(records(2)) == 1
        assert wal.append(records(3)) == 4
        assert wal.written_lsn == 4
        wal.close()

    def test_close_makes_everything_durable(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(records(7))
        wal.close()
        assert len(list(iter_wal_records(path))) == 7

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"), sync=SYNC_OFF)
        wal.close()
        with pytest.raises(DocumentStoreError):
            wal.append(records(1))

    def test_unknown_policy_raises(self, tmp_path):
        with pytest.raises(DocumentStoreError):
            WriteAheadLog(str(tmp_path / "wal.log"), sync="yolo")

    def test_delete_removes_the_file(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=SYNC_OFF)
        wal.append(records(1))
        wal.close()
        wal.delete()
        assert not os.path.exists(path)
