"""Tests for dotted-path document helpers."""

from repro.docstore.document import (
    MISSING,
    deep_copy_document,
    get_path,
    has_path,
    iter_paths,
    set_path,
)

DOC = {
    "a": 1,
    "b": {"c": 2, "d": {"e": 3}},
    "arr": [10, {"x": 20}],
    "nul": None,
}


class TestGetPath:
    def test_top_level(self):
        assert get_path(DOC, "a") == 1

    def test_nested(self):
        assert get_path(DOC, "b.c") == 2
        assert get_path(DOC, "b.d.e") == 3

    def test_missing_returns_sentinel(self):
        assert get_path(DOC, "zzz") is MISSING
        assert get_path(DOC, "b.zzz") is MISSING
        assert get_path(DOC, "a.b") is MISSING  # scalar has no children

    def test_none_is_not_missing(self):
        assert get_path(DOC, "nul") is None
        assert get_path(DOC, "nul") is not MISSING

    def test_array_index(self):
        assert get_path(DOC, "arr.0") == 10
        assert get_path(DOC, "arr.1.x") == 20
        assert get_path(DOC, "arr.5") is MISSING
        assert get_path(DOC, "arr.notanum") is MISSING

    def test_geojson_coordinates(self):
        doc = {"location": {"type": "Point", "coordinates": [23.7, 37.9]}}
        assert get_path(doc, "location.coordinates.0") == 23.7
        assert get_path(doc, "location.coordinates.1") == 37.9


class TestHasPath:
    def test_present(self):
        assert has_path(DOC, "b.d.e")
        assert has_path(DOC, "nul")

    def test_absent(self):
        assert not has_path(DOC, "b.d.zzz")


class TestSetPath:
    def test_simple(self):
        doc = {}
        set_path(doc, "a", 1)
        assert doc == {"a": 1}

    def test_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 1)
        assert doc == {"a": {"b": {"c": 1}}}

    def test_overwrites_scalar_intermediate(self):
        doc = {"a": 5}
        set_path(doc, "a.b", 1)
        assert doc == {"a": {"b": 1}}

    def test_preserves_siblings(self):
        doc = {"a": {"x": 1}}
        set_path(doc, "a.y", 2)
        assert doc == {"a": {"x": 1, "y": 2}}


class TestIterPaths:
    def test_leaves_only(self):
        paths = dict(iter_paths(DOC))
        assert paths["a"] == 1
        assert paths["b.c"] == 2
        assert paths["b.d.e"] == 3
        assert "b" not in paths

    def test_arrays_are_leaves(self):
        paths = dict(iter_paths({"arr": [1, 2]}))
        assert paths == {"arr": [1, 2]}

    def test_empty_dict_is_leaf(self):
        paths = dict(iter_paths({"a": {}}))
        assert paths == {"a": {}}


class TestDeepCopy:
    def test_no_aliasing(self):
        original = {"a": {"b": [1, 2]}}
        copy = deep_copy_document(original)
        copy["a"]["b"].append(3)
        assert original["a"]["b"] == [1, 2]

    def test_missing_sentinel_is_falsy_singleton(self):
        assert not MISSING
        from repro.docstore.document import _Missing

        assert _Missing() is MISSING
