"""Tests for multikey indexes (arrays and LineString 2dsphere cells)."""

import pytest

from repro.docstore.collection import Collection
from repro.docstore.index import Index, IndexDefinition
from repro.errors import IndexError_


class TestArrayMultikey:
    def test_one_entry_per_element(self):
        idx = Index(IndexDefinition.from_spec([("tags", 1)]))
        idx.insert_document(1, {"tags": ["a", "b", "c"]})
        assert len(idx.tree) == 3
        assert idx.is_multikey()

    def test_duplicate_elements_single_entry(self):
        idx = Index(IndexDefinition.from_spec([("tags", 1)]))
        idx.insert_document(1, {"tags": ["a", "a", "b"]})
        assert len(idx.tree) == 2

    def test_empty_array_indexes_null(self):
        idx = Index(IndexDefinition.from_spec([("tags", 1)]))
        idx.insert_document(1, {"tags": []})
        assert len(idx.tree) == 1

    def test_remove_clears_all_entries(self):
        idx = Index(IndexDefinition.from_spec([("tags", 1)]))
        doc = {"tags": ["a", "b", "c"]}
        idx.insert_document(1, doc)
        idx.remove_document(1, doc)
        assert len(idx.tree) == 0

    def test_two_array_fields_rejected(self):
        idx = Index(IndexDefinition.from_spec([("a", 1), ("b", 1)]))
        with pytest.raises(IndexError_):
            idx.insert_document(1, {"a": [1], "b": [2]})

    def test_unique_multikey_rejected(self):
        idx = Index(IndexDefinition.from_spec([("a", 1)], unique=True))
        with pytest.raises(IndexError_):
            idx.insert_document(1, {"a": [1, 2]})

    def test_compound_array_plus_scalar(self):
        idx = Index(IndexDefinition.from_spec([("cells", 1), ("d", 1)]))
        idx.insert_document(1, {"cells": [10, 20], "d": 5})
        assert len(idx.tree) == 2


class TestMultikeyQueries:
    def test_range_scan_finds_any_element(self):
        col = Collection("t")
        col.create_index([("cells", 1)], name="cells_1")
        col.insert_one({"_id": 1, "cells": [5, 100]})
        col.insert_one({"_id": 2, "cells": [200, 300]})
        result = col.find_with_stats(
            {"cells": {"$gte": 90, "$lte": 110}}, hint="cells_1"
        )
        assert [d["_id"] for d in result] == [1]
        assert result.plan.kind == "IXSCAN"

    def test_no_duplicate_results_when_multiple_elements_match(self):
        col = Collection("t")
        col.create_index([("cells", 1)], name="cells_1")
        col.insert_one({"_id": 1, "cells": [10, 11, 12]})
        result = col.find_with_stats(
            {"cells": {"$gte": 0, "$lte": 100}}, hint="cells_1"
        )
        assert len(result) == 1

    def test_or_ranges_over_array(self):
        # The trajectory query pattern: $or of cell ranges on an array.
        col = Collection("t")
        col.create_index([("cells", 1), ("d", 1)], name="cells_d")
        col.insert_one({"_id": 1, "cells": [5, 50], "d": 1})
        col.insert_one({"_id": 2, "cells": [500], "d": 1})
        q = {
            "$or": [
                {"cells": {"$gte": 0, "$lte": 10}},
                {"cells": {"$gte": 400, "$lte": 600}},
            ],
            "d": 1,
        }
        result = col.find_with_stats(q, hint="cells_d")
        assert sorted(d["_id"] for d in result) == [1, 2]


class TestLineString2dsphere:
    def _doc(self, coords):
        return {
            "route": {"type": "LineString", "coordinates": coords},
        }

    def test_linestring_indexes_multiple_cells(self):
        idx = Index(
            IndexDefinition.from_spec([("route", "2dsphere")]),
        )
        # A long line crosses many 26-bit GeoHash cells.
        idx.insert_document(1, self._doc([[23.0, 38.0], [24.0, 38.0]]))
        assert len(idx.tree) > 5
        assert idx.is_multikey()

    def test_short_line_fewer_cells(self):
        idx = Index(IndexDefinition.from_spec([("route", "2dsphere")]))
        idx.insert_document(1, self._doc([[23.0, 38.0], [23.001, 38.0]]))
        short_cells = len(idx.tree)
        idx.insert_document(2, self._doc([[23.0, 38.0], [23.5, 38.0]]))
        assert len(idx.tree) - short_cells > short_cells

    def test_geointersects_query_via_index(self):
        col = Collection("t")
        col.create_index([("route", "2dsphere")], name="route_2d")
        col.insert_one(
            {"_id": 1, **self._doc([[23.0, 38.0], [24.0, 38.0]])}
        )
        col.insert_one(
            {"_id": 2, **self._doc([[10.0, 50.0], [11.0, 50.0]])}
        )
        q = {
            "route": {
                "$geoIntersects": {
                    "$geometry": {
                        "type": "Polygon",
                        "coordinates": [
                            [
                                [23.4, 37.9],
                                [23.6, 37.9],
                                [23.6, 38.1],
                                [23.4, 38.1],
                                [23.4, 37.9],
                            ]
                        ],
                    }
                }
            }
        }
        result = col.find_with_stats(q)
        assert [d["_id"] for d in result] == [1]

    def test_geowithin_requires_full_containment(self):
        from repro.docstore.matcher import matches

        inside = self._doc([[23.1, 38.0], [23.2, 38.05]])
        crossing = self._doc([[23.1, 38.0], [30.0, 40.0]])
        q = {
            "route": {
                "$geoWithin": {"$box": [[23.0, 37.9], [23.5, 38.2]]}
            }
        }
        assert matches(q, inside)
        assert not matches(q, crossing)
