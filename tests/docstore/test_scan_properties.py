"""Property-based tests: index scans vs a brute-force oracle."""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.collection import Collection
from repro.docstore.matcher import matches

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)

doc_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # field a
        st.integers(min_value=0, max_value=40),  # field b
    ),
    min_size=1,
    max_size=120,
)

bound = st.integers(min_value=0, max_value=40)


def build(pairs):
    col = Collection("t")
    col.create_index([("a", 1), ("b", 1)], name="a_b")
    col.insert_many({"a": a, "b": b} for a, b in pairs)
    return col


@settings(max_examples=40, deadline=None)
@given(pairs=doc_strategy, a_lo=bound, a_hi=bound, b_lo=bound, b_hi=bound)
def test_compound_range_scan_matches_oracle(pairs, a_lo, a_hi, b_lo, b_hi):
    if a_lo > a_hi:
        a_lo, a_hi = a_hi, a_lo
    if b_lo > b_hi:
        b_lo, b_hi = b_hi, b_lo
    col = build(pairs)
    q = {"a": {"$gte": a_lo, "$lte": a_hi}, "b": {"$gte": b_lo, "$lte": b_hi}}
    result = col.find_with_stats(q, hint="a_b")
    expected = sorted(
        (a, b) for a, b in pairs if a_lo <= a <= a_hi and b_lo <= b <= b_hi
    )
    got = sorted((d["a"], d["b"]) for d in result)
    assert got == expected
    # The scan may never examine more entries than exist, modulo one
    # landing key per seek.
    assert result.stats.keys_examined <= len(pairs) + result.stats.seeks


@settings(max_examples=40, deadline=None)
@given(
    pairs=doc_strategy,
    intervals=st.lists(
        st.tuples(bound, bound), min_size=1, max_size=4
    ),
)
def test_or_interval_scan_matches_oracle(pairs, intervals):
    norm = [(min(a, b), max(a, b)) for a, b in intervals]
    col = build(pairs)
    q = {"$or": [{"a": {"$gte": lo, "$lte": hi}} for lo, hi in norm]}
    result = col.find_with_stats(q, hint="a_b")
    expected = sorted(
        (a, b)
        for a, b in pairs
        if any(lo <= a <= hi for lo, hi in norm)
    )
    got = sorted((d["a"], d["b"]) for d in result)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    pairs=doc_strategy,
    in_values=st.lists(bound, min_size=1, max_size=6),
    b_lo=bound,
)
def test_in_plus_range_matches_oracle(pairs, in_values, b_lo):
    col = build(pairs)
    q = {"a": {"$in": in_values}, "b": {"$gte": b_lo}}
    result = col.find_with_stats(q, hint="a_b")
    expected = sorted(
        (a, b) for a, b in pairs if a in in_values and b >= b_lo
    )
    got = sorted((d["a"], d["b"]) for d in result)
    assert got == expected


@settings(max_examples=25, deadline=None)
@given(pairs=doc_strategy, a_lo=bound, a_hi=bound)
def test_plan_choice_never_changes_results(pairs, a_lo, a_hi):
    """Whatever plan the optimizer picks, results equal the matcher."""
    if a_lo > a_hi:
        a_lo, a_hi = a_hi, a_lo
    col = build(pairs)
    col.create_index([("b", 1)], name="b_1")
    q = {"a": {"$gte": a_lo, "$lte": a_hi}, "b": {"$gte": 0}}
    auto = col.find_with_stats(q)
    oracle = [d for d in col.all_documents() if matches(q, d)]
    assert len(auto) == len(oracle)


@settings(max_examples=25, deadline=None)
@given(
    pairs=doc_strategy,
    removals=st.lists(st.integers(min_value=0, max_value=119), max_size=40),
    a_lo=bound,
    a_hi=bound,
)
def test_scan_correct_after_deletes(pairs, removals, a_lo, a_hi):
    """Deletions keep index and storage consistent."""
    if a_lo > a_hi:
        a_lo, a_hi = a_hi, a_lo
    col = Collection("t")
    col.create_index([("a", 1)], name="a_1")
    ids = col.insert_many(
        {"_id": i, "a": a, "b": b} for i, (a, b) in enumerate(pairs)
    )
    doomed = sorted({r for r in removals if r < len(ids)})
    if doomed:
        col.delete_many({"_id": {"$in": doomed}})
    q = {"a": {"$gte": a_lo, "$lte": a_hi}}
    result = col.find_with_stats(q, hint="a_1")
    expected = sorted(
        i
        for i, (a, _b) in enumerate(pairs)
        if i not in set(doomed) and a_lo <= a <= a_hi
    )
    assert sorted(d["_id"] for d in result) == expected
