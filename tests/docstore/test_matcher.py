"""Tests for the query matcher."""

import datetime as dt

import pytest

from repro.docstore.matcher import Matcher, is_operator_expression, matches
from repro.errors import QueryError

UTC = dt.timezone.utc
DOC = {
    "name": "alpha",
    "value": 10,
    "tags": ["red", "blue"],
    "nested": {"level": 3},
    "nothing": None,
    "location": {"type": "Point", "coordinates": [23.73, 37.98]},
    "date": dt.datetime(2018, 8, 15, tzinfo=UTC),
}


class TestEquality:
    def test_implicit_eq(self):
        assert matches({"name": "alpha"}, DOC)
        assert not matches({"name": "beta"}, DOC)

    def test_explicit_eq(self):
        assert matches({"value": {"$eq": 10}}, DOC)
        assert matches({"value": {"$eq": 10.0}}, DOC)

    def test_dotted_path(self):
        assert matches({"nested.level": 3}, DOC)
        assert not matches({"nested.level": 4}, DOC)

    def test_array_any_element(self):
        assert matches({"tags": "red"}, DOC)
        assert not matches({"tags": "green"}, DOC)

    def test_whole_array_equality(self):
        assert matches({"tags": ["red", "blue"]}, DOC)

    def test_null_matches_missing_field(self):
        assert matches({"ghost": None}, DOC)
        assert matches({"nothing": None}, DOC)

    def test_type_bracketing(self):
        assert not matches({"value": "10"}, DOC)


class TestComparisons:
    def test_gt_gte_lt_lte(self):
        assert matches({"value": {"$gt": 9}}, DOC)
        assert not matches({"value": {"$gt": 10}}, DOC)
        assert matches({"value": {"$gte": 10}}, DOC)
        assert matches({"value": {"$lt": 11}}, DOC)
        assert matches({"value": {"$lte": 10}}, DOC)

    def test_range_conjunction(self):
        assert matches({"value": {"$gte": 5, "$lte": 15}}, DOC)
        assert not matches({"value": {"$gte": 11, "$lte": 15}}, DOC)

    def test_date_range(self):
        q = {
            "date": {
                "$gte": dt.datetime(2018, 8, 1, tzinfo=UTC),
                "$lte": dt.datetime(2018, 9, 1, tzinfo=UTC),
            }
        }
        assert matches(q, DOC)

    def test_cross_type_comparison_never_matches(self):
        assert not matches({"name": {"$gt": 5}}, DOC)
        assert not matches({"value": {"$lt": "zzz"}}, DOC)

    def test_missing_field_comparisons(self):
        assert not matches({"ghost": {"$gt": 0}}, DOC)
        assert matches({"ghost": {"$ne": 5}}, DOC)


class TestInNin:
    def test_in(self):
        assert matches({"value": {"$in": [1, 10, 100]}}, DOC)
        assert not matches({"value": {"$in": [1, 2]}}, DOC)

    def test_in_with_array_field(self):
        assert matches({"tags": {"$in": ["green", "blue"]}}, DOC)

    def test_nin(self):
        assert matches({"value": {"$nin": [1, 2]}}, DOC)
        assert not matches({"value": {"$nin": [10]}}, DOC)

    def test_in_requires_array(self):
        with pytest.raises(QueryError):
            matches({"value": {"$in": 10}}, DOC)

    def test_in_null_matches_missing(self):
        assert matches({"ghost": {"$in": [None]}}, DOC)
        assert not matches({"ghost": {"$nin": [None]}}, DOC)


class TestLogical:
    def test_and(self):
        q = {"$and": [{"value": {"$gt": 5}}, {"name": "alpha"}]}
        assert matches(q, DOC)

    def test_or(self):
        q = {"$or": [{"value": 999}, {"name": "alpha"}]}
        assert matches(q, DOC)
        q2 = {"$or": [{"value": 999}, {"name": "zzz"}]}
        assert not matches(q2, DOC)

    def test_nor(self):
        assert matches({"$nor": [{"value": 999}]}, DOC)
        assert not matches({"$nor": [{"value": 10}]}, DOC)

    def test_not(self):
        assert matches({"value": {"$not": {"$gt": 50}}}, DOC)
        assert not matches({"value": {"$not": {"$gt": 5}}}, DOC)

    def test_implicit_top_level_and(self):
        assert matches({"value": 10, "name": "alpha"}, DOC)
        assert not matches({"value": 10, "name": "zzz"}, DOC)

    def test_or_with_sibling_predicates(self):
        # The paper's Hilbert query shape: $or AND other predicates.
        q = {
            "value": {"$gte": 5},
            "$or": [{"name": "alpha"}, {"name": "beta"}],
        }
        assert matches(q, DOC)

    def test_logical_requires_array(self):
        with pytest.raises(QueryError):
            matches({"$or": {"a": 1}}, DOC)


class TestExistsAndMisc:
    def test_exists(self):
        assert matches({"value": {"$exists": True}}, DOC)
        assert matches({"ghost": {"$exists": False}}, DOC)
        assert matches({"nothing": {"$exists": True}}, DOC)
        assert not matches({"ghost": {"$exists": True}}, DOC)

    def test_mod(self):
        assert matches({"value": {"$mod": [3, 1]}}, DOC)
        assert not matches({"value": {"$mod": [3, 0]}}, DOC)

    def test_size(self):
        assert matches({"tags": {"$size": 2}}, DOC)
        assert not matches({"tags": {"$size": 3}}, DOC)

    def test_type(self):
        assert matches({"value": {"$type": "number"}}, DOC)
        assert matches({"name": {"$type": "string"}}, DOC)
        assert matches({"date": {"$type": "date"}}, DOC)

    def test_ne(self):
        assert matches({"value": {"$ne": 11}}, DOC)
        assert not matches({"value": {"$ne": 10}}, DOC)


class TestGeoWithin:
    def _box_query(self, min_lon, min_lat, max_lon, max_lat):
        return {
            "location": {
                "$geoWithin": {
                    "$geometry": {
                        "type": "Polygon",
                        "coordinates": [
                            [
                                [min_lon, min_lat],
                                [max_lon, min_lat],
                                [max_lon, max_lat],
                                [min_lon, max_lat],
                                [min_lon, min_lat],
                            ]
                        ],
                    }
                }
            }
        }

    def test_inside(self):
        assert matches(self._box_query(23.0, 37.0, 24.0, 38.5), DOC)

    def test_outside(self):
        assert not matches(self._box_query(0.0, 0.0, 1.0, 1.0), DOC)

    def test_box_operator(self):
        q = {"location": {"$geoWithin": {"$box": [[23.0, 37.0], [24.0, 38.5]]}}}
        assert matches(q, DOC)

    def test_missing_location(self):
        assert not matches(self._box_query(0, 0, 90, 90), {"a": 1})

    def test_non_point_value(self):
        assert not matches(
            self._box_query(0, 0, 90, 90), {"location": "not a point"}
        )

    def test_bad_geo_argument(self):
        with pytest.raises(QueryError):
            matches({"location": {"$geoWithin": {"$weird": 1}}}, DOC)


class TestValidation:
    def test_unsupported_operator_rejected_at_compile(self):
        with pytest.raises(QueryError):
            Matcher({"a": {"$regex": "x"}})

    def test_unsupported_top_level_rejected(self):
        with pytest.raises(QueryError):
            Matcher({"$where": "this.a == 1"})

    def test_non_mapping_query_rejected(self):
        with pytest.raises(QueryError):
            Matcher([("a", 1)])

    def test_is_operator_expression(self):
        assert is_operator_expression({"$gte": 1})
        assert not is_operator_expression({"a": 1})
        assert not is_operator_expression(5)

    def test_empty_query_matches_everything(self):
        assert matches({}, DOC)
        assert matches({}, {})
