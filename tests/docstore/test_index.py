"""Tests for index definitions and key extraction."""

import datetime as dt

import pytest

from repro.docstore.index import (
    GEOSPHERE,
    HASHED,
    Index,
    IndexDefinition,
    IndexField,
    hashed_value,
)
from repro.errors import DuplicateKeyError, IndexError_

UTC = dt.timezone.utc


def make_doc(lon=23.7, lat=37.9, date=None, **extra):
    doc = {
        "location": {"type": "Point", "coordinates": [lon, lat]},
        "date": date or dt.datetime(2018, 8, 1, tzinfo=UTC),
    }
    doc.update(extra)
    return doc


class TestDefinition:
    def test_from_spec_list(self):
        d = IndexDefinition.from_spec([("location", "2dsphere"), ("date", 1)])
        assert d.paths == ("location", "date")
        assert d.field_kind("location") == GEOSPHERE
        assert d.field_kind("date") == 1
        assert d.field_kind("zzz") is None

    def test_from_spec_mapping(self):
        d = IndexDefinition.from_spec({"a": 1, "b": -1})
        assert d.paths == ("a", "b")

    def test_generated_name(self):
        d = IndexDefinition.from_spec([("a", 1), ("b", 1)])
        assert d.name == "a_1_b_1"

    def test_explicit_name(self):
        d = IndexDefinition.from_spec([("a", 1)], name="my_index")
        assert d.name == "my_index"

    def test_rejects_empty(self):
        with pytest.raises(IndexError_):
            IndexDefinition(fields=())

    def test_rejects_too_many_fields(self):
        # MongoDB caps compound indexes at 32 fields (Section 3.1).
        fields = tuple(IndexField("f%d" % i, 1) for i in range(33))
        with pytest.raises(IndexError_):
            IndexDefinition(fields=fields)

    def test_rejects_bad_kind(self):
        with pytest.raises(IndexError_):
            IndexField("a", 2)


class TestExtraction:
    def test_plain_field(self):
        idx = Index(IndexDefinition.from_spec([("date", 1)]))
        doc = make_doc()
        assert idx.extract_raw(doc) == (doc["date"],)

    def test_missing_field_indexes_null(self):
        idx = Index(IndexDefinition.from_spec([("ghost", 1)]))
        assert idx.extract_raw({"a": 1}) == (None,)

    def test_2dsphere_is_26bit_geohash(self):
        idx = Index(
            IndexDefinition.from_spec([("location", "2dsphere")])
        )
        (value,) = idx.extract_raw(make_doc())
        assert isinstance(value, int)
        assert 0 <= value < 2**26

    def test_2dsphere_custom_bits(self):
        idx = Index(
            IndexDefinition.from_spec(
                [("location", "2dsphere")], geohash_bits=32
            )
        )
        (value,) = idx.extract_raw(make_doc())
        assert 0 <= value < 2**32

    def test_2dsphere_non_point_rejected(self):
        idx = Index(IndexDefinition.from_spec([("location", "2dsphere")]))
        with pytest.raises(IndexError_):
            idx.extract_raw({"location": "garbage"})

    def test_2dsphere_missing_gives_null(self):
        idx = Index(IndexDefinition.from_spec([("location", "2dsphere")]))
        assert idx.extract_raw({"a": 1}) == (None,)

    def test_hashed_field(self):
        idx = Index(IndexDefinition.from_spec([("vehicle", "hashed")]))
        (value,) = idx.extract_raw({"vehicle": 7})
        assert value == hashed_value(7)

    def test_hashed_deterministic(self):
        assert hashed_value("abc") == hashed_value("abc")
        assert hashed_value("abc") != hashed_value("abd")
        assert 0 <= hashed_value("abc") < 2**63

    def test_compound_extraction(self):
        idx = Index(
            IndexDefinition.from_spec([("location", "2dsphere"), ("date", 1)])
        )
        doc = make_doc()
        raw = idx.extract_raw(doc)
        assert len(raw) == 2
        assert raw[1] == doc["date"]


class TestMaintenance:
    def test_insert_and_len(self):
        idx = Index(IndexDefinition.from_spec([("date", 1)]))
        for i in range(10):
            idx.insert_document(i, make_doc(date=dt.datetime(2018, 8, i + 1, tzinfo=UTC)))
        assert len(idx) == 10

    def test_remove(self):
        idx = Index(IndexDefinition.from_spec([("date", 1)]))
        doc = make_doc()
        idx.insert_document(1, doc)
        idx.remove_document(1, doc)
        assert len(idx) == 0

    def test_unique_rejects_duplicates(self):
        idx = Index(
            IndexDefinition.from_spec([("_id", 1)], name="_id_", unique=True)
        )
        idx.insert_document(1, {"_id": 5})
        with pytest.raises(DuplicateKeyError):
            idx.insert_document(2, {"_id": 5})

    def test_unique_allows_after_remove(self):
        idx = Index(
            IndexDefinition.from_spec([("_id", 1)], unique=True)
        )
        idx.insert_document(1, {"_id": 5})
        idx.remove_document(1, {"_id": 5})
        idx.insert_document(2, {"_id": 5})
        assert len(idx) == 1

    def test_duplicate_keys_allowed_when_not_unique(self):
        idx = Index(IndexDefinition.from_spec([("v", 1)]))
        idx.insert_document(1, {"v": 5})
        idx.insert_document(2, {"v": 5})
        assert len(idx) == 2

    def test_raw_key_of(self):
        idx = Index(IndexDefinition.from_spec([("v", 1)]))
        idx.insert_document(1, {"v": 5})
        assert idx.raw_key_of(1) == (5,)
        assert idx.raw_key_of(99) is None

    def test_iter_storage_keys_sorted(self):
        idx = Index(IndexDefinition.from_spec([("v", 1)]))
        for rid, v in enumerate((5, 1, 3)):
            idx.insert_document(rid, {"v": v})
        keys = list(idx.iter_storage_keys())
        assert keys == sorted(keys)
        assert len(keys) == 3


class TestFieldStats:
    def test_numeric_stats_tracked(self):
        idx = Index(IndexDefinition.from_spec([("v", 1)]))
        for rid, v in enumerate((5, 1, 9)):
            idx.insert_document(rid, {"v": v})
        assert idx.field_stats(0) == (1.0, 9.0)

    def test_date_stats_tracked(self):
        idx = Index(IndexDefinition.from_spec([("date", 1)]))
        t1 = dt.datetime(2018, 7, 1, tzinfo=UTC)
        t2 = dt.datetime(2018, 9, 1, tzinfo=UTC)
        idx.insert_document(0, {"date": t1})
        idx.insert_document(1, {"date": t2})
        lo, hi = idx.field_stats(0)
        assert lo == t1.timestamp()
        assert hi == t2.timestamp()

    def test_non_numeric_stats_none(self):
        idx = Index(IndexDefinition.from_spec([("name", 1)]))
        idx.insert_document(0, {"name": "abc"})
        assert idx.field_stats(0) is None
