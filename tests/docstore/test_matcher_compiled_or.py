"""Tests for the compiled single-path $or fast path in the matcher."""

import pytest

from repro.docstore.matcher import Matcher, _compile_or_intervals, matches


class TestCompilation:
    def test_compiles_range_clauses(self):
        clauses = [
            {"h": {"$gte": 1, "$lte": 5}},
            {"h": {"$gte": 10, "$lte": 20}},
        ]
        compiled = _compile_or_intervals(clauses)
        assert compiled is not None
        assert compiled.path == "h"

    def test_compiles_in_clause(self):
        compiled = _compile_or_intervals([{"h": {"$in": [3, 7, 9]}}])
        assert compiled is not None
        assert len(compiled.intervals) == 3

    def test_rejects_multi_path(self):
        assert _compile_or_intervals([{"a": {"$gte": 1, "$lte": 2}}, {"b": {"$gte": 1, "$lte": 2}}]) is None

    def test_rejects_non_operator_clause(self):
        assert _compile_or_intervals([{"a": 5}]) is None

    def test_rejects_unsupported_ops(self):
        assert _compile_or_intervals([{"a": {"$ne": 5}}]) is None

    def test_rejects_half_open(self):
        # Half-open ranges stay on the generic path.
        assert _compile_or_intervals([{"a": {"$gte": 5}}]) is None

    def test_rejects_null_points(self):
        assert _compile_or_intervals([{"a": {"$in": [None]}}]) is None

    def test_merges_overlaps(self):
        compiled = _compile_or_intervals(
            [
                {"h": {"$gte": 0, "$lte": 100}},
                {"h": {"$gte": 50, "$lte": 60}},
            ]
        )
        assert len(compiled.intervals) == 1


class TestSemanticsMatchGenericPath:
    """The fast path must agree with clause-by-clause evaluation."""

    CLAUSES = [
        {"h": {"$gte": 10, "$lte": 20}},
        {"h": {"$gt": 30, "$lt": 40}},
        {"h": {"$in": [50, 55]}},
        {"h": {"$gte": 0, "$lte": 100}},  # overlaps everything
    ]

    def generic(self, doc):
        return any(matches(clause, doc) for clause in self.CLAUSES)

    def test_agreement_over_domain(self):
        matcher = Matcher({"$or": self.CLAUSES})
        for value in list(range(-5, 120)) + [10.5, 29.99, 30.0, 40.0]:
            doc = {"h": value}
            assert matcher.matches(doc) == self.generic(doc), value

    def test_arrays_any_element(self):
        matcher = Matcher({"$or": [{"h": {"$gte": 10, "$lte": 20}}]})
        assert matcher.matches({"h": [1, 15]})
        assert not matcher.matches({"h": [1, 2]})

    def test_missing_field_no_match(self):
        matcher = Matcher({"$or": [{"h": {"$gte": 10, "$lte": 20}}]})
        assert not matcher.matches({"other": 1})

    def test_cross_type_values_no_match(self):
        matcher = Matcher({"$or": [{"h": {"$gte": 10, "$lte": 20}}]})
        assert not matcher.matches({"h": "15"})

    def test_exclusive_bounds(self):
        matcher = Matcher({"$or": [{"h": {"$gt": 10, "$lt": 20}}]})
        assert not matcher.matches({"h": 10})
        assert matcher.matches({"h": 11})
        assert not matcher.matches({"h": 20})

    def test_combined_with_other_predicates(self):
        # The paper's query shape: $or AND date range.
        matcher = Matcher(
            {
                "$or": [{"h": {"$gte": 10, "$lte": 20}}],
                "flag": True,
            }
        )
        assert matcher.matches({"h": 15, "flag": True})
        assert not matcher.matches({"h": 15, "flag": False})
        assert not matcher.matches({"h": 5, "flag": True})

    def test_string_ranges(self):
        # The ST-Hash string form uses the same machinery.
        matcher = Matcher(
            {"$or": [{"s": {"$gte": "2018aa", "$lte": "2018zz"}}]}
        )
        assert matcher.matches({"s": "2018mm"})
        assert not matcher.matches({"s": "2019aa"})

    def test_large_or_performance_shape(self):
        # 5,000 clauses compile once; matching stays usable.
        clauses = [
            {"h": {"$gte": i * 10, "$lte": i * 10 + 5}} for i in range(5000)
        ]
        matcher = Matcher({"$or": clauses})
        assert matcher.matches({"h": 42003})
        assert not matcher.matches({"h": 42007})
