"""Tests for storage sizing: BSON bytes and prefix-compressed indexes."""

import datetime as dt

from repro.docstore.bson import ObjectId
from repro.docstore.index import Index, IndexDefinition
from repro.docstore.storage import (
    StorageModel,
    collection_data_size,
    index_size_bytes,
)

UTC = dt.timezone.utc


def build_id_index(ids):
    idx = Index(IndexDefinition.from_spec([("_id", 1)], name="_id_"))
    for rid, _id in enumerate(ids):
        idx.insert_document(rid, {"_id": _id})
    return idx


class TestCollectionSize:
    def test_sum_of_document_sizes(self):
        docs = [{"a": 1}, {"a": 2}]
        from repro.docstore.bson import bson_document_size

        assert collection_data_size(docs) == sum(
            bson_document_size(d) for d in docs
        )

    def test_storage_size_compressed(self):
        model = StorageModel(block_compression=0.5)
        docs = [{"a": "x" * 100} for _ in range(10)]
        assert model.storage_size(docs) == model.data_size(docs) // 2

    def test_wider_documents_cost_more(self):
        narrow = [{"a": 1}] * 10
        wide = [{"a": 1, "extra": "y" * 50}] * 10
        assert collection_data_size(wide) > collection_data_size(narrow)

    def test_hilbert_field_adds_bytes(self):
        # The Table 6 effect: hil documents carry one extra long field.
        base = {"location": {"type": "Point", "coordinates": [1.0, 2.0]}}
        with_h = dict(base, hilbertIndex=36854767)
        assert collection_data_size([with_h]) > collection_data_size([base])


class TestIndexSize:
    def test_empty_index_is_zero(self):
        idx = build_id_index([])
        assert index_size_bytes(idx) == 0

    def test_grows_with_entries(self):
        small = build_id_index(range(100))
        large = build_id_index(range(1000))
        assert index_size_bytes(large) > index_size_bytes(small)

    def test_prefix_compression_helps_sequential_objectids(self):
        # ObjectIds minted close in time share long prefixes; shuffled
        # ids from distant times do not — Fig. 14's mechanism.
        sequential = [
            ObjectId(timestamp=1_000_000 + i // 100, random_bytes=b"abcde", counter=i)
            for i in range(2000)
        ]
        import random

        spread = [
            ObjectId(
                timestamp=random.Random(i).randrange(0, 2**31),
                random_bytes=random.Random(i * 7).randbytes(5),
                counter=i,
            )
            for i in range(2000)
        ]
        seq_size = index_size_bytes(build_id_index(sequential))
        spread_size = index_size_bytes(build_id_index(spread))
        assert seq_size < spread_size

    def test_page_boundary_resets_compression(self):
        ids = [
            ObjectId(timestamp=1000, random_bytes=b"abcde", counter=i)
            for i in range(256)
        ]
        idx = build_id_index(ids)
        small_pages = index_size_bytes(idx, page_entries=8)
        big_pages = index_size_bytes(idx, page_entries=256)
        assert small_pages > big_pages

    def test_compound_index_bigger_than_single(self):
        single = Index(IndexDefinition.from_spec([("a", 1)]))
        compound = Index(IndexDefinition.from_spec([("a", 1), ("b", 1)]))
        for rid in range(500):
            single.insert_document(rid, {"a": rid, "b": "payload-%d" % rid})
            compound.insert_document(rid, {"a": rid, "b": "payload-%d" % rid})
        assert index_size_bytes(compound) > index_size_bytes(single)

    def test_model_wrapper(self):
        model = StorageModel(page_entries=16)
        idx = build_id_index(range(100))
        assert model.index_size(idx) == index_size_bytes(idx, page_entries=16)
