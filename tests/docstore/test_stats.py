"""Statistics subsystem: histograms, density sketches, the catalog."""

import datetime as _dt

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import COLLECTION, deploy_approach, make_approach
from repro.datagen import FleetConfig, FleetGenerator
from repro.docstore.stats import (
    CellDensitySketch,
    CollectionStats,
    FieldHistogram,
    StatsCatalogCache,
    analyze_collection,
)
from repro.geo.geometry import BoundingBox

_UTC = _dt.timezone.utc


class TestFieldHistogram:
    def test_equi_depth_uniform(self):
        hist = FieldHistogram.build("v", list(range(1000)), buckets=16)
        assert hist.buckets == 16
        assert hist.total == 1000
        # Uniform data: the middle half holds about half the mass.
        assert hist.selectivity(250, 750) == pytest.approx(0.5, abs=0.05)
        assert hist.selectivity(0, 999) == 1.0

    def test_skewed_data_gets_narrow_buckets(self):
        # 900 values packed into [0, 10), 100 spread over [10, 1000):
        # equi-depth bounds concentrate where the data does.
        values = [i / 100 for i in range(900)] + [
            10 + i * 9.9 for i in range(100)
        ]
        hist = FieldHistogram.build("v", values, buckets=10)
        assert hist.selectivity(0, 10) == pytest.approx(0.9, abs=0.1)

    def test_out_of_range_and_inverted(self):
        hist = FieldHistogram.build("v", [10, 20, 30], buckets=4)
        assert hist.selectivity(-5, 5) == 0.0
        assert hist.selectivity(40, 50) == 0.0
        assert hist.selectivity(30, 10) == 0.0  # inverted window
        assert hist.selectivity(0, 100) == 1.0

    def test_datetime_values_aware_and_naive(self):
        start = _dt.datetime(2018, 7, 1, tzinfo=_UTC)
        values = [start + _dt.timedelta(hours=i) for i in range(100)]
        hist = FieldHistogram.build("date", values, buckets=8)
        mid = start + _dt.timedelta(hours=50)
        assert hist.selectivity(start, mid) == pytest.approx(0.5, abs=0.1)
        # Naive datetimes build their own consistent ordinal space.
        naive = FieldHistogram.build(
            "date",
            [_dt.datetime(2018, 7, 1) + _dt.timedelta(days=i) for i in range(10)],
            buckets=4,
        )
        assert naive is not None

    def test_non_scalars_dropped(self):
        hist = FieldHistogram.build(
            "v", [1, 2, 3, "x", None, True, [4]], buckets=4
        )
        # bools are not scalars here (True == 1 would pollute ranges).
        assert hist.total == 3

    def test_empty_and_constant(self):
        assert FieldHistogram.build("v", [], buckets=4) is None
        assert FieldHistogram.build("v", ["x", None], buckets=4) is None
        constant = FieldHistogram.build("v", [7] * 50, buckets=4)
        assert constant.selectivity(7, 7) in (0.0, 1.0)  # degenerate, no crash

    def test_as_dict_round_trip_fields(self):
        hist = FieldHistogram.build("v", list(range(10)), buckets=2)
        d = hist.as_dict()
        assert d["field"] == "v"
        assert d["buckets"] == 2
        assert len(d["bounds"]) == 3
        assert d["total"] == 10


class TestCellDensitySketch:
    def _grid_points(self, n_side=20):
        # Uniform grid over a patch of Greece.
        return [
            (22.0 + 2.0 * i / n_side, 37.0 + 2.0 * j / n_side)
            for i in range(n_side)
            for j in range(n_side)
        ]

    def test_whole_domain_is_everything(self):
        sketch = CellDensitySketch.build(self._grid_points(), order=8)
        world = BoundingBox(-180.0, -90.0, 180.0, 90.0)
        assert sketch.selectivity(world) == pytest.approx(1.0)
        assert sketch.cell_selectivity(world) == pytest.approx(1.0)

    def test_empty_region_is_zero(self):
        sketch = CellDensitySketch.build(self._grid_points(), order=8)
        ocean = BoundingBox(-150.0, -40.0, -140.0, -30.0)
        assert sketch.selectivity(ocean) == 0.0
        assert sketch.cell_selectivity(ocean) == 0.0

    def test_cell_selectivity_upper_bounds_weighted(self):
        sketch = CellDensitySketch.build(self._grid_points(), order=8)
        box = BoundingBox(22.3, 37.2, 23.1, 37.9)
        weighted = sketch.selectivity(box)
        cells = sketch.cell_selectivity(box)
        assert 0.0 < weighted <= cells <= 1.0

    def test_snap_expands_outward(self):
        sketch = CellDensitySketch.build(self._grid_points(), order=8)
        box = BoundingBox(22.31, 37.21, 22.32, 37.22)
        for order in (6, 10, 13):
            snapped = sketch.snap(box, order)
            assert snapped.min_lon <= box.min_lon
            assert snapped.min_lat <= box.min_lat
            assert snapped.max_lon >= box.max_lon
            assert snapped.max_lat >= box.max_lat
            # Snapping is idempotent: a grid-aligned box stays put.
            again = sketch.snap(snapped, order)
            assert again.min_lon == pytest.approx(snapped.min_lon)
            assert again.max_lon == pytest.approx(snapped.max_lon)

    def test_snap_order_orders_candidate_sets(self):
        # A coarser grid snaps to a bigger box, so its candidate-set
        # estimate dominates a finer grid's — the monotonicity the
        # chooser's granularity ranking relies on.
        sketch = CellDensitySketch.build(self._grid_points(), order=8)
        box = BoundingBox(22.31, 37.21, 22.34, 37.24)
        plain = sketch.selectivity(box)
        fine = sketch.selectivity(box, snap_order=15)
        coarse = sketch.selectivity(box, snap_order=10)
        assert plain <= fine <= coarse

    def test_empty_points(self):
        assert CellDensitySketch.build([], order=8) is None


class TestStatsCatalogCache:
    def _stats(self, version=1):
        return CollectionStats(
            collection="traces",
            metadata_version=version,
            total_docs=10,
            shard_docs={"s0": 10},
            chunk_docs=(("s0", 10),),
        )

    def test_miss_then_hit(self):
        cache = StatsCatalogCache()
        assert cache.get("traces", 1) is None
        cache.put("traces", self._stats(version=1))
        assert cache.get("traces", 1) is not None
        s = cache.stats()
        assert s["misses"] == 1 and s["hits"] == 1 and s["fills"] == 1

    def test_version_mismatch_is_stale_rejection(self):
        cache = StatsCatalogCache()
        cache.put("traces", self._stats(version=1))
        assert cache.get("traces", 2) is None
        assert cache.stats()["staleRejections"] == 1
        # The stale entry stays until a re-ANALYZE or invalidation;
        # a read at the stamped version still serves it.
        assert cache.get("traces", 1) is not None

    def test_invalidate_collection(self):
        cache = StatsCatalogCache()
        cache.put("traces", self._stats())
        cache.invalidate_collection("traces")
        assert cache.get("traces", 1) is None
        assert cache.stats()["invalidations"] == 1
        # Invalidating an absent entry is a no-op, not a counter bump.
        cache.invalidate_collection("other")
        assert cache.stats()["invalidations"] == 1

    def test_clear(self):
        cache = StatsCatalogCache()
        cache.put("traces", self._stats())
        cache.clear()
        assert cache.stats()["entries"] == 0


class TestAnalyzeCollection:
    @pytest.fixture(scope="class")
    def deployment(self):
        docs = FleetGenerator(FleetConfig(seed=7)).generate_list(300)
        return deploy_approach(
            make_approach("bslST"),
            docs,
            topology=ClusterTopology(
                n_shards=2, n_config_servers=1, n_routers=1
            ),
            chunk_max_bytes=64 * 1024,
        )

    def test_counts_and_version(self, deployment):
        cluster = deployment.cluster
        stats = analyze_collection(cluster, COLLECTION)
        assert stats.collection == COLLECTION
        assert stats.metadata_version == cluster.metadata_version
        assert stats.total_docs == 300
        assert sum(stats.shard_docs.values()) == 300
        assert sum(n for _, n in stats.chunk_docs) == 300
        assert stats.time_histogram is not None
        assert stats.cell_sketch is not None

    def test_selectivities_reflect_data(self, deployment):
        stats = analyze_collection(deployment.cluster, COLLECTION)
        # The fleet spans Jul-Nov 2018; a window covering all of it has
        # selectivity 1, a disjoint one 0.
        assert stats.time_selectivity(
            _dt.datetime(2018, 6, 1, tzinfo=_UTC),
            _dt.datetime(2019, 1, 1, tzinfo=_UTC),
        ) == pytest.approx(1.0)
        assert (
            stats.time_selectivity(
                _dt.datetime(2017, 1, 1, tzinfo=_UTC),
                _dt.datetime(2017, 6, 1, tzinfo=_UTC),
            )
            == 0.0
        )
        # All of Greece vs open ocean.
        assert stats.space_selectivity(
            BoundingBox(19.0, 33.0, 29.0, 42.0)
        ) == pytest.approx(1.0)
        assert (
            stats.space_selectivity(BoundingBox(-60.0, -40.0, -50.0, -30.0))
            == 0.0
        )

    def test_as_dict_shape(self, deployment):
        payload = analyze_collection(deployment.cluster, COLLECTION).as_dict()
        assert set(payload) == {
            "collection",
            "metadataVersion",
            "totalDocs",
            "shardDocs",
            "chunkDocs",
            "timeHistogram",
            "cellSketch",
        }
