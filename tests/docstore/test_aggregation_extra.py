"""Tests for the extended aggregation stages ($unwind, $addFields,
$sortByCount) and find() projections."""

import pytest

from repro.docstore.aggregation import run_pipeline
from repro.docstore.collection import Collection
from repro.errors import AggregationError


class TestUnwind:
    DOCS = [
        {"_id": 1, "cells": [10, 20, 30]},
        {"_id": 2, "cells": [40]},
        {"_id": 3, "cells": []},
        {"_id": 4},
    ]

    def test_one_doc_per_element(self):
        out = run_pipeline(self.DOCS, [{"$unwind": "$cells"}])
        assert [(d["_id"], d["cells"]) for d in out] == [
            (1, 10),
            (1, 20),
            (1, 30),
            (2, 40),
        ]

    def test_empty_and_missing_dropped_by_default(self):
        out = run_pipeline(self.DOCS, [{"$unwind": "$cells"}])
        assert {d["_id"] for d in out} == {1, 2}

    def test_preserve_empty(self):
        out = run_pipeline(
            self.DOCS,
            [
                {
                    "$unwind": {
                        "path": "$cells",
                        "preserveNullAndEmptyArrays": True,
                    }
                }
            ],
        )
        assert {d["_id"] for d in out} == {1, 2, 3, 4}

    def test_rejects_bad_path(self):
        with pytest.raises(AggregationError):
            run_pipeline(self.DOCS, [{"$unwind": "cells"}])

    def test_unwind_then_group_counts_cells(self):
        # The trajectory-analytics idiom: explode hilbertCells, count
        # visits per cell.
        out = run_pipeline(
            [
                {"cells": [1, 2]},
                {"cells": [2, 3]},
                {"cells": [2]},
            ],
            [
                {"$unwind": "$cells"},
                {"$group": {"_id": "$cells", "n": {"$sum": 1}}},
                {"$sort": {"n": -1, "_id": 1}},
            ],
        )
        assert out[0] == {"_id": 2, "n": 3}


class TestAddFields:
    def test_adds_computed_field(self):
        out = run_pipeline(
            [{"a": 2, "b": 3}],
            [{"$addFields": {"sum": {"$add": ["$a", "$b"]}}}],
        )
        assert out[0]["sum"] == 5
        assert out[0]["a"] == 2  # originals kept

    def test_nested_target(self):
        out = run_pipeline(
            [{"a": 1}], [{"$addFields": {"meta.flag": True}}]
        )
        assert out[0]["meta"]["flag"] is True

    def test_rejects_empty(self):
        with pytest.raises(AggregationError):
            run_pipeline([{}], [{"$addFields": {}}])


class TestSortByCount:
    def test_counts_descending(self):
        docs = [{"k": "a"}, {"k": "b"}, {"k": "a"}, {"k": "a"}]
        out = run_pipeline(docs, [{"$sortByCount": "$k"}])
        assert out[0] == {"_id": "a", "count": 3}
        assert out[1] == {"_id": "b", "count": 1}


class TestFindProjection:
    def test_inclusion_projection(self):
        col = Collection("t")
        col.insert_one({"_id": 1, "a": 1, "b": 2, "c": 3})
        out = col.find({}, projection={"a": 1}).to_list()
        assert out == [{"_id": 1, "a": 1}]

    def test_exclusion_projection(self):
        col = Collection("t")
        col.insert_one({"_id": 1, "a": 1, "b": 2})
        out = col.find({}, projection={"b": 0}).to_list()
        assert out == [{"_id": 1, "a": 1}]


class TestExplainRejectedPlans:
    def test_lists_alternatives(self):
        col = Collection("t")
        col.create_index([("a", 1)], name="a_1")
        col.create_index([("a", 1), ("b", 1)], name="a_b")
        col.insert_many({"a": i, "b": i} for i in range(50))
        explain = col.explain({"a": {"$gte": 10, "$lte": 20}})
        winner = explain["queryPlanner"]["winningPlan"]
        rejected = explain["queryPlanner"]["rejectedPlans"]
        assert winner["stage"] == "IXSCAN"
        assert len(rejected) >= 1
        names = {p["indexName"] for p in rejected} | {winner["indexName"]}
        assert {"a_1", "a_b"} <= names

    def test_no_rejected_when_single_option(self):
        col = Collection("t")
        col.insert_many({"_id": i} for i in range(5))
        explain = col.explain({"_id": 3})
        assert explain["queryPlanner"]["rejectedPlans"] == []
