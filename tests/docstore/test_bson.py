"""Tests for BSON primitives: ObjectId, ordering, sizing, key bytes."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.docstore import bson
from repro.docstore.bson import (
    MAXKEY,
    MINKEY,
    ObjectId,
    bson_document_size,
    compare,
    key_bytes,
    sort_key,
    type_rank,
)

UTC = dt.timezone.utc


class TestObjectId:
    def test_is_12_bytes(self):
        assert len(ObjectId().binary) == 12

    def test_timestamp_prefix(self):
        oid = ObjectId(timestamp=1_538_352_000)  # 2018-10-01
        assert oid.generation_time == dt.datetime(2018, 10, 1, tzinfo=UTC)

    def test_counter_increments(self):
        a = ObjectId(timestamp=0, random_bytes=b"\x00" * 5)
        b = ObjectId(timestamp=0, random_bytes=b"\x00" * 5)
        ca = int.from_bytes(a.binary[9:], "big")
        cb = int.from_bytes(b.binary[9:], "big")
        assert cb == (ca + 1) % 2**24

    def test_deterministic_construction(self):
        a = ObjectId(timestamp=100, random_bytes=b"abcde", counter=7)
        b = ObjectId(timestamp=100, random_bytes=b"abcde", counter=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_ordering_follows_bytes(self):
        early = ObjectId(timestamp=100, random_bytes=b"abcde", counter=1)
        late = ObjectId(timestamp=200, random_bytes=b"abcde", counter=0)
        assert early < late

    def test_hex_roundtrip(self):
        oid = ObjectId(timestamp=100, random_bytes=b"abcde", counter=7)
        assert ObjectId.from_hex(str(oid)) == oid

    def test_from_bytes_validates_length(self):
        with pytest.raises(ValueError):
            ObjectId.from_bytes(b"short")

    def test_bad_random_length(self):
        with pytest.raises(ValueError):
            ObjectId(timestamp=0, random_bytes=b"abc")

    def test_shared_prefix_when_generated_together(self):
        # The property Fig. 14 depends on: ids minted within the same
        # second share at least the 4-byte timestamp + 5-byte random.
        a = ObjectId(timestamp=1000.2, random_bytes=b"abcde")
        b = ObjectId(timestamp=1000.9, random_bytes=b"abcde")
        assert a.binary[:9] == b.binary[:9]


class TestTypeOrdering:
    def test_bracket_order(self):
        # MinKey < null < number < string < object < array < binary <
        # ObjectId < bool < date < MaxKey.
        values = [
            MINKEY,
            None,
            3,
            "abc",
            {"a": 1},
            [1, 2],
            b"\x01",
            ObjectId(timestamp=0, random_bytes=b"abcde", counter=0),
            True,
            dt.datetime(2020, 1, 1, tzinfo=UTC),
            MAXKEY,
        ]
        ranks = [type_rank(v) for v in values]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_int_and_float_share_bracket(self):
        assert type_rank(3) == type_rank(3.5)
        assert compare(3, 3.0) == 0
        assert compare(2, 2.5) == -1

    def test_bool_not_number(self):
        assert type_rank(True) != type_rank(1)

    def test_cross_type_comparisons(self):
        assert compare(99999, "a") == -1  # any number < any string
        assert compare("zzz", dt.datetime(1970, 1, 1, tzinfo=UTC)) == -1

    def test_minkey_maxkey_extremes(self):
        for v in (None, -1e308, "", b"", [], {}, False):
            assert compare(MINKEY, v) == -1
            assert compare(MAXKEY, v) == 1

    def test_date_comparison(self):
        early = dt.datetime(2018, 7, 1, tzinfo=UTC)
        late = dt.datetime(2018, 8, 1, tzinfo=UTC)
        assert compare(early, late) == -1

    def test_naive_datetime_treated_as_utc(self):
        naive = dt.datetime(2018, 7, 1)
        aware = dt.datetime(2018, 7, 1, tzinfo=UTC)
        assert compare(naive, aware) == 0

    def test_array_and_object_ordering(self):
        assert compare([1, 2], [1, 3]) == -1
        assert compare({"a": 1}, {"a": 2}) == -1

    def test_unorderable_type_raises(self):
        class Strange:
            pass

        with pytest.raises(TypeError):
            sort_key(Strange())


class TestDocumentSize:
    def test_empty_document(self):
        # 4-byte length + trailing NUL.
        assert bson_document_size({}) == 5

    def test_int32_element(self):
        # type byte + "a\0" + int32 = 1 + 2 + 4 = 7; total 5 + 7.
        assert bson_document_size({"a": 1}) == 12

    def test_int64_for_large_values(self):
        small = bson_document_size({"a": 1})
        large = bson_document_size({"a": 2**40})
        assert large == small + 4

    def test_string_element(self):
        # "ab" → 4-byte len + 2 bytes + NUL = 7 value bytes.
        assert bson_document_size({"a": "ab"}) == 5 + 1 + 2 + 7

    def test_nested_document_counted(self):
        flat = bson_document_size({"a": 1})
        nested = bson_document_size({"w": {"a": 1}})
        assert nested == 5 + 1 + 2 + flat

    def test_array_as_indexed_document(self):
        assert bson_document_size({"a": [1, 2]}) == bson_document_size(
            {"a": {"0": 1, "1": 2}}
        )

    def test_objectid_is_12_value_bytes(self):
        oid = ObjectId(timestamp=0, random_bytes=b"abcde", counter=0)
        assert bson_document_size({"_id": oid}) == 5 + 1 + 4 + 12

    def test_geojson_point_size_realistic(self):
        doc = {"location": {"type": "Point", "coordinates": [23.7, 37.9]}}
        size = bson_document_size(doc)
        assert 50 < size < 100


@st.composite
def scalar_values(draw):
    return draw(
        st.one_of(
            st.integers(min_value=-(2**52), max_value=2**52),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=12),
            st.datetimes(
                min_value=dt.datetime(1971, 1, 1),
                max_value=dt.datetime(2100, 1, 1),
            ).map(lambda d: d.replace(tzinfo=UTC)),
            st.booleans(),
            st.none(),
        )
    )


class TestKeyBytes:
    @given(a=scalar_values(), b=scalar_values())
    def test_order_preserving(self, a, b):
        # key_bytes must sort exactly like sort_key — the property the
        # prefix-compression size model relies on.
        ka, kb = key_bytes([a]), key_bytes([b])
        ca, cb = sort_key(a), sort_key(b)
        if ca < cb:
            assert ka < kb
        elif ca > cb:
            assert ka > kb
        else:
            assert ka == kb

    def test_compound_keys_concatenate(self):
        single = key_bytes([5])
        double = key_bytes([5, "x"])
        assert double.startswith(single)

    def test_shared_prefix_for_close_dates(self):
        t1 = dt.datetime(2018, 7, 1, 12, 0, tzinfo=UTC)
        t2 = dt.datetime(2018, 7, 1, 12, 1, tzinfo=UTC)
        t3 = dt.datetime(2024, 1, 1, tzinfo=UTC)
        k1, k2, k3 = key_bytes([t1]), key_bytes([t2]), key_bytes([t3])

        def common(a, b):
            n = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                n += 1
            return n

        assert common(k1, k2) > common(k1, k3)
