"""Tests for the aggregation pipeline (incl. $bucketAuto semantics)."""

import datetime as dt

import pytest

from repro.docstore.aggregation import evaluate_expression, run_pipeline
from repro.docstore.collection import Collection
from repro.errors import AggregationError

UTC = dt.timezone.utc

DOCS = [
    {"i": i, "group": "even" if i % 2 == 0 else "odd", "score": i * 1.5}
    for i in range(10)
]


class TestExpressions:
    def test_field_path(self):
        assert evaluate_expression("$i", {"i": 7}) == 7

    def test_nested_field_path(self):
        assert evaluate_expression("$a.b", {"a": {"b": 3}}) == 3

    def test_missing_field_is_none(self):
        assert evaluate_expression("$zzz", {}) is None

    def test_literal(self):
        assert evaluate_expression(5, {}) == 5
        assert evaluate_expression({"$literal": "$i"}, {"i": 1}) == "$i"

    def test_arithmetic(self):
        doc = {"a": 10, "b": 3}
        assert evaluate_expression({"$add": ["$a", "$b", 1]}, doc) == 14
        assert evaluate_expression({"$subtract": ["$a", "$b"]}, doc) == 7
        assert evaluate_expression({"$multiply": ["$a", "$b"]}, doc) == 30
        assert evaluate_expression({"$divide": ["$a", 2]}, doc) == 5
        assert evaluate_expression({"$floor": 3.9}, doc) == 3

    def test_concat(self):
        assert evaluate_expression({"$concat": ["a", "$x"]}, {"x": "b"}) == "ab"

    def test_unknown_operator(self):
        with pytest.raises(AggregationError):
            evaluate_expression({"$pow": [2, 3]}, {})


class TestStages:
    def test_match(self):
        out = run_pipeline(DOCS, [{"$match": {"group": "even"}}])
        assert len(out) == 5

    def test_sort(self):
        out = run_pipeline(DOCS, [{"$sort": {"i": -1}}])
        assert [d["i"] for d in out[:3]] == [9, 8, 7]

    def test_sort_multi_key(self):
        out = run_pipeline(DOCS, [{"$sort": {"group": 1, "i": -1}}])
        assert out[0]["group"] == "even" and out[0]["i"] == 8

    def test_limit_skip(self):
        out = run_pipeline(DOCS, [{"$sort": {"i": 1}}, {"$skip": 2}, {"$limit": 3}])
        assert [d["i"] for d in out] == [2, 3, 4]

    def test_count(self):
        out = run_pipeline(DOCS, [{"$match": {"group": "odd"}}, {"$count": "n"}])
        assert out == [{"n": 5}]

    def test_project_inclusion(self):
        out = run_pipeline([{"_id": 1, "a": 1, "b": 2}], [{"$project": {"a": 1}}])
        assert out == [{"_id": 1, "a": 1}]

    def test_project_exclusion(self):
        out = run_pipeline(
            [{"_id": 1, "a": 1, "b": 2}], [{"$project": {"b": 0}}]
        )
        assert out == [{"_id": 1, "a": 1}]

    def test_project_computed(self):
        out = run_pipeline(
            [{"_id": 1, "a": 2}],
            [{"$project": {"double": {"$multiply": ["$a", 2]}}}],
        )
        assert out[0]["double"] == 4

    def test_group_accumulators(self):
        out = run_pipeline(
            DOCS,
            [
                {
                    "$group": {
                        "_id": "$group",
                        "n": {"$sum": 1},
                        "total": {"$sum": "$i"},
                        "avg": {"$avg": "$i"},
                        "lo": {"$min": "$i"},
                        "hi": {"$max": "$i"},
                        "first": {"$first": "$i"},
                        "last": {"$last": "$i"},
                        "all": {"$push": "$i"},
                    }
                },
                {"$sort": {"_id": 1}},
            ],
        )
        even = out[0]
        assert even["_id"] == "even"
        assert even["n"] == 5
        assert even["total"] == 20
        assert even["avg"] == 4
        assert (even["lo"], even["hi"]) == (0, 8)
        assert even["all"] == [0, 2, 4, 6, 8]

    def test_group_add_to_set(self):
        out = run_pipeline(
            [{"v": 1}, {"v": 1}, {"v": 2}],
            [{"$group": {"_id": None, "s": {"$addToSet": "$v"}}}],
        )
        assert sorted(out[0]["s"]) == [1, 2]

    def test_group_requires_id(self):
        with pytest.raises(AggregationError):
            run_pipeline(DOCS, [{"$group": {"n": {"$sum": 1}}}])

    def test_unknown_stage(self):
        with pytest.raises(AggregationError):
            run_pipeline(DOCS, [{"$lookup": {}}])

    def test_stage_must_be_single_key(self):
        with pytest.raises(AggregationError):
            run_pipeline(DOCS, [{"$match": {}, "$limit": 1}])


class TestBucketAuto:
    def test_even_counts(self):
        docs = [{"v": i} for i in range(100)]
        out = run_pipeline(
            docs, [{"$bucketAuto": {"groupBy": "$v", "buckets": 4}}]
        )
        assert len(out) == 4
        assert [b["count"] for b in out] == [25, 25, 25, 25]

    def test_boundaries_tile(self):
        docs = [{"v": i} for i in range(100)]
        out = run_pipeline(
            docs, [{"$bucketAuto": {"groupBy": "$v", "buckets": 4}}]
        )
        for a, b in zip(out, out[1:]):
            assert a["_id"]["max"] == b["_id"]["min"]
        assert out[0]["_id"]["min"] == 0
        assert out[-1]["_id"]["max"] == 99  # last max inclusive

    def test_never_splits_equal_values(self):
        # 50 copies of one value cannot be divided: MongoDB keeps them
        # in one bucket, possibly producing fewer buckets than asked.
        docs = [{"v": 1}] * 50 + [{"v": 2}] * 2
        out = run_pipeline(
            docs, [{"$bucketAuto": {"groupBy": "$v", "buckets": 4}}]
        )
        assert len(out) == 2
        assert out[0]["count"] == 50

    def test_skewed_counts_uneven_but_complete(self):
        docs = [{"v": 1}] * 30 + [{"v": i} for i in range(2, 32)]
        out = run_pipeline(
            docs, [{"$bucketAuto": {"groupBy": "$v", "buckets": 4}}]
        )
        assert sum(b["count"] for b in out) == 60

    def test_custom_output(self):
        docs = [{"v": i, "w": i * 2} for i in range(10)]
        out = run_pipeline(
            docs,
            [
                {
                    "$bucketAuto": {
                        "groupBy": "$v",
                        "buckets": 2,
                        "output": {"total_w": {"$sum": "$w"}},
                    }
                }
            ],
        )
        assert [b["total_w"] for b in out] == [20, 70]

    def test_dates_group_correctly(self):
        docs = [
            {"d": dt.datetime(2018, 7, 1, tzinfo=UTC) + dt.timedelta(days=i)}
            for i in range(30)
        ]
        out = run_pipeline(
            docs, [{"$bucketAuto": {"groupBy": "$d", "buckets": 3}}]
        )
        assert len(out) == 3
        assert out[0]["_id"]["min"] < out[1]["_id"]["min"]

    def test_null_group_by_rejected(self):
        with pytest.raises(AggregationError):
            run_pipeline([{"v": None}], [{"$bucketAuto": {"groupBy": "$v", "buckets": 2}}])

    def test_requires_positive_buckets(self):
        with pytest.raises(AggregationError):
            run_pipeline(DOCS, [{"$bucketAuto": {"groupBy": "$i", "buckets": 0}}])

    def test_empty_input(self):
        assert run_pipeline([], [{"$bucketAuto": {"groupBy": "$v", "buckets": 3}}]) == []


class TestCollectionAggregate:
    def test_collection_entry_point(self):
        col = Collection("t")
        col.insert_many(DOCS)
        out = col.aggregate(
            [{"$match": {"group": "even"}}, {"$count": "n"}]
        )
        assert out == [{"n": 5}]

    def test_does_not_mutate_documents(self):
        col = Collection("t")
        col.insert_one({"a": {"b": 1}})
        out = col.aggregate([{"$match": {}}])
        out[0]["a"]["b"] = 999
        assert col.find_one({})["a"]["b"] == 1
