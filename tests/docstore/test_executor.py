"""Tests for plan execution and its statistics."""

import datetime as dt

from repro.docstore.collection import Collection
from repro.docstore.matcher import Matcher, matches

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def build_collection(n=300):
    import random

    rng = random.Random(11)
    col = Collection("t")
    col.create_index([("h", 1), ("date", 1)], name="h_date")
    col.create_index([("date", 1)], name="date_1")
    for i in range(n):
        col.insert_one(
            {
                "h": rng.randrange(0, 40),
                "date": T0 + dt.timedelta(hours=rng.uniform(0, 24 * 60)),
                "v": i,
            }
        )
    return col


class TestIndexScanCorrectness:
    def test_agrees_with_brute_force(self):
        col = build_collection()
        q = {
            "h": {"$gte": 5, "$lte": 15},
            "date": {"$gte": T0, "$lte": T0 + dt.timedelta(days=20)},
        }
        result = col.find_with_stats(q)
        brute = [d for d in col.all_documents() if matches(q, d)]
        assert len(result) == len(brute)
        assert result.plan.kind == "IXSCAN"

    def test_or_ranges_agree_with_brute_force(self):
        col = build_collection()
        q = {
            "$or": [
                {"h": {"$gte": 0, "$lte": 3}},
                {"h": {"$gte": 30, "$lte": 35}},
                {"h": {"$in": [17]}},
            ],
            "date": {"$gte": T0, "$lte": T0 + dt.timedelta(days=30)},
        }
        result = col.find_with_stats(q)
        brute = [d for d in col.all_documents() if matches(q, d)]
        assert len(result) == len(brute)

    def test_no_duplicate_results_from_overlapping_intervals(self):
        col = Collection("t")
        col.create_index([("h", 1)], name="h_1")
        col.insert_one({"h": 5})
        q = {"$or": [{"h": {"$gte": 0, "$lte": 10}}, {"h": {"$in": [5]}}]}
        result = col.find_with_stats(q)
        assert len(result) == 1

    def test_exclusive_bounds(self):
        col = Collection("t")
        col.create_index([("v", 1)], name="v_1")
        for v in range(10):
            col.insert_one({"v": v})
        assert len(col.find_with_stats({"v": {"$gt": 3, "$lt": 7}})) == 3
        assert len(col.find_with_stats({"v": {"$gte": 3, "$lte": 7}})) == 5


class TestExecutionStats:
    def test_keys_examined_bounded_by_tree(self):
        col = build_collection(100)
        q = {"h": {"$gte": 0, "$lte": 39}}
        result = col.find_with_stats(q, hint="h_date")
        assert result.stats.keys_examined <= 100 + result.stats.seeks

    def test_narrow_scan_examines_few_keys(self):
        col = build_collection(500)
        q = {
            "h": 5,
            "date": {"$gte": T0, "$lte": T0 + dt.timedelta(days=1)},
        }
        result = col.find_with_stats(q, hint="h_date")
        # ~500/40 docs share h=5; only ~1/60 of dates match.
        assert result.stats.keys_examined < 30

    def test_docs_examined_counts_fetches(self):
        col = build_collection(200)
        q = {
            "h": {"$gte": 0, "$lte": 39},
            "v": {"$gte": 0},  # residual-only predicate
        }
        result = col.find_with_stats(q, hint="h_date")
        assert result.stats.docs_examined >= result.stats.n_returned

    def test_n_returned_matches_len(self):
        col = build_collection(100)
        result = col.find_with_stats({"h": {"$gte": 10, "$lte": 20}})
        assert result.stats.n_returned == len(result)

    def test_collscan_stats(self):
        col = build_collection(50)
        result = col.find_with_stats({"v": {"$gte": 25}})
        assert result.stats.stage == "COLLSCAN"
        assert result.stats.docs_examined == 50
        assert result.stats.keys_examined == 0

    def test_second_field_filtering_via_bounds(self):
        # With a compound (h, date) index, a narrow date bound must
        # reduce keys examined versus no date bound, for the same h.
        col = build_collection(500)
        broad = col.find_with_stats(
            {"h": {"$gte": 5, "$lte": 15}}, hint="h_date"
        )
        narrow = col.find_with_stats(
            {
                "h": {"$gte": 5, "$lte": 15},
                "date": {"$gte": T0, "$lte": T0 + dt.timedelta(days=2)},
            },
            hint="h_date",
        )
        assert narrow.stats.keys_examined < broad.stats.keys_examined

    def test_as_dict(self):
        col = build_collection(10)
        result = col.find_with_stats({"h": {"$gte": 0, "$lte": 39}})
        d = result.stats.as_dict()
        assert set(d) >= {
            "stage",
            "indexName",
            "keysExamined",
            "docsExamined",
            "nReturned",
        }
