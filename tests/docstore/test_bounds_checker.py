"""Unit tests for the index-bounds checker (executor internals)."""

from repro.docstore import bson
from repro.docstore.executor import _BoundsChecker
from repro.docstore.index import SCAN_BOTTOM, SCAN_TOP
from repro.docstore.planner import Interval


def iv(lo, hi, loi=True, hii=True):
    return Interval(bson.sort_key(lo), bson.sort_key(hi), loi, hii)


def key(*values, rid=0):
    return tuple(bson.sort_key(v) for v in values) + ((50, rid),)


class TestSingleField:
    def test_match_inside(self):
        checker = _BoundsChecker([[iv(5, 10)]])
        assert checker.check(key(7))[0] == "match"
        assert checker.check(key(5))[0] == "match"
        assert checker.check(key(10))[0] == "match"

    def test_gap_seeks_to_next_interval(self):
        checker = _BoundsChecker([[iv(1, 3), iv(8, 9)]])
        verdict, target = checker.check(key(5))
        assert verdict == "seek"
        assert target[0] == bson.sort_key(8)

    def test_above_all_is_done(self):
        checker = _BoundsChecker([[iv(1, 3)]])
        assert checker.check(key(99))[0] == "done"

    def test_exclusive_lower_bound(self):
        checker = _BoundsChecker([[iv(5, 10, loi=False)]])
        verdict, target = checker.check(key(5))
        assert verdict == "seek"
        assert target[-1] == SCAN_TOP  # skip all keys equal to 5

    def test_exclusive_upper_bound(self):
        checker = _BoundsChecker([[iv(5, 10, hii=False)]])
        assert checker.check(key(9))[0] == "match"
        assert checker.check(key(10))[0] != "match"

    def test_start_key(self):
        checker = _BoundsChecker([[iv(5, 10)], [iv(1, 2)]])
        assert checker.start_key() == (bson.sort_key(5), bson.sort_key(1))


class TestCompound:
    def test_second_field_gap(self):
        checker = _BoundsChecker([[iv(1, 9)], [iv(10, 20)]])
        verdict, target = checker.check(key(5, 3))
        assert verdict == "seek"
        # Same first value, second jumps to 10.
        assert target == (bson.sort_key(5), bson.sort_key(10))

    def test_second_field_exhausted_advances_first(self):
        checker = _BoundsChecker([[iv(1, 9)], [iv(10, 20)]])
        verdict, target = checker.check(key(5, 99))
        assert verdict == "seek"
        # Skip every remaining key with first field == 5.
        assert target == (bson.sort_key(5), SCAN_TOP)

    def test_full_match(self):
        checker = _BoundsChecker([[iv(1, 9)], [iv(10, 20)]])
        assert checker.check(key(5, 15))[0] == "match"

    def test_seek_targets_progress(self):
        # Every seek target must be strictly greater than the key it
        # was computed from — the executor's progress guarantee.
        checker = _BoundsChecker([[iv(2, 4), iv(8, 9)], [iv(5, 6)]])
        probes = [key(a, b) for a in range(12) for b in range(12)]
        for probe in probes:
            verdict, target = checker.check(probe)
            if verdict == "seek":
                assert target > probe[: len(target)] or target > probe

    def test_unbounded_suffix_fields_ignored(self):
        # Keys longer than the bounds (unconstrained trailing fields +
        # rid) are fine; only the bounded prefix is checked.
        checker = _BoundsChecker([[iv(1, 9)]])
        assert checker.check(key(5, "anything", rid=7))[0] == "match"
