"""Tests for polygon-valued documents (completing the future work)."""

import pytest

from repro.docstore.collection import Collection
from repro.docstore.index import Index, IndexDefinition
from repro.docstore.matcher import matches
from repro.geo.geometry import BoundingBox, Point, Polygon


def square(min_lon, min_lat, max_lon, max_lat):
    return BoundingBox(min_lon, min_lat, max_lon, max_lat).to_polygon()


def polygon_geojson(poly):
    from repro.geo.geojson import polygon_to_geojson

    return polygon_to_geojson(poly)


class TestPolygonGeometry:
    def test_boundary_is_linestring(self):
        poly = square(0, 0, 10, 10)
        boundary = poly.boundary()
        assert boundary.points[0] == boundary.points[-1]

    def test_intersects_box_overlap(self):
        poly = square(0, 0, 10, 10)
        assert poly.intersects_box(BoundingBox(5, 5, 15, 15))

    def test_intersects_box_polygon_inside(self):
        poly = square(2, 2, 3, 3)
        assert poly.intersects_box(BoundingBox(0, 0, 10, 10))

    def test_intersects_box_box_inside(self):
        poly = square(0, 0, 10, 10)
        assert poly.intersects_box(BoundingBox(4, 4, 5, 5))

    def test_disjoint(self):
        poly = square(0, 0, 2, 2)
        assert not poly.intersects_box(BoundingBox(5, 5, 8, 8))

    def test_sample_covers_interior(self):
        poly = square(0, 0, 4, 4)
        points = poly.sample(1.0)
        assert any(
            0.5 < p.lon < 3.5 and 0.5 < p.lat < 3.5 for p in points
        )


class TestPolygonIndexing:
    def test_polygon_indexes_many_cells(self):
        idx = Index(IndexDefinition.from_spec([("area", "2dsphere")]))
        idx.insert_document(
            1, {"area": polygon_geojson(square(23.0, 38.0, 23.6, 38.4))}
        )
        assert len(idx.tree) > 10
        assert idx.is_multikey()

    def test_geointersects_finds_overlapping_polygon(self):
        col = Collection("zones")
        col.create_index([("area", "2dsphere")], name="area_2d")
        col.insert_one(
            {"_id": "athens", "area": polygon_geojson(square(23.5, 37.8, 24.0, 38.2))}
        )
        col.insert_one(
            {"_id": "crete", "area": polygon_geojson(square(24.5, 35.0, 26.0, 35.6))}
        )
        q = {
            "area": {
                "$geoIntersects": {
                    "$geometry": polygon_geojson(square(23.8, 38.0, 24.2, 38.5))
                }
            }
        }
        result = col.find_with_stats(q)
        assert [d["_id"] for d in result] == ["athens"]

    def test_geowithin_polygon_value(self):
        inside = {"area": polygon_geojson(square(23.1, 38.0, 23.2, 38.1))}
        crossing = {"area": polygon_geojson(square(23.1, 38.0, 30.0, 40.0))}
        q = {"area": {"$geoWithin": {"$box": [[23.0, 37.9], [23.5, 38.2]]}}}
        assert matches(q, inside)
        assert not matches(q, crossing)

    def test_box_enclosed_by_polygon_intersects(self):
        # The query box lies strictly inside the stored polygon.
        doc = {"area": polygon_geojson(square(20.0, 35.0, 28.0, 41.0))}
        q = {
            "area": {
                "$geoIntersects": {
                    "$geometry": polygon_geojson(square(23.0, 38.0, 23.1, 38.1))
                }
            }
        }
        assert matches(q, doc)
