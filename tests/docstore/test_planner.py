"""Tests for query analysis, index bounds, and plan selection."""

import datetime as dt

import pytest

from repro.docstore import bson
from repro.docstore.index import Index, IndexDefinition, SCAN_BOTTOM, SCAN_TOP
from repro.docstore.planner import (
    CollScanPlan,
    IndexScanPlan,
    Interval,
    analyze_query,
    build_bounds_for_index,
    plan_query,
)
from repro.errors import PlanError, QueryError

UTC = dt.timezone.utc
T1 = dt.datetime(2018, 7, 1, tzinfo=UTC)
T2 = dt.datetime(2018, 8, 1, tzinfo=UTC)


class TestAnalyze:
    def test_eq_predicate(self):
        shape = analyze_query({"a": 5})
        assert shape.predicate("a").eq_values == [5]

    def test_range_predicates_tightened(self):
        shape = analyze_query({"a": {"$gte": 1, "$gt": 3, "$lte": 10}})
        p = shape.predicate("a")
        assert p.gt == 3 and not p.gt_inclusive
        assert p.lt == 10 and p.lt_inclusive

    def test_and_merging(self):
        shape = analyze_query({"$and": [{"a": {"$gte": 1}}, {"a": {"$lte": 9}}]})
        p = shape.predicate("a")
        assert p.gt == 1 and p.lt == 9

    def test_geo_predicate(self):
        shape = analyze_query(
            {"loc": {"$geoWithin": {"$box": [[0, 0], [1, 1]]}}}
        )
        assert shape.predicate("loc").geo_region is not None

    def test_single_path_or_folded(self):
        shape = analyze_query(
            {
                "$or": [
                    {"h": {"$gte": 1, "$lte": 5}},
                    {"h": {"$gte": 10, "$lte": 12}},
                    {"h": {"$in": [20, 30]}},
                ]
            }
        )
        p = shape.predicate("h")
        assert len(p.or_intervals) == 4
        assert not shape.opaque_or

    def test_multi_path_or_is_opaque(self):
        shape = analyze_query({"$or": [{"a": 1}, {"b": 2}]})
        assert shape.opaque_or
        assert shape.predicate("a") is None

    def test_or_with_unsupported_op_is_opaque(self):
        shape = analyze_query({"$or": [{"a": {"$ne": 1}}, {"a": 2}]})
        assert shape.opaque_or

    def test_unsupported_top_level_rejected(self):
        with pytest.raises(QueryError):
            analyze_query({"$text": {"$search": "x"}})

    def test_plain_intervals_merge_overlaps(self):
        shape = analyze_query({"a": {"$in": [1, 2, 3]}})
        intervals = shape.predicate("a").plain_intervals()
        # 1,2,3 are distinct points (not numerically adjacent in key
        # space), so three point intervals remain.
        assert len(intervals) == 3
        assert all(iv.is_point for iv in intervals)

    def test_eq_and_range_intersected(self):
        shape = analyze_query({"a": {"$eq": 5, "$gte": 1, "$lte": 10}})
        intervals = shape.predicate("a").plain_intervals()
        assert len(intervals) == 1
        assert intervals[0].is_point

    def test_eq_outside_range_drops_to_range(self):
        # Contradictory predicates: the planner keeps a safe interval
        # (the residual matcher returns nothing either way).
        shape = analyze_query({"a": {"$eq": 50, "$lte": 10}})
        intervals = shape.predicate("a").plain_intervals()
        assert len(intervals) == 1


class TestInterval:
    def test_full(self):
        iv = Interval.full()
        assert iv.is_full
        assert iv.width_fraction(None) == 1.0

    def test_point(self):
        iv = Interval.point(5)
        assert iv.is_point
        assert iv.width_fraction((0.0, 100.0)) < 0.01

    def test_width_fraction_with_stats(self):
        iv = Interval(bson.sort_key(10), bson.sort_key(20))
        assert iv.width_fraction((0.0, 100.0)) == pytest.approx(0.1)

    def test_width_fraction_clamps_to_domain(self):
        iv = Interval(bson.sort_key(-100), bson.sort_key(1000))
        assert iv.width_fraction((0.0, 100.0)) == 1.0

    def test_half_bounded_without_stats(self):
        iv = Interval(bson.sort_key(5), SCAN_TOP)
        assert 0 < iv.width_fraction(None) < 1


def _make_indexes(docs):
    compound = Index(
        IndexDefinition.from_spec(
            [("location", "2dsphere"), ("date", 1)], name="loc_date"
        )
    )
    date_idx = Index(IndexDefinition.from_spec([("date", 1)], name="date_1"))
    for rid, doc in enumerate(docs):
        compound.insert_document(rid, doc)
        date_idx.insert_document(rid, doc)
    return compound, date_idx


def _docs(n=200):
    import random

    rng = random.Random(3)
    out = []
    for i in range(n):
        out.append(
            {
                "location": {
                    "type": "Point",
                    "coordinates": [
                        rng.uniform(20.0, 28.0),
                        rng.uniform(35.0, 41.0),
                    ],
                },
                "date": T1 + dt.timedelta(minutes=rng.uniform(0, 60 * 24 * 90)),
                "v": i,
            }
        )
    return out


class TestBounds:
    def test_compound_bounds_geo_then_date(self):
        compound, _ = _make_indexes(_docs())
        shape = analyze_query(
            {
                "location": {"$geoWithin": {"$box": [[22, 36], [24, 38]]}},
                "date": {"$gte": T1, "$lte": T2},
            }
        )
        built = build_bounds_for_index(compound, shape)
        assert built is not None
        bounds, n_bounded = built
        assert n_bounded == 2
        assert len(bounds[0]) >= 1  # geohash covering ranges
        assert len(bounds[1]) == 1  # one date interval

    def test_first_field_unconstrained_unusable(self):
        compound, _ = _make_indexes(_docs())
        shape = analyze_query({"date": {"$gte": T1}})
        assert build_bounds_for_index(compound, shape) is None

    def test_date_index_bounds(self):
        _, date_idx = _make_indexes(_docs())
        shape = analyze_query({"date": {"$gte": T1, "$lte": T2}})
        built = build_bounds_for_index(date_idx, shape)
        assert built is not None
        bounds, n_bounded = built
        assert n_bounded == 1

    def test_or_intervals_fold_into_first_field(self):
        idx = Index(
            IndexDefinition.from_spec([("h", 1), ("date", 1)], name="h_date")
        )
        for rid in range(50):
            idx.insert_document(rid, {"h": rid, "date": T1})
        shape = analyze_query(
            {
                "$or": [
                    {"h": {"$gte": 1, "$lte": 5}},
                    {"h": {"$gte": 20, "$lte": 22}},
                ],
                "date": {"$gte": T1, "$lte": T2},
            }
        )
        built = build_bounds_for_index(idx, shape)
        assert built is not None
        bounds, n_bounded = built
        assert n_bounded == 2
        assert len(bounds[0]) == 2

    def test_geo_field_without_geo_predicate_unusable(self):
        compound, _ = _make_indexes(_docs())
        shape = analyze_query({"location": {"$eq": 5}, "date": {"$gte": T1}})
        assert build_bounds_for_index(compound, shape) is None


class TestPlanSelection:
    def test_picks_index_over_collscan(self):
        docs = _docs()
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query({"date": {"$gte": T1, "$lte": T2}})
        plan = plan_query(shape, [compound, date_idx], len(docs))
        assert isinstance(plan, IndexScanPlan)
        assert plan.index_name == "date_1"

    def test_collscan_when_nothing_usable(self):
        docs = _docs()
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query({"v": 5})
        plan = plan_query(shape, [compound, date_idx], len(docs))
        assert isinstance(plan, CollScanPlan)

    def test_hint_forces_index(self):
        docs = _docs()
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query(
            {
                "location": {"$geoWithin": {"$box": [[22, 36], [24, 38]]}},
                "date": {"$gte": T1, "$lte": T2},
            }
        )
        plan = plan_query(shape, [compound, date_idx], len(docs), hint="loc_date")
        assert plan.index_name == "loc_date"

    def test_bad_hint_raises(self):
        docs = _docs()
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query({"v": 5})
        with pytest.raises(PlanError):
            plan_query(shape, [compound, date_idx], len(docs), hint="loc_date")

    def test_narrow_date_prefers_date_index(self):
        # A one-hour window over 90 days: the date index should win
        # against a large geo covering (the Table 7 phenomenon).
        docs = _docs(500)
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query(
            {
                "location": {"$geoWithin": {"$box": [[20, 35], [28, 41]]}},
                "date": {"$gte": T1, "$lte": T1 + dt.timedelta(hours=1)},
            }
        )
        plan = plan_query(shape, [compound, date_idx], len(docs))
        assert isinstance(plan, IndexScanPlan)
        assert plan.index_name == "date_1"

    def test_tiny_box_prefers_compound(self):
        # A tiny box over a huge time range: the compound wins.
        docs = _docs(500)
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query(
            {
                "location": {
                    "$geoWithin": {"$box": [[23.70, 37.90], [23.71, 37.91]]}
                },
                "date": {"$gte": T1, "$lte": T1 + dt.timedelta(days=90)},
            }
        )
        plan = plan_query(shape, [compound, date_idx], len(docs))
        assert isinstance(plan, IndexScanPlan)
        assert plan.index_name == "loc_date"

    def test_describe_shapes(self):
        docs = _docs()
        compound, date_idx = _make_indexes(docs)
        shape = analyze_query({"date": {"$gte": T1, "$lte": T2}})
        plan = plan_query(shape, [compound, date_idx], len(docs))
        desc = plan.describe()
        assert desc["stage"] == "IXSCAN"
        assert "estimatedCost" in desc
        assert CollScanPlan(10.0).describe()["stage"] == "COLLSCAN"
