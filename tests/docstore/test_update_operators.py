"""Tests for the extended update operators."""

import pytest

from repro.docstore.collection import Collection
from repro.errors import DocumentStoreError


def col_with(doc):
    col = Collection("t")
    col.insert_one(doc)
    return col


class TestIncMul:
    def test_inc(self):
        col = col_with({"_id": 1, "n": 10})
        col.update_many({}, {"$inc": {"n": 5}})
        assert col.find_one({})["n"] == 15

    def test_inc_negative(self):
        col = col_with({"_id": 1, "n": 10})
        col.update_many({}, {"$inc": {"n": -3}})
        assert col.find_one({})["n"] == 7

    def test_inc_missing_starts_at_zero(self):
        col = col_with({"_id": 1})
        col.update_many({}, {"$inc": {"n": 4}})
        assert col.find_one({})["n"] == 4

    def test_mul(self):
        col = col_with({"_id": 1, "n": 6})
        col.update_many({}, {"$mul": {"n": 2}})
        assert col.find_one({})["n"] == 12

    def test_inc_nested_path(self):
        col = col_with({"_id": 1, "stats": {"hits": 1}})
        col.update_many({}, {"$inc": {"stats.hits": 1}})
        assert col.find_one({})["stats"]["hits"] == 2


class TestMinMax:
    def test_min_lowers(self):
        col = col_with({"_id": 1, "n": 10})
        col.update_many({}, {"$min": {"n": 5}})
        assert col.find_one({})["n"] == 5

    def test_min_keeps_lower(self):
        col = col_with({"_id": 1, "n": 3})
        col.update_many({}, {"$min": {"n": 5}})
        assert col.find_one({})["n"] == 3

    def test_max_raises(self):
        col = col_with({"_id": 1, "n": 10})
        col.update_many({}, {"$max": {"n": 20}})
        assert col.find_one({})["n"] == 20

    def test_min_on_missing_sets(self):
        col = col_with({"_id": 1})
        col.update_many({}, {"$min": {"n": 5}})
        assert col.find_one({})["n"] == 5


class TestPush:
    def test_appends(self):
        col = col_with({"_id": 1, "tags": ["a"]})
        col.update_many({}, {"$push": {"tags": "b"}})
        assert col.find_one({})["tags"] == ["a", "b"]

    def test_creates_array(self):
        col = col_with({"_id": 1})
        col.update_many({}, {"$push": {"tags": "a"}})
        assert col.find_one({})["tags"] == ["a"]


class TestIndexMaintenance:
    def test_inc_reindexes(self):
        col = Collection("t")
        col.create_index([("n", 1)], name="n_1")
        col.insert_one({"_id": 1, "n": 10})
        col.update_many({}, {"$inc": {"n": 90}})
        assert len(col.find_with_stats({"n": {"$gte": 99}}, hint="n_1")) == 1
        assert len(col.find_with_stats({"n": {"$lte": 50}}, hint="n_1")) == 0

    def test_combined_operators(self):
        col = col_with({"_id": 1, "a": 1, "b": 5, "junk": True})
        col.update_many(
            {},
            {
                "$set": {"c": "x"},
                "$inc": {"a": 1},
                "$max": {"b": 9},
                "$unset": {"junk": ""},
            },
        )
        doc = col.find_one({})
        assert doc["a"] == 2 and doc["b"] == 9 and doc["c"] == "x"
        assert "junk" not in doc

    def test_unknown_operator_rejected(self):
        col = col_with({"_id": 1})
        with pytest.raises(DocumentStoreError):
            col.update_many({}, {"$rename": {"a": "b"}})
