"""Tests for the B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.btree import BPlusTree


def build(entries, order=8):
    tree = BPlusTree(order=order)
    for k, v in entries:
        tree.insert(k, v)
    return tree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert list(tree.scan_all()) == []

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_scan_sorted(self):
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        tree = build([(k, k * 10) for k in keys])
        scanned = list(tree.scan_all())
        assert [k for k, _ in scanned] == sorted(keys)
        assert all(v == k * 10 for k, v in scanned)

    def test_min_max(self):
        tree = build([(k, None) for k in (5, 1, 9, 3)])
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_duplicates_preserved(self):
        tree = build([(1, "a"), (1, "b"), (1, "c"), (2, "d")])
        assert len(tree) == 4
        payloads = [v for k, v in tree.scan_all() if k == 1]
        assert sorted(payloads) == ["a", "b", "c"]

    def test_height_grows(self):
        tree = build([(k, None) for k in range(1000)], order=4)
        assert tree.height > 2
        tree.validate()


class TestSeek:
    def test_seek_exact(self):
        tree = build([(k, None) for k in range(0, 100, 2)])
        entries = list(tree.seek(40))
        assert entries[0][0] == 40

    def test_seek_between_keys(self):
        tree = build([(k, None) for k in range(0, 100, 2)])
        entries = list(tree.seek(41))
        assert entries[0][0] == 42

    def test_seek_past_end(self):
        tree = build([(k, None) for k in range(10)])
        assert list(tree.seek(100)) == []

    def test_seek_before_start(self):
        tree = build([(k, None) for k in range(5, 10)])
        assert [k for k, _ in tree.seek(0)] == [5, 6, 7, 8, 9]

    def test_seek_finds_all_duplicates(self):
        # Duplicates may straddle leaf splits; seek must find the first.
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(7, i)
        for i in range(50):
            tree.insert(3, i)
        dupes = [v for k, v in tree.seek(7) if k == 7]
        assert len(dupes) == 50

    def test_seek_tuple_keys_prefix(self):
        # Tuple keys: a shorter seek tuple lands before all extensions.
        tree = build([((1, i), i) for i in range(10)] + [((2, 0), 99)])
        entries = list(tree.seek((2,)))
        assert entries[0] == ((2, 0), 99)


class TestRemove:
    def test_remove_existing(self):
        tree = build([(k, k) for k in range(20)])
        assert tree.remove(5, 5)
        assert len(tree) == 19
        assert 5 not in [k for k, _ in tree.scan_all()]

    def test_remove_missing_returns_false(self):
        tree = build([(1, 1)])
        assert not tree.remove(2, 2)
        assert not tree.remove(1, 999)  # wrong payload
        assert len(tree) == 1

    def test_remove_specific_duplicate(self):
        tree = build([(1, "a"), (1, "b")])
        assert tree.remove(1, "a")
        remaining = [v for _, v in tree.scan_all()]
        assert remaining == ["b"]

    def test_remove_all_then_reinsert(self):
        tree = build([(k, k) for k in range(50)], order=4)
        for k in range(50):
            assert tree.remove(k, k)
        assert len(tree) == 0
        tree.insert(7, 7)
        assert list(tree.scan_all()) == [(7, 7)]
        tree.validate()

    def test_scan_correct_after_removals(self):
        tree = build([(k, k) for k in range(100)], order=4)
        for k in range(0, 100, 3):
            tree.remove(k, k)
        expected = [k for k in range(100) if k % 3 != 0]
        assert [k for k, _ in tree.scan_all()] == expected
        tree.validate()


class TestCountRange:
    def test_inclusive(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(3, 6) == 4

    def test_exclusive_bounds(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(3, 6, lo_inclusive=False) == 3
        assert tree.count_range(3, 6, hi_inclusive=False) == 3
        assert (
            tree.count_range(3, 6, lo_inclusive=False, hi_inclusive=False)
            == 2
        )

    def test_empty_range(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(100, 200) == 0


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=200), min_size=0, max_size=200
    ),
    order=st.integers(min_value=4, max_value=16),
)
def test_property_matches_sorted_list(keys, order):
    """The tree is observationally a sorted multiset."""
    tree = BPlusTree(order=order)
    for i, k in enumerate(keys):
        tree.insert(k, i)
    assert len(tree) == len(keys)
    assert [k for k, _ in tree.scan_all()] == sorted(keys)
    tree.validate()
    if keys:
        probe = keys[len(keys) // 2]
        expected_tail = sorted(k for k in keys if k >= probe)
        assert [k for k, _ in tree.seek(probe)] == expected_tail


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        min_size=1,
        max_size=150,
    )
)
def test_property_insert_remove_interleaved(ops):
    """Random insert/remove sequences keep the tree consistent."""
    tree = BPlusTree(order=4)
    reference = []
    for is_insert, key in ops:
        if is_insert:
            tree.insert(key, key)
            reference.append(key)
        else:
            removed = tree.remove(key, key)
            if key in reference:
                assert removed
                reference.remove(key)
            else:
                assert not removed
    assert [k for k, _ in tree.scan_all()] == sorted(reference)
    tree.validate()
