"""Tests for the B+tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.btree import BPlusTree


def build(entries, order=8):
    tree = BPlusTree(order=order)
    for k, v in entries:
        tree.insert(k, v)
    return tree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.min_key() is None
        assert tree.max_key() is None
        assert list(tree.scan_all()) == []

    def test_rejects_tiny_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_insert_and_scan_sorted(self):
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        tree = build([(k, k * 10) for k in keys])
        scanned = list(tree.scan_all())
        assert [k for k, _ in scanned] == sorted(keys)
        assert all(v == k * 10 for k, v in scanned)

    def test_min_max(self):
        tree = build([(k, None) for k in (5, 1, 9, 3)])
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_duplicates_preserved(self):
        tree = build([(1, "a"), (1, "b"), (1, "c"), (2, "d")])
        assert len(tree) == 4
        payloads = [v for k, v in tree.scan_all() if k == 1]
        assert sorted(payloads) == ["a", "b", "c"]

    def test_height_grows(self):
        tree = build([(k, None) for k in range(1000)], order=4)
        assert tree.height > 2
        tree.validate()


class TestSeek:
    def test_seek_exact(self):
        tree = build([(k, None) for k in range(0, 100, 2)])
        entries = list(tree.seek(40))
        assert entries[0][0] == 40

    def test_seek_between_keys(self):
        tree = build([(k, None) for k in range(0, 100, 2)])
        entries = list(tree.seek(41))
        assert entries[0][0] == 42

    def test_seek_past_end(self):
        tree = build([(k, None) for k in range(10)])
        assert list(tree.seek(100)) == []

    def test_seek_before_start(self):
        tree = build([(k, None) for k in range(5, 10)])
        assert [k for k, _ in tree.seek(0)] == [5, 6, 7, 8, 9]

    def test_seek_finds_all_duplicates(self):
        # Duplicates may straddle leaf splits; seek must find the first.
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(7, i)
        for i in range(50):
            tree.insert(3, i)
        dupes = [v for k, v in tree.seek(7) if k == 7]
        assert len(dupes) == 50

    def test_seek_tuple_keys_prefix(self):
        # Tuple keys: a shorter seek tuple lands before all extensions.
        tree = build([((1, i), i) for i in range(10)] + [((2, 0), 99)])
        entries = list(tree.seek((2,)))
        assert entries[0] == ((2, 0), 99)


class TestRemove:
    def test_remove_existing(self):
        tree = build([(k, k) for k in range(20)])
        assert tree.remove(5, 5)
        assert len(tree) == 19
        assert 5 not in [k for k, _ in tree.scan_all()]

    def test_remove_missing_returns_false(self):
        tree = build([(1, 1)])
        assert not tree.remove(2, 2)
        assert not tree.remove(1, 999)  # wrong payload
        assert len(tree) == 1

    def test_remove_specific_duplicate(self):
        tree = build([(1, "a"), (1, "b")])
        assert tree.remove(1, "a")
        remaining = [v for _, v in tree.scan_all()]
        assert remaining == ["b"]

    def test_remove_all_then_reinsert(self):
        tree = build([(k, k) for k in range(50)], order=4)
        for k in range(50):
            assert tree.remove(k, k)
        assert len(tree) == 0
        tree.insert(7, 7)
        assert list(tree.scan_all()) == [(7, 7)]
        tree.validate()

    def test_scan_correct_after_removals(self):
        tree = build([(k, k) for k in range(100)], order=4)
        for k in range(0, 100, 3):
            tree.remove(k, k)
        expected = [k for k in range(100) if k % 3 != 0]
        assert [k for k, _ in tree.scan_all()] == expected
        tree.validate()


class TestCountRange:
    def test_inclusive(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(3, 6) == 4

    def test_exclusive_bounds(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(3, 6, lo_inclusive=False) == 3
        assert tree.count_range(3, 6, hi_inclusive=False) == 3
        assert (
            tree.count_range(3, 6, lo_inclusive=False, hi_inclusive=False)
            == 2
        )

    def test_empty_range(self):
        tree = build([(k, None) for k in range(10)])
        assert tree.count_range(100, 200) == 0


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=200), min_size=0, max_size=200
    ),
    order=st.integers(min_value=4, max_value=16),
)
def test_property_matches_sorted_list(keys, order):
    """The tree is observationally a sorted multiset."""
    tree = BPlusTree(order=order)
    for i, k in enumerate(keys):
        tree.insert(k, i)
    assert len(tree) == len(keys)
    assert [k for k, _ in tree.scan_all()] == sorted(keys)
    tree.validate()
    if keys:
        probe = keys[len(keys) // 2]
        expected_tail = sorted(k for k in keys if k >= probe)
        assert [k for k, _ in tree.seek(probe)] == expected_tail


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        min_size=1,
        max_size=150,
    )
)
def test_property_insert_remove_interleaved(ops):
    """Random insert/remove sequences keep the tree consistent."""
    tree = BPlusTree(order=4)
    reference = []
    for is_insert, key in ops:
        if is_insert:
            tree.insert(key, key)
            reference.append(key)
        else:
            removed = tree.remove(key, key)
            if key in reference:
                assert removed
                reference.remove(key)
            else:
                assert not removed
    assert [k for k, _ in tree.scan_all()] == sorted(reference)
    tree.validate()


def _reference_scan(tree, ranges):
    """Per-range root descents — the semantics scan_ranges must match."""
    out = []
    for lo, hi, lo_inc, hi_inc in ranges:
        for key, payload in tree.seek(lo):
            if not lo_inc and key == lo:
                continue
            if key > hi or (not hi_inc and key == hi):
                break
            out.append((key, payload))
    return out


class TestScanRanges:
    def test_matches_per_range_seeks(self):
        tree = build([(k, k) for k in range(0, 200, 2)], order=4)
        ranges = [(3, 11, True, True), (40, 41, True, True),
                  (100, 140, True, False)]
        assert list(tree.scan_ranges(ranges)) == _reference_scan(
            tree, ranges
        )

    def test_exclusive_bounds(self):
        tree = build([(k, None) for k in range(10)], order=4)
        got = [k for k, _ in tree.scan_ranges([(2, 6, False, False)])]
        assert got == [3, 4, 5]

    def test_overshoot_key_feeds_next_range(self):
        # After range [0, 3] the cursor has peeked key 4 (the
        # overshoot); range [4, 5] must still yield it.
        tree = build([(k, None) for k in range(10)], order=4)
        got = [
            k
            for k, _ in tree.scan_ranges(
                [(0, 3, True, True), (4, 5, True, True)]
            )
        ]
        assert got == [0, 1, 2, 3, 4, 5]

    def test_duplicate_keys_across_leaf_splits(self):
        entries = [(5, i) for i in range(30)] + [(7, "x"), (3, "y")]
        tree = build(entries, order=4)
        got = list(tree.scan_ranges([(5, 5, True, True)]))
        assert [k for k, _ in got] == [5] * 30
        assert sorted(p for _, p in got) == sorted(range(30))

    def test_empty_ranges_between_keys(self):
        tree = build([(k, None) for k in (1, 10, 20)], order=4)
        got = [
            k
            for k, _ in tree.scan_ranges(
                [(2, 9, True, True), (11, 19, True, True),
                 (20, 25, True, True)]
            )
        ]
        assert got == [20]

    def test_randomized_against_reference(self):
        rng = random.Random(42)
        keys = [rng.randrange(0, 500) for _ in range(300)]
        tree = build([(k, i) for i, k in enumerate(keys)], order=4)
        for _ in range(25):
            cuts = sorted(rng.sample(range(0, 510), 6))
            ranges = [
                (
                    cuts[i],
                    cuts[i + 1] - 1,
                    rng.random() < 0.5,
                    rng.random() < 0.5,
                )
                for i in range(0, 6, 2)
                if cuts[i] <= cuts[i + 1] - 1
            ]
            assert list(tree.scan_ranges(ranges)) == _reference_scan(
                tree, ranges
            ), ranges


class TestCursor:
    def test_seek_peek_advance(self):
        tree = build([(k, k) for k in range(0, 20, 2)], order=4)
        cur = tree.cursor()
        cur.seek(5)
        assert cur.peek() == (6, 6)
        cur.advance()
        assert cur.peek() == (8, 8)

    def test_backward_seek_is_noop(self):
        tree = build([(k, None) for k in range(10)], order=4)
        cur = tree.cursor()
        cur.seek(7)
        cur.seek(2)  # must not move backward
        assert cur.peek()[0] == 7

    def test_seek_past_end_exhausts(self):
        tree = build([(k, None) for k in range(5)], order=4)
        cur = tree.cursor()
        cur.seek(100)
        assert cur.peek() is None
        cur.seek(0)  # exhausted cursors stay exhausted
        assert cur.peek() is None

    def test_nearby_seek_walks_leaf_chain(self):
        # Monotone seeks across many leaves must agree with fresh
        # root descents at every step.
        tree = build([(k, k) for k in range(200)], order=4)
        cur = tree.cursor()
        for target in range(0, 200, 7):
            cur.seek(target)
            expect = next(iter(tree.seek(target)), None)
            assert cur.peek() == expect

    def test_far_seek_redescends(self):
        tree = build([(k, k) for k in range(5000)], order=4)
        cur = tree.cursor()
        cur.seek(1)
        cur.seek(4998)  # beyond _MAX_LEAF_SKIPS leaf hops
        assert cur.peek() == (4998, 4998)
