"""Tests for the Database namespace."""

import pytest

from repro.docstore.database import Database
from repro.errors import DocumentStoreError


class TestDatabase:
    def test_lazy_collection_creation(self):
        db = Database("d")
        col = db.collection("traces")
        assert col.name == "traces"
        assert db.collection("traces") is col
        assert db["traces"] is col

    def test_list_collections(self):
        db = Database("d")
        db.collection("a")
        db.collection("b")
        assert db.list_collections() == ["a", "b"]

    def test_drop_collection(self):
        db = Database("d")
        db.collection("a")
        db.drop_collection("a")
        assert db.list_collections() == []

    def test_drop_missing_rejected(self):
        with pytest.raises(DocumentStoreError):
            Database("d").drop_collection("nope")

    def test_shared_storage_model(self):
        from repro.docstore.storage import StorageModel

        model = StorageModel(block_compression=0.9)
        db = Database("d", storage_model=model)
        assert db.collection("a").storage_model is model

    def test_stats(self):
        db = Database("d")
        db.collection("a").insert_many({"i": i} for i in range(5))
        db.collection("b").insert_one({"x": 1})
        stats = db.stats()
        assert stats["collections"] == 2
        assert stats["objects"] == 6
        assert stats["dataSize"] > 0
        assert stats["totalIndexSize"] > 0


class TestCursorEdgeCases:
    def test_empty_cursor(self):
        from repro.docstore.cursor import Cursor

        cursor = Cursor([])
        assert cursor.to_list() == []
        assert cursor.first() is None
        assert len(cursor) == 0

    def test_negative_modifiers_rejected(self):
        from repro.docstore.cursor import Cursor

        with pytest.raises(ValueError):
            Cursor([]).skip(-1)
        with pytest.raises(ValueError):
            Cursor([]).limit(-1)

    def test_sort_missing_fields_first_ascending(self):
        from repro.docstore.cursor import Cursor

        docs = [{"a": 2}, {"b": 1}, {"a": 1}]
        out = Cursor(docs).sort({"a": 1}).to_list()
        # Missing sorts as null, before numbers (BSON bracket order).
        assert out[0] == {"b": 1}
        assert [d.get("a") for d in out[1:]] == [1, 2]
