"""Tests for k-NN search over the Hilbert deployment."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.core.knn import knn
from repro.geo.geometry import Point, haversine_km

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)
T1 = dt.datetime(2018, 12, 1, tzinfo=UTC)
CENTER = Point(23.7275, 37.9838)


@pytest.fixture(scope="module")
def deployment():
    rng = random.Random(12)
    docs = [
        {
            "location": {
                "type": "Point",
                "coordinates": [rng.uniform(22.5, 25.0), rng.uniform(37.0, 39.0)],
            },
            "date": T0 + dt.timedelta(hours=rng.uniform(0, 24 * 120)),
            "v": i,
        }
        for i in range(500)
    ]
    return deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=4),
        chunk_max_bytes=8 * 1024,
    )


def brute_force(deployment, k):
    docs = []
    for shard in deployment.cluster.shards.values():
        docs.extend(shard.collection("traces").all_documents())
    ranked = sorted(
        docs,
        key=lambda d: haversine_km(
            CENTER,
            Point(
                d["location"]["coordinates"][0],
                d["location"]["coordinates"][1],
            ),
        ),
    )
    return [d["v"] for d in ranked[:k]]


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_brute_force(self, deployment, k):
        results = knn(deployment, CENTER, k, T0, T1)
        assert len(results) == k
        assert [r.document["v"] for r in results] == brute_force(
            deployment, k
        )

    def test_distances_sorted(self, deployment):
        results = knn(deployment, CENTER, 10, T0, T1)
        distances = [r.distance_km for r in results]
        assert distances == sorted(distances)

    def test_time_window_respected(self, deployment):
        narrow_from = T0
        narrow_to = T0 + dt.timedelta(days=7)
        results = knn(deployment, CENTER, 5, narrow_from, narrow_to)
        for r in results:
            assert narrow_from <= r.document["date"] <= narrow_to

    def test_k_larger_than_dataset(self, deployment):
        results = knn(
            deployment,
            CENTER,
            10_000,
            T0,
            T1,
            max_radius_deg=16.0,
        )
        assert len(results) <= 500

    def test_rejects_bad_k(self, deployment):
        with pytest.raises(ValueError):
            knn(deployment, CENTER, 0, T0, T1)
