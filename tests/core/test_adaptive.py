"""Tests for workload-aware zoning."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.adaptive import (
    WeightedQuery,
    configure_workload_aware_zones,
    workload_aware_boundaries,
)
from repro.core.approaches import deploy_approach, make_approach
from repro.core.benchmark import measure_query
from repro.core.query import SpatioTemporalQuery
from repro.core.zoning import configure_zones
from repro.errors import ZoneError
from repro.geo.geometry import BoundingBox

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)

#: A hot region holding a minority of documents.
HOT_BOX = BoundingBox(23.6, 38.0, 23.9, 38.3)


def make_docs(n=1200, seed=11):
    """70% background over a wide box, 30% inside the hot region."""
    rng = random.Random(seed)
    docs = []
    for i in range(n):
        if i % 10 < 3:
            lon = rng.uniform(HOT_BOX.min_lon, HOT_BOX.max_lon)
            lat = rng.uniform(HOT_BOX.min_lat, HOT_BOX.max_lat)
        else:
            lon = rng.uniform(20.0, 28.0)
            lat = rng.uniform(35.0, 41.5)
        docs.append(
            {
                "location": {"type": "Point", "coordinates": [lon, lat]},
                "date": T0 + dt.timedelta(minutes=rng.uniform(0, 60 * 24 * 90)),
            }
        )
    return docs


def hot_query(label="hot"):
    return SpatioTemporalQuery(
        bbox=HOT_BOX,
        time_from=T0,
        time_to=T0 + dt.timedelta(days=90),
        label=label,
    )


@pytest.fixture(scope="module")
def deployments():
    docs = make_docs()
    plain = deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=6),
        chunk_max_bytes=8 * 1024,
        use_zones=True,
    )
    adaptive = deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=6),
        chunk_max_bytes=8 * 1024,
    )
    workload = [WeightedQuery(hot_query(), weight=10.0)]
    configure_workload_aware_zones(
        adaptive.cluster,
        adaptive.collection,
        workload,
        adaptive.approach.encoder,
    )
    adaptive.zones_enabled = True
    return {"plain": plain, "adaptive": adaptive}


class TestBoundaries:
    def test_boundary_count(self, deployments):
        dep = deployments["plain"]
        workload = [WeightedQuery(hot_query())]
        bounds = workload_aware_boundaries(
            dep.cluster,
            dep.collection,
            "hilbertIndex",
            workload,
            dep.approach.encoder,
            n_zones=6,
        )
        assert len(bounds) <= 5
        assert bounds == sorted(bounds)

    def test_empty_workload_rejected(self, deployments):
        dep = deployments["plain"]
        with pytest.raises(ZoneError):
            workload_aware_boundaries(
                dep.cluster,
                dep.collection,
                "hilbertIndex",
                [],
                dep.approach.encoder,
                n_zones=4,
            )

    def test_weight_must_be_positive(self):
        with pytest.raises(ZoneError):
            WeightedQuery(hot_query(), weight=0.0)


class TestEffect:
    def test_results_identical(self, deployments):
        q = hot_query()
        plain, _ = deployments["plain"].execute(q)
        adaptive, _ = deployments["adaptive"].execute(q)
        assert len(plain) == len(adaptive)
        assert len(plain) > 0

    def test_hot_region_spreads_over_more_shards(self, deployments):
        q = hot_query()
        plain = measure_query(deployments["plain"], q, runs=1, average_last=1)
        adaptive = measure_query(
            deployments["adaptive"], q, runs=1, average_last=1
        )
        assert adaptive.nodes >= plain.nodes

    def test_straggler_work_not_worse(self, deployments):
        q = hot_query()
        plain = measure_query(deployments["plain"], q, runs=1, average_last=1)
        adaptive = measure_query(
            deployments["adaptive"], q, runs=1, average_last=1
        )
        assert adaptive.max_docs_examined <= plain.max_docs_examined

    def test_chunk_map_valid_after_adaptive_zones(self, deployments):
        deployments["adaptive"].cluster.validate("traces")
