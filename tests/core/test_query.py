"""Tests for spatio-temporal query rendering."""

import datetime as dt

import pytest

from repro.core.encoder import SpatioTemporalEncoder
from repro.core.query import SpatioTemporalQuery
from repro.docstore.matcher import matches
from repro.geo.geometry import BoundingBox

UTC = dt.timezone.utc
T1 = dt.datetime(2018, 8, 1, tzinfo=UTC)
T2 = dt.datetime(2018, 8, 8, tzinfo=UTC)
BOX = BoundingBox(23.606039, 38.023982, 24.032754, 38.353926)


def make_query(label="Qb3"):
    return SpatioTemporalQuery(bbox=BOX, time_from=T1, time_to=T2, label=label)


class TestConstruction:
    def test_rejects_inverted_time(self):
        with pytest.raises(ValueError):
            SpatioTemporalQuery(bbox=BOX, time_from=T2, time_to=T1)

    def test_duration(self):
        assert make_query().duration == dt.timedelta(days=7)


class TestBaselineRendering:
    def test_shape(self):
        q = make_query().to_baseline_query()
        assert "$geoWithin" in q["location"]
        assert q["date"] == {"$gte": T1, "$lte": T2}

    def test_matches_inside_point(self):
        q = make_query().to_baseline_query()
        doc = {
            "location": {"type": "Point", "coordinates": [23.8, 38.2]},
            "date": T1 + dt.timedelta(days=1),
        }
        assert matches(q, doc)

    def test_rejects_outside_space_or_time(self):
        q = make_query().to_baseline_query()
        wrong_place = {
            "location": {"type": "Point", "coordinates": [20.0, 38.2]},
            "date": T1 + dt.timedelta(days=1),
        }
        wrong_time = {
            "location": {"type": "Point", "coordinates": [23.8, 38.2]},
            "date": T2 + dt.timedelta(days=1),
        }
        assert not matches(q, wrong_place)
        assert not matches(q, wrong_time)

    def test_custom_field_names(self):
        q = SpatioTemporalQuery(
            bbox=BOX,
            time_from=T1,
            time_to=T2,
            location_field="pos",
            date_field="ts",
        ).to_baseline_query()
        assert set(q) == {"pos", "ts"}


class TestHilbertRendering:
    def test_structure_matches_paper_example(self):
        # Section 4.2.2: $geoWithin + date range + $or of hilbertIndex
        # {$gte,$lte} ranges and one $in of individual cells.
        enc = SpatioTemporalEncoder.hilbert_global()
        rendering = make_query().to_hilbert_query(enc)
        q = rendering.query
        assert "$geoWithin" in q["location"]
        assert "$or" in q
        ops = set()
        for clause in q["$or"]:
            ((field, value),) = clause.items()
            assert field == "hilbertIndex"
            ops.update(value.keys())
        assert "$gte" in ops and "$lte" in ops
        if rendering.range_set.singles:
            assert "$in" in ops

    def test_covering_contains_inside_points(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        rendering = make_query().to_hilbert_query(enc)
        import random

        rng = random.Random(9)
        for _ in range(100):
            lon = rng.uniform(BOX.min_lon, BOX.max_lon)
            lat = rng.uniform(BOX.min_lat, BOX.max_lat)
            doc = {
                "location": {"type": "Point", "coordinates": [lon, lat]},
                "date": T1 + dt.timedelta(days=2),
                "hilbertIndex": enc.encode_lonlat(lon, lat),
            }
            assert matches(rendering.query, doc)

    def test_enriched_docs_match_equivalently(self):
        # For points, hilbert-form and baseline-form queries agree.
        enc = SpatioTemporalEncoder.hilbert_global()
        stq = make_query()
        hq = stq.to_hilbert_query(enc).query
        bq = stq.to_baseline_query()
        import random

        rng = random.Random(4)
        for _ in range(200):
            lon = rng.uniform(23.0, 24.5)
            lat = rng.uniform(37.5, 38.6)
            doc = enc.enrich(
                {
                    "location": {"type": "Point", "coordinates": [lon, lat]},
                    "date": T1 + dt.timedelta(hours=rng.uniform(0, 400)),
                }
            )
            assert matches(hq, doc) == matches(bq, doc)

    def test_decomposition_time_measured(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        rendering = make_query().to_hilbert_query(enc)
        assert rendering.decomposition_ms >= 0.0

    def test_max_ranges_cap(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        rendering = make_query().to_hilbert_query(enc, max_ranges=3)
        assert len(rendering.range_set.all_ranges) <= 3

    def test_restricted_curve_has_more_cells(self):
        # hil* effectively has higher precision → more covering cells.
        global_enc = SpatioTemporalEncoder.hilbert_global()
        local_enc = SpatioTemporalEncoder.hilbert_for_bbox(
            BoundingBox(23.0, 37.5, 24.5, 38.6)
        )
        stq = make_query()
        g = stq.to_hilbert_query(global_enc).range_set.total_cells
        l = stq.to_hilbert_query(local_enc).range_set.total_cells
        assert l > g
