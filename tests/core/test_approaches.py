"""Tests for approach recipes and deployment."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import (
    APPROACH_NAMES,
    BaselineST,
    BaselineTS,
    HilbertApproach,
    deploy_approach,
    make_approach,
)
from repro.core.loader import BulkLoader
from repro.core.query import SpatioTemporalQuery
from repro.geo.geometry import BoundingBox

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)
BBOX = BoundingBox(23.0, 37.5, 24.5, 38.6)


def make_docs(n=800, seed=3):
    rng = random.Random(seed)
    docs = []
    for i in range(n):
        docs.append(
            {
                "vehicle": i % 17,
                "location": {
                    "type": "Point",
                    "coordinates": [
                        rng.uniform(BBOX.min_lon, BBOX.max_lon),
                        rng.uniform(BBOX.min_lat, BBOX.max_lat),
                    ],
                },
                "date": T0 + dt.timedelta(minutes=rng.uniform(0, 60 * 24 * 75)),
            }
        )
    return docs


def make_query():
    return SpatioTemporalQuery(
        bbox=BoundingBox(23.6, 38.0, 24.0, 38.35),
        time_from=T0,
        time_to=T0 + dt.timedelta(days=7),
        label="Q",
    )


class TestRecipes:
    def test_factory_names(self):
        for name in APPROACH_NAMES:
            approach = make_approach(name, dataset_bbox=BBOX)
            assert approach.name == name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_approach("zorder")

    def test_hilstar_requires_bbox(self):
        with pytest.raises(ValueError):
            make_approach("hilstar")

    def test_baseline_shard_keys(self):
        assert BaselineST().shard_key_spec() == [("date", 1)]
        assert BaselineTS().shard_key_spec() == [("date", 1)]

    def test_baseline_index_field_order_differs(self):
        st_spec = BaselineST().index_specs()[0][0]
        ts_spec = BaselineTS().index_specs()[0][0]
        assert st_spec[0][0] == "location"
        assert ts_spec[0][0] == "date"

    def test_hilbert_shard_key_is_compound(self):
        assert HilbertApproach.global_domain().shard_key_spec() == [
            ("hilbertIndex", 1),
            ("date", 1),
        ]

    def test_hilbert_needs_no_extra_index(self):
        # Appendix A.3: hil has only the _id and shard-key indexes.
        assert HilbertApproach.global_domain().index_specs() == []

    def test_zone_fields(self):
        assert BaselineST().zone_field() == "date"
        assert HilbertApproach.global_domain().zone_field() == "hilbertIndex"

    def test_transform(self):
        doc = make_docs(1)[0]
        assert "hilbertIndex" in HilbertApproach.global_domain().transform(doc)
        assert "hilbertIndex" not in BaselineST().transform(doc)


TOPOLOGY = ClusterTopology(n_shards=4)


class TestDeployment:
    @pytest.mark.parametrize("name", APPROACH_NAMES)
    def test_deploy_and_query_all_approaches_agree(self, name):
        docs = make_docs()
        approach = make_approach(name, dataset_bbox=BBOX)
        deployment = deploy_approach(
            approach,
            docs,
            topology=TOPOLOGY,
            chunk_max_bytes=8 * 1024,
            loader=BulkLoader(batch_size=500),
        )
        result, decomposition_ms = deployment.execute(make_query())
        # Ground truth via the baseline matcher.
        from repro.docstore.matcher import matches

        expected = [
            d for d in docs if matches(make_query().to_baseline_query(), d)
        ]
        assert len(result) == len(expected)
        assert decomposition_ms >= 0.0

    def test_zones_deployment_preserves_results(self):
        docs = make_docs()
        plain = deploy_approach(
            make_approach("hil"),
            docs,
            topology=TOPOLOGY,
            chunk_max_bytes=8 * 1024,
        )
        zoned = deploy_approach(
            make_approach("hil"),
            docs,
            topology=TOPOLOGY,
            chunk_max_bytes=8 * 1024,
            use_zones=True,
        )
        r1, _ = plain.execute(make_query())
        r2, _ = zoned.execute(make_query())
        assert len(r1) == len(r2)
        assert zoned.zones_enabled

    def test_hil_document_carries_hilbert_index(self):
        docs = make_docs(50)
        deployment = deploy_approach(
            make_approach("hil"),
            docs,
            topology=TOPOLOGY,
        )
        shard_docs = []
        for shard in deployment.cluster.shards.values():
            shard_docs.extend(shard.collection("traces").all_documents())
        assert len(shard_docs) == 50
        assert all("hilbertIndex" in d for d in shard_docs)

    def test_bsl_has_two_secondary_indexes(self):
        # Shard-key (date) index + compound; plus _id_ = 3 total.
        docs = make_docs(50)
        deployment = deploy_approach(
            make_approach("bslST"), docs, topology=TOPOLOGY
        )
        shard = next(iter(deployment.cluster.shards.values()))
        names = set(shard.collection("traces").list_indexes())
        assert names == {"_id_", "shardkey_date", "location_date"}

    def test_hil_has_single_secondary_index(self):
        docs = make_docs(50)
        deployment = deploy_approach(
            make_approach("hil"), docs, topology=TOPOLOGY
        )
        shard = next(iter(deployment.cluster.shards.values()))
        names = set(shard.collection("traces").list_indexes())
        assert names == {"_id_", "shardkey_hilbertIndex_date"}

    def test_totals(self):
        docs = make_docs(60)
        deployment = deploy_approach(
            make_approach("bslST"), docs, topology=TOPOLOGY
        )
        totals = deployment.totals()
        assert totals["count"] == 60
