"""Tests for the trajectory extension (polylines end to end)."""

import datetime as dt

import pytest

from repro.core.encoder import SpatioTemporalEncoder
from repro.core.query import SpatioTemporalQuery
from repro.core.trajectories import (
    TrajectoryEncoder,
    build_trajectory_document,
    trajectories_from_traces,
)
from repro.docstore.collection import Collection
from repro.geo.geometry import BoundingBox, LineString, Point

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 8, 1, tzinfo=UTC)


@pytest.fixture()
def encoder():
    return TrajectoryEncoder(encoder=SpatioTemporalEncoder.hilbert_global())


class TestTrajectoryEncoder:
    def test_cells_sorted_distinct(self, encoder):
        line = LineString((Point(23.0, 38.0), Point(24.0, 38.3)))
        cells = encoder.cells_of(line)
        assert cells == sorted(set(cells))
        assert len(cells) >= 2

    def test_longer_lines_cover_more_cells(self, encoder):
        short = LineString((Point(23.0, 38.0), Point(23.05, 38.0)))
        long = LineString((Point(23.0, 38.0), Point(25.0, 38.0)))
        assert len(encoder.cells_of(long)) > len(encoder.cells_of(short))

    def test_enrich(self, encoder):
        doc = build_trajectory_document(
            "v1",
            [Point(23.0, 38.0), Point(23.5, 38.1)],
            start=T0,
            end=T0 + dt.timedelta(minutes=30),
        )
        enriched = encoder.enrich(doc)
        assert "hilbertCells" in enriched
        assert enriched["hilbertCells"]

    def test_point_cells_fall_inside_route_cells(self, encoder):
        # Every vertex of the route encodes to one of the route's cells.
        points = [Point(23.0, 38.0), Point(23.4, 38.2), Point(23.8, 38.1)]
        line = LineString(tuple(points))
        cells = set(encoder.cells_of(line))
        for p in points:
            assert encoder.encoder.encode_lonlat(p.lon, p.lat) in cells


class TestBuildDocument:
    def test_fields(self):
        doc = build_trajectory_document(
            "v9",
            [Point(23.0, 38.0), Point(23.1, 38.0)],
            start=T0,
            end=T0 + dt.timedelta(minutes=5),
            extra={"driver": "d1"},
        )
        assert doc["vehicle_id"] == "v9"
        assert doc["route"]["type"] == "LineString"
        assert doc["n_points"] == 2
        assert doc["length_km"] > 0
        assert doc["driver"] == "d1"

    def test_rejects_inverted_time(self):
        with pytest.raises(ValueError):
            build_trajectory_document(
                "v", [Point(0, 0), Point(1, 1)], start=T0, end=T0 - dt.timedelta(1)
            )


class TestTrajectoriesFromTraces:
    def _trace(self, vehicle, lon, lat, minutes):
        return {
            "vehicle_id": vehicle,
            "location": {"type": "Point", "coordinates": [lon, lat]},
            "date": T0 + dt.timedelta(minutes=minutes),
        }

    def test_groups_by_vehicle(self):
        traces = [
            self._trace("a", 23.0, 38.0, 0),
            self._trace("a", 23.1, 38.0, 1),
            self._trace("b", 24.0, 38.0, 0),
            self._trace("b", 24.1, 38.0, 1),
        ]
        out = trajectories_from_traces(traces)
        assert len(out) == 2
        assert {d["vehicle_id"] for d in out} == {"a", "b"}

    def test_splits_on_time_gap(self):
        traces = [
            self._trace("a", 23.0, 38.0, 0),
            self._trace("a", 23.1, 38.0, 1),
            self._trace("a", 23.5, 38.0, 100),  # > 10 min gap
            self._trace("a", 23.6, 38.0, 101),
        ]
        out = trajectories_from_traces(traces)
        assert len(out) == 2

    def test_single_point_segments_dropped(self):
        traces = [
            self._trace("a", 23.0, 38.0, 0),
            self._trace("a", 23.5, 38.0, 100),
            self._trace("a", 23.6, 38.0, 101),
        ]
        out = trajectories_from_traces(traces)
        assert len(out) == 1

    def test_from_fleet_generator(self):
        from repro.datagen import FleetConfig, FleetGenerator

        traces = FleetGenerator(FleetConfig(n_vehicles=10)).generate_list(500)
        out = trajectories_from_traces(traces)
        assert out
        assert all(d["n_points"] >= 2 for d in out)


class TestTrajectoryQueries:
    def test_end_to_end_query(self, encoder):
        col = Collection("trips")
        col.create_index(
            [("hilbertCells", 1), ("startDate", 1)], name="cells_date"
        )
        inside = build_trajectory_document(
            "in",
            [Point(23.7, 38.1), Point(23.9, 38.2)],
            start=T0,
            end=T0 + dt.timedelta(minutes=20),
            encoder=encoder,
        )
        outside = build_trajectory_document(
            "out",
            [Point(10.0, 50.0), Point(10.5, 50.1)],
            start=T0,
            end=T0 + dt.timedelta(minutes=20),
            encoder=encoder,
        )
        wrong_time = build_trajectory_document(
            "late",
            [Point(23.7, 38.1), Point(23.9, 38.2)],
            start=T0 + dt.timedelta(days=60),
            end=T0 + dt.timedelta(days=60, minutes=20),
            encoder=encoder,
        )
        col.insert_many([inside, outside, wrong_time])

        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.606039, 38.023982, 24.032754, 38.353926),
            time_from=T0 - dt.timedelta(days=1),
            time_to=T0 + dt.timedelta(days=1),
        )
        rendered, decomposition_ms = encoder.render_query(query)
        result = col.find_with_stats(rendered)
        assert [d["vehicle_id"] for d in result] == ["in"]
        assert decomposition_ms >= 0
        assert result.plan.kind == "IXSCAN"

    def test_crossing_trajectory_found_by_geointersects(self, encoder):
        # A route that merely crosses the box (no vertex inside).
        col = Collection("trips")
        col.create_index(
            [("hilbertCells", 1), ("startDate", 1)], name="cells_date"
        )
        crossing = build_trajectory_document(
            "cross",
            [Point(23.5, 38.19), Point(24.2, 38.19)],
            start=T0,
            end=T0 + dt.timedelta(hours=1),
            encoder=encoder,
        )
        col.insert_one(crossing)
        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.606039, 38.023982, 24.032754, 38.353926),
            time_from=T0 - dt.timedelta(days=1),
            time_to=T0 + dt.timedelta(days=1),
        )
        rendered, _ = encoder.render_query(query)
        result = col.find_with_stats(rendered)
        assert len(result) == 1
