"""Tests for the measurement methodology."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.core.benchmark import (
    MeasurementRun,
    measure_query,
    run_workload,
)
from repro.core.loader import BulkLoader
from repro.core.query import SpatioTemporalQuery
from repro.geo.geometry import BoundingBox

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


@pytest.fixture(scope="module")
def deployment():
    rng = random.Random(7)
    docs = [
        {
            "location": {
                "type": "Point",
                "coordinates": [rng.uniform(23.0, 24.5), rng.uniform(37.5, 38.6)],
            },
            "date": T0 + dt.timedelta(minutes=rng.uniform(0, 60 * 24 * 60)),
        }
        for _ in range(400)
    ]
    return deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=3),
        chunk_max_bytes=8 * 1024,
        loader=BulkLoader(batch_size=200),
    )


def make_query(label="Qx"):
    return SpatioTemporalQuery(
        bbox=BoundingBox(23.5, 37.9, 24.1, 38.4),
        time_from=T0,
        time_to=T0 + dt.timedelta(days=10),
        label=label,
    )


class TestMeasureQuery:
    def test_fields_populated(self, deployment):
        m = measure_query(deployment, make_query(), runs=3, average_last=2)
        assert m.approach == "hil"
        assert m.query_label == "Qx"
        assert m.n_returned > 0
        assert m.nodes >= 1
        assert m.execution_time_ms > 0
        assert m.wall_time_ms > 0
        assert m.max_keys_examined > 0

    def test_index_usage_recorded(self, deployment):
        m = measure_query(deployment, make_query(), runs=2, average_last=1)
        assert m.index_used_by_shard
        assert all(
            name == "shardkey_hilbertIndex_date"
            for name in m.index_used_by_shard.values()
        )

    def test_model_time_deterministic(self, deployment):
        a = measure_query(deployment, make_query(), runs=2, average_last=1)
        b = measure_query(deployment, make_query(), runs=2, average_last=1)
        assert a.execution_time_ms == b.execution_time_ms
        assert a.max_keys_examined == b.max_keys_examined

    def test_run_validation(self, deployment):
        with pytest.raises(ValueError):
            measure_query(deployment, make_query(), runs=0)
        with pytest.raises(ValueError):
            measure_query(deployment, make_query(), runs=2, average_last=5)

    def test_as_row(self, deployment):
        row = measure_query(
            deployment, make_query(), runs=2, average_last=1
        ).as_row()
        assert set(row) >= {
            "approach",
            "query",
            "nodes",
            "maxKeysExamined",
            "maxDocsExamined",
            "executionTimeMs",
        }


class TestRunWorkload:
    def test_measures_every_query(self, deployment):
        queries = [make_query("Q1"), make_query("Q2")]
        run = run_workload(
            deployment, queries, dataset="test", runs=2, average_last=1
        )
        assert [m.query_label for m in run.measurements] == ["Q1", "Q2"]
        assert run.dataset == "test"

    def test_grouping(self, deployment):
        run = MeasurementRun(dataset="d")
        run.measurements.append(
            measure_query(deployment, make_query("Qa"), runs=1, average_last=1)
        )
        grouped = run.by_query()
        assert set(grouped) == {"Qa"}
        assert run.rows()[0]["query"] == "Qa"
