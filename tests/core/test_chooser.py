"""Cost-based chooser: determinism, pick logic, stale fallback."""

import datetime as _dt

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.chooser import (
    ADAPTIVE_INDEXES,
    CostBasedChooser,
    deploy_adaptive,
)
from repro.core.query import SpatioTemporalQuery
from repro.datagen import FleetConfig, FleetGenerator
from repro.geo.geometry import BoundingBox
from repro.service import QueryService, ServiceConfig
from repro.workloads.queries import BIG_BBOX, SMALL_BBOX

_UTC = _dt.timezone.utc


class _StubStats:
    """Duck-typed catalog entry with exact, hand-picked selectivities.

    The chooser only reads ``total_docs``, ``time_selectivity`` and
    ``space_selectivity(bbox, snap_order=...)``; pinning those numbers
    makes every cost-function branch assertable without arranging real
    data to hit it.
    """

    def __init__(self, total_docs, time_sel, sel_by_order):
        self.total_docs = total_docs
        self._time_sel = time_sel
        self._sel_by_order = sel_by_order

    def time_selectivity(self, lo, hi):
        return self._time_sel

    def space_selectivity(self, bbox, snap_order=None):
        return self._sel_by_order[snap_order]


def _query(bbox=SMALL_BBOX, days=30):
    start = _dt.datetime(2018, 8, 1, tzinfo=_UTC)
    return SpatioTemporalQuery(
        bbox=bbox,
        time_from=start,
        time_to=start + _dt.timedelta(days=days),
    )


class TestChooserCostModel:
    def test_tiny_box_long_window_avoids_time_index(self):
        # geo prunes to 0.1% of the data, time keeps half of it: any
        # plan scanning the time axis first pays 0.1*n*0.5 in keys.
        stats = _StubStats(10_000, 0.5, {13: 0.001, 15: 0.0005})
        decision = CostBasedChooser(lambda: stats).choose(_query())
        assert decision.used_stats
        assert decision.name in ("bslST", "hil")
        assert decision.estimates["bslTS"] > decision.estimates[decision.name]

    def test_big_box_short_window_picks_time_index(self):
        stats = _StubStats(100_000, 0.01, {13: 0.9, 15: 0.85})
        decision = CostBasedChooser(lambda: stats).choose(
            _query(bbox=BIG_BBOX, days=1)
        )
        assert decision.name == "bslTS"
        assert decision.hint == ADAPTIVE_INDEXES["bslTS"]

    def test_finer_curve_wins_when_it_prunes_harder(self):
        # The order-15 curve keeps 0.05% vs the geohash grid's 0.1%:
        # half the candidate documents beats hil's fixed overhead.
        stats = _StubStats(10_000, 0.5, {13: 0.001, 15: 0.0005})
        decision = CostBasedChooser(lambda: stats, hil_order=15).choose(
            _query()
        )
        assert decision.name == "hil"
        # Tight covering: no need to cap the decomposition.
        assert decision.max_ranges is None

    def test_coarse_covering_is_capped(self):
        # hil wins outright but the box covers 6% of the curve: the
        # decomposition is capped so range count cannot explode.
        stats = _StubStats(1_000, 0.9, {13: 0.9, 15: 0.06})
        decision = CostBasedChooser(lambda: stats, hil_order=15).choose(
            _query(bbox=BIG_BBOX)
        )
        assert decision.name == "hil"
        assert decision.max_ranges == 256

    def test_ties_break_by_name(self):
        # geo_sel == time_sel makes bslST and bslTS cost-identical;
        # the tie must break deterministically (lexicographic).
        stats = _StubStats(10_000, 0.3, {13: 0.3, 15: 0.3})
        decision = CostBasedChooser(lambda: stats).choose(_query())
        assert decision.name == "bslST"

    def test_same_catalog_same_decision(self):
        stats = _StubStats(10_000, 0.5, {13: 0.001, 15: 0.0005})
        chooser = CostBasedChooser(lambda: stats, hil_order=15)
        query = _query()
        decisions = [chooser.choose(query) for _ in range(5)]
        assert all(d == decisions[0] for d in decisions)

    def test_missing_stats_falls_back_to_default(self):
        chooser = CostBasedChooser(lambda: None, default="bslTS")
        decision = chooser.choose(_query())
        assert not decision.used_stats
        assert decision.name == "bslTS"
        assert decision.hint == ADAPTIVE_INDEXES["bslTS"]
        assert decision.max_ranges is None
        assert chooser.fallbacks == 1

    def test_partial_stats_fall_back(self):
        class _NoSpace(_StubStats):
            def space_selectivity(self, bbox, snap_order=None):
                return None

        chooser = CostBasedChooser(
            lambda: _NoSpace(1_000, 0.5, {})
        )
        assert not chooser.choose(_query()).used_stats

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError):
            CostBasedChooser(lambda: None, default="collscan")

    def test_decision_as_dict(self):
        stats = _StubStats(10_000, 0.5, {13: 0.001, 15: 0.0005})
        d = CostBasedChooser(lambda: stats).choose(_query()).as_dict()
        assert set(d) == {
            "name",
            "hint",
            "maxRanges",
            "estimates",
            "usedStats",
        }


class TestChooserOnAdaptiveCluster:
    """End to end against a real catalog built by ANALYZE."""

    @pytest.fixture(scope="class")
    def adaptive(self):
        docs = FleetGenerator(FleetConfig(seed=7)).generate_list(400)
        return deploy_adaptive(
            docs,
            ClusterTopology(n_shards=2, n_config_servers=1, n_routers=1),
            chunk_max_bytes=128 * 1024,
            order=15,
        )

    def test_analyze_then_choose_is_deterministic(self, adaptive):
        with QueryService(
            adaptive.cluster, ServiceConfig(parallel_scatter_gather=False)
        ) as service:
            service.analyze_collection(adaptive.collection)
            chooser = CostBasedChooser(
                lambda: service.collection_stats(adaptive.collection),
                hil_order=15,
            )
            query = _query()
            first = chooser.choose(query)
            assert first.used_stats
            assert all(
                chooser.choose(query) == first for _ in range(3)
            )
            assert chooser.fallbacks == 0

    def test_stale_catalog_falls_back_then_recovers(self, adaptive):
        with QueryService(
            adaptive.cluster, ServiceConfig(parallel_scatter_gather=False)
        ) as service:
            service.analyze_collection(adaptive.collection)
            chooser = CostBasedChooser(
                lambda: service.collection_stats(adaptive.collection),
            )
            assert chooser.choose(_query()).used_stats
            # DDL bumps the cluster metadata version: the catalog's
            # stamp no longer matches, every read is a stale rejection,
            # and the chooser degrades to its static default.
            adaptive.cluster.create_index(
                adaptive.collection, [("speed", 1)], name="speed_1"
            )
            stale = chooser.choose(_query())
            assert not stale.used_stats
            assert stale.name == chooser.default
            assert chooser.fallbacks == 1
            # Re-ANALYZE restamps the catalog at the new version.
            service.analyze_collection(adaptive.collection)
            assert chooser.choose(_query()).used_stats

    def test_chosen_plans_return_identical_results(self, adaptive):
        """Every strategy the chooser can pick answers identically."""
        query = _query(bbox=BIG_BBOX, days=7)
        frames = {}
        for name, hint in ADAPTIVE_INDEXES.items():
            rendered, _ = adaptive.render(
                query,
                CostBasedChooser(lambda: None, default=name).choose(query),
            )
            result = adaptive.cluster.find(
                adaptive.collection, rendered, hint=hint
            )
            frames[name] = sorted(
                d["_id"] for d in result.documents
            )
        assert frames["bslST"] == frames["bslTS"] == frames["hil"]
        assert len(frames["hil"]) > 0
