"""Tests for $bucketAuto-driven zone configuration."""

import datetime as dt
import random

import pytest

from repro.cluster.chunk import ShardKeyPattern
from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.core.zoning import (
    build_zones,
    compute_zone_boundaries,
    configure_zones,
)
from repro.errors import ZoneError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def loaded_cluster(n_shards=4, n_docs=400):
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=8 * 1024,
    )
    cluster.shard_collection("t", [("h", 1), ("date", 1)])
    rng = random.Random(2)
    cluster.insert_many(
        "t",
        [
            {
                "_id": i,
                "h": rng.randrange(0, 10_000),
                "date": T0 + dt.timedelta(hours=rng.uniform(0, 1000)),
                "pad": "x" * 40,
            }
            for i in range(n_docs)
        ],
    )
    return cluster


class TestBoundaries:
    def test_interior_boundaries_count(self):
        cluster = loaded_cluster()
        bounds = compute_zone_boundaries(cluster, "t", "h", 4)
        assert len(bounds) == 3
        assert bounds == sorted(bounds)

    def test_even_splitting(self):
        cluster = loaded_cluster()
        bounds = compute_zone_boundaries(cluster, "t", "h", 4)
        docs = cluster.find("t", {"h": {"$gte": 0, "$lte": bounds[0] - 1}})
        # First zone holds roughly a quarter of the documents.
        assert 60 <= len(docs) <= 140

    def test_empty_collection_rejected(self):
        cluster = ShardedCluster(topology=ClusterTopology(n_shards=2))
        cluster.shard_collection("t", [("h", 1)])
        with pytest.raises(ZoneError):
            compute_zone_boundaries(cluster, "t", "h", 2)


class TestBuildZones:
    def test_tiles_key_space(self):
        pattern = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        zones = build_zones(pattern, [100, 200], ["s0", "s1", "s2"], "h")
        assert len(zones) == 3
        assert zones[0].min_key == pattern.global_min()
        assert zones[-1].max_key == pattern.global_max()
        for a, b in zip(zones, zones[1:]):
            assert a.max_key == b.min_key

    def test_prefix_zones_span_all_dates(self):
        pattern = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        zones = build_zones(pattern, [100], ["s0", "s1"], "h")
        early = pattern.extract_canonical({"h": 50, "date": T0})
        late = pattern.extract_canonical(
            {"h": 50, "date": T0 + dt.timedelta(days=3650)}
        )
        assert zones[0].contains(early)
        assert zones[0].contains(late)

    def test_field_must_lead_shard_key(self):
        pattern = ShardKeyPattern.from_spec([("h", 1), ("date", 1)])
        with pytest.raises(ZoneError):
            build_zones(pattern, [T0], ["s0", "s1"], "date")

    def test_too_many_zones_rejected(self):
        pattern = ShardKeyPattern.from_spec([("h", 1)])
        with pytest.raises(ZoneError):
            build_zones(pattern, [1, 2, 3], ["s0", "s1"], "h")


class TestConfigureZones:
    def test_one_zone_per_shard(self):
        cluster = loaded_cluster()
        zones = configure_zones(cluster, "t", "h")
        assert len(zones) == 4
        assert sorted({z.shard_id for z in zones}) == sorted(cluster.shards)

    def test_data_respects_zones(self):
        cluster = loaded_cluster()
        configure_zones(cluster, "t", "h")
        meta = cluster.catalog.get("t")
        for chunk in meta.chunks:
            zone = meta.zone_set.zone_for_range(chunk.min_key, chunk.max_key)
            assert zone is not None and zone.shard_id == chunk.shard_id
        cluster.validate("t")

    def test_contiguous_ranges_per_shard(self):
        # The paper's point: with zones each shard holds one contiguous
        # h-range, so a narrow h-query touches exactly one node.
        cluster = loaded_cluster()
        configure_zones(cluster, "t", "h")
        result = cluster.find("t", {"h": {"$gte": 100, "$lte": 120}})
        assert result.stats.nodes == 1
