"""Tests for the bulk loader."""

import datetime as dt

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.core.loader import DEFAULT_BATCH_SIZE, BulkLoader

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def make_cluster():
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=2), chunk_max_bytes=64 * 1024
    )
    cluster.shard_collection("t", [("v", 1)])
    return cluster


class TestLoader:
    def test_paper_batch_size_default(self):
        assert DEFAULT_BATCH_SIZE == 15_000

    def test_loads_all_documents(self):
        cluster = make_cluster()
        loader = BulkLoader(batch_size=7)
        n = loader.load(cluster, "t", ({"v": i} for i in range(100)))
        assert n == 100
        assert cluster.collection_totals("t")["count"] == 100

    def test_assigns_monotonic_objectids(self):
        cluster = make_cluster()
        BulkLoader(batch_size=10).load(
            cluster, "t", [{"v": i} for i in range(50)]
        )
        ids = []
        for shard in cluster.shards.values():
            for doc in shard.collection("t").all_documents():
                ids.append((doc["v"], doc["_id"]))
        ids.sort()
        oids = [oid for _, oid in ids]
        assert all(a < b for a, b in zip(oids, oids[1:]))

    def test_objectid_timestamps_advance_with_rate(self):
        cluster = make_cluster()
        loader = BulkLoader(batch_size=100, docs_per_second=10.0)
        loader.load(cluster, "t", [{"v": i} for i in range(100)])
        times = []
        for shard in cluster.shards.values():
            for doc in shard.collection("t").all_documents():
                times.append(doc["_id"].generation_time)
        assert max(times) - min(times) >= dt.timedelta(seconds=5)

    def test_transform_applied(self):
        cluster = make_cluster()
        loader = BulkLoader(
            batch_size=10, transform=lambda d: {**d, "extra": 1}
        )
        loader.load(cluster, "t", [{"v": i} for i in range(10)])
        doc = cluster.find("t", {"v": 3}).documents[0]
        assert doc["extra"] == 1

    def test_existing_ids_preserved(self):
        cluster = make_cluster()
        BulkLoader(batch_size=10).load(
            cluster, "t", [{"_id": 99, "v": 1}]
        )
        assert cluster.find("t", {"v": 1}).documents[0]["_id"] == 99

    def test_empty_stream(self):
        cluster = make_cluster()
        assert BulkLoader().load(cluster, "t", []) == 0
