"""Tests for the spatio-temporal encoder."""

import pytest

from repro.core.encoder import DEFAULT_HILBERT_ORDER, SpatioTemporalEncoder
from repro.geo.geometry import BoundingBox
from repro.sfc.hilbert import HilbertCurve2D
from repro.sfc.zorder import ZOrderCurve2D


def point_doc(lon, lat):
    return {"location": {"type": "Point", "coordinates": [lon, lat]}}


class TestConstruction:
    def test_default_order_matches_paper(self):
        assert DEFAULT_HILBERT_ORDER == 13

    def test_global_encoder(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        assert isinstance(enc.curve, HilbertCurve2D)
        assert enc.curve.min_x == -180.0

    def test_bbox_encoder(self):
        bbox = BoundingBox(23.0, 37.0, 24.0, 38.0)
        enc = SpatioTemporalEncoder.hilbert_for_bbox(bbox)
        assert enc.curve.min_x == 23.0
        assert enc.curve.max_y == 38.0

    def test_zorder_encoder(self):
        enc = SpatioTemporalEncoder.zorder_global()
        assert isinstance(enc.curve, ZOrderCurve2D)


class TestEncoding:
    def test_encode_document(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        value = enc.encode_document(point_doc(23.7275, 37.9838))
        assert value == enc.curve.encode(23.7275, 37.9838)

    def test_enrich_adds_field(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        doc = point_doc(23.7, 37.9)
        enriched = enc.enrich(doc)
        assert "hilbertIndex" in enriched
        assert isinstance(enriched["hilbertIndex"], int)
        assert "hilbertIndex" not in doc  # original untouched

    def test_custom_field_names(self):
        enc = SpatioTemporalEncoder.hilbert_global(
            location_field="pos", index_field="sfc"
        )
        enriched = enc.enrich({"pos": [10.0, 20.0]})
        assert "sfc" in enriched

    def test_legacy_coordinate_pair_accepted(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        assert enc.enrich({"location": [23.7, 37.9]})["hilbertIndex"] >= 0

    def test_missing_location_raises(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        with pytest.raises(KeyError):
            enc.encode_document({"other": 1})

    def test_restricted_domain_distinguishes_close_points(self):
        bbox = BoundingBox(23.0, 37.5, 24.5, 38.6)
        global_enc = SpatioTemporalEncoder.hilbert_global()
        local_enc = SpatioTemporalEncoder.hilbert_for_bbox(bbox)
        a, b = point_doc(23.700, 37.980), point_doc(23.716, 37.988)
        assert global_enc.encode_document(a) == global_enc.encode_document(b)
        assert local_enc.encode_document(a) != local_enc.encode_document(b)

    def test_locality(self):
        enc = SpatioTemporalEncoder.hilbert_global()
        near = abs(
            enc.encode_lonlat(23.70, 37.98) - enc.encode_lonlat(23.75, 37.99)
        )
        far = abs(
            enc.encode_lonlat(23.70, 37.98) - enc.encode_lonlat(-70.0, -33.0)
        )
        assert near < far
