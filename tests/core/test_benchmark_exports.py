"""Tests for MeasurementRun export formats."""

from repro.core.benchmark import MeasurementRun, QueryMeasurement


def make_run():
    run = MeasurementRun(dataset="R")
    for i, approach in enumerate(("bslST", "hil")):
        run.measurements.append(
            QueryMeasurement(
                approach=approach,
                query_label="Qb1",
                zones=False,
                n_returned=10 * (i + 1),
                nodes=3,
                max_keys_examined=100,
                max_docs_examined=50,
                execution_time_ms=1.5,
                wall_time_ms=2.0,
                decomposition_ms=0.1,
            )
        )
    return run


class TestExports:
    def test_csv(self):
        text = make_run().to_csv()
        lines = text.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[0].startswith("approach,query")
        assert "bslST" in lines[1]
        assert "hil" in lines[2]

    def test_csv_parses_back(self):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(make_run().to_csv())))
        assert rows[0]["approach"] == "bslST"
        assert rows[1]["nReturned"] == "20"

    def test_markdown(self):
        text = make_run().to_markdown()
        lines = text.splitlines()
        assert lines[0].startswith("| approach |")
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert len(lines) == 4

    def test_empty_run(self):
        empty = MeasurementRun(dataset="R")
        assert empty.to_csv() == ""
        assert empty.to_markdown() == ""
