"""Edge cases for zoning: skew, few distinct values, tiny clusters."""

import datetime as dt

import pytest

from repro.cluster.cluster import ClusterTopology, ShardedCluster
from repro.core.zoning import configure_zones
from repro.errors import ZoneError

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)


def cluster_with(values, n_shards=4):
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=4 * 1024,
    )
    cluster.shard_collection("t", [("h", 1), ("date", 1)])
    cluster.insert_many(
        "t",
        [
            {
                "_id": i,
                "h": v,
                "date": T0 + dt.timedelta(hours=i),
                "pad": "x" * 30,
            }
            for i, v in enumerate(values)
        ],
    )
    return cluster


class TestSkewedZones:
    def test_single_distinct_value_yields_one_zone(self):
        # Extreme skew: every document shares one Hilbert value.
        # $bucketAuto cannot split it, so fewer zones than shards
        # result — exactly MongoDB's behaviour.
        cluster = cluster_with([7] * 120)
        zones = configure_zones(cluster, "t", "h")
        assert len(zones) == 1
        cluster.validate("t")

    def test_two_distinct_values(self):
        cluster = cluster_with([1] * 60 + [2] * 60)
        zones = configure_zones(cluster, "t", "h")
        assert 1 <= len(zones) <= 2
        # Queries still correct afterwards.
        assert len(cluster.find("t", {"h": {"$gte": 0, "$lte": 9}})) == 120

    def test_heavy_head_skew(self):
        # 80% of documents share the smallest value.
        values = [0] * 160 + list(range(1, 41))
        cluster = cluster_with(values)
        zones = configure_zones(cluster, "t", "h")
        assert zones
        cluster.validate("t")
        total = sum(
            len(s.collection("t")) for s in cluster.shards.values()
        )
        assert total == len(values)

    def test_zones_on_empty_collection_rejected(self):
        cluster = ShardedCluster(topology=ClusterTopology(n_shards=2))
        cluster.shard_collection("t", [("h", 1)])
        with pytest.raises(ZoneError):
            configure_zones(cluster, "t", "h")

    def test_single_shard_cluster(self):
        cluster = cluster_with(list(range(100)), n_shards=1)
        zones = configure_zones(cluster, "t", "h")
        assert len(zones) == 1
        assert zones[0].shard_id == "shard00"
