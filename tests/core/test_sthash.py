"""Tests for the ST-Hash comparator."""

import datetime as dt

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.core.query import SpatioTemporalQuery
from repro.core.sthash import STHashApproach, STHashEncoder
from repro.docstore.matcher import matches
from repro.geo.geometry import BoundingBox

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 8, 1, tzinfo=UTC)


class TestEncoder:
    def test_year_prefix(self):
        enc = STHashEncoder()
        value = enc.encode(23.7, 37.9, T0)
        assert value.startswith("2018")

    def test_fixed_length(self):
        enc = STHashEncoder(order=10)
        a = enc.encode(0.0, 0.0, T0)
        b = enc.encode(179.9, 89.9, T0)
        assert len(a) == len(b) == 4 + 6  # year + ceil(30/5) chars

    def test_temporal_ordering_within_year(self):
        # Time takes the leading interleaved bit: later timestamps at
        # the same place sort later.
        enc = STHashEncoder()
        early = enc.encode(23.7, 37.9, dt.datetime(2018, 2, 1, tzinfo=UTC))
        late = enc.encode(23.7, 37.9, dt.datetime(2018, 11, 1, tzinfo=UTC))
        assert early < late

    def test_year_ordering(self):
        enc = STHashEncoder()
        y2018 = enc.encode(23.7, 37.9, dt.datetime(2018, 12, 31, tzinfo=UTC))
        y2019 = enc.encode(23.7, 37.9, dt.datetime(2019, 1, 1, tzinfo=UTC))
        assert y2018 < y2019

    def test_enrich(self):
        enc = STHashEncoder()
        doc = {
            "location": {"type": "Point", "coordinates": [23.7, 37.9]},
            "date": T0,
        }
        assert "stHash" in enc.enrich(doc)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            STHashEncoder(order=0)

    def test_query_ranges_cover_inside_points(self):
        import random

        enc = STHashEncoder()
        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.0, 37.5, 24.5, 38.6),
            time_from=T0,
            time_to=T0 + dt.timedelta(days=20),
        )
        ranges = enc.query_ranges(query)
        rng = random.Random(3)
        for _ in range(100):
            lon = rng.uniform(23.0, 24.5)
            lat = rng.uniform(37.5, 38.6)
            stamp = T0 + dt.timedelta(
                seconds=rng.uniform(0, 20 * 24 * 3600)
            )
            value = enc.encode(lon, lat, stamp)
            assert any(lo <= value <= hi for lo, hi in ranges)

    def test_multi_year_windows_split_per_year(self):
        enc = STHashEncoder(order=4)
        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.0, 37.5, 24.0, 38.5),
            time_from=dt.datetime(2018, 11, 1, tzinfo=UTC),
            time_to=dt.datetime(2019, 2, 1, tzinfo=UTC),
        )
        ranges = enc.query_ranges(query)
        years = {lo[:4] for lo, _hi in ranges}
        assert years == {"2018", "2019"}


class TestSTHashApproach:
    def test_deploys_and_answers_correctly(self):
        import random

        rng = random.Random(8)
        docs = [
            {
                "location": {
                    "type": "Point",
                    "coordinates": [
                        rng.uniform(23.0, 24.5),
                        rng.uniform(37.5, 38.6),
                    ],
                },
                "date": T0 + dt.timedelta(hours=rng.uniform(0, 1500)),
            }
            for _ in range(600)
        ]
        approach = STHashApproach()
        deployment = deploy_approach(
            approach,
            docs,
            topology=ClusterTopology(n_shards=4),
            chunk_max_bytes=8 * 1024,
        )
        query = SpatioTemporalQuery(
            bbox=BoundingBox(23.6, 38.0, 24.0, 38.4),
            time_from=T0,
            time_to=T0 + dt.timedelta(days=14),
        )
        result, decomposition_ms = deployment.execute(query)
        expected = [
            d for d in docs if matches(query.to_baseline_query(), d)
        ]
        assert len(result) == len(expected)
        assert decomposition_ms >= 0

    def test_spatially_selective_long_window_fragments(self):
        # The paper's Section 2.2 critique, quantified: for a tiny box,
        # widening the window from a day to four months multiplies the
        # number of ST-Hash ranges; the Hilbert approach's covering is
        # window-independent.
        from repro.core.encoder import SpatioTemporalEncoder

        sthash = STHashEncoder()
        hilbert = SpatioTemporalEncoder.hilbert_global()
        box = BoundingBox(23.757495, 37.987295, 23.766958, 37.992997)
        short = SpatioTemporalQuery(
            bbox=box, time_from=T0, time_to=T0 + dt.timedelta(days=1)
        )
        long = SpatioTemporalQuery(
            bbox=box, time_from=T0, time_to=T0 + dt.timedelta(days=120)
        )
        st_short = len(sthash.query_ranges(short))
        st_long = len(sthash.query_ranges(long))
        assert st_long > 10 * st_short
        h_short, _ = short.hilbert_ranges(hilbert)
        h_long, _ = long.hilbert_ranges(hilbert)
        assert len(h_long.all_ranges) == len(h_short.all_ranges)
