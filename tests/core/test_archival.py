"""Tests for cold-storage archival."""

import datetime as dt
import random

import pytest

from repro.cluster.cluster import ClusterTopology
from repro.core.approaches import deploy_approach, make_approach
from repro.core.archival import archive_before, restore_archive

UTC = dt.timezone.utc
T0 = dt.datetime(2018, 7, 1, tzinfo=UTC)
CUTOFF = dt.datetime(2018, 9, 1, tzinfo=UTC)


def make_deployment(n=300):
    rng = random.Random(5)
    docs = [
        {
            "location": {
                "type": "Point",
                "coordinates": [rng.uniform(23, 24), rng.uniform(37.5, 38.5)],
            },
            "date": T0 + dt.timedelta(hours=rng.uniform(0, 24 * 120)),
            "v": i,
        }
        for i, _ in enumerate(range(n))
    ]
    return deploy_approach(
        make_approach("hil"),
        docs,
        topology=ClusterTopology(n_shards=3),
        chunk_max_bytes=8 * 1024,
    )


class TestArchive:
    def test_moves_old_documents(self, tmp_path):
        deployment = make_deployment()
        path = str(tmp_path / "cold.json")
        before_total = deployment.totals()["count"]
        old_count = len(
            deployment.cluster.find("traces", {"date": {"$lt": CUTOFF}})
        )
        result = archive_before(
            deployment.cluster, "traces", CUTOFF, path
        )
        assert result.archived == old_count
        assert result.remaining == before_total - old_count
        # Nothing old remains in the hot tier.
        assert (
            len(deployment.cluster.find("traces", {"date": {"$lt": CUTOFF}}))
            == 0
        )
        deployment.cluster.validate("traces")

    def test_recent_queries_still_work(self, tmp_path):
        deployment = make_deployment()
        archive_before(
            deployment.cluster, "traces", CUTOFF, str(tmp_path / "c.json")
        )
        recent = deployment.cluster.find(
            "traces", {"date": {"$gte": CUTOFF}}
        )
        assert len(recent) == deployment.totals()["count"]

    def test_restore_roundtrip(self, tmp_path):
        deployment = make_deployment()
        path = str(tmp_path / "cold.json")
        before_total = deployment.totals()["count"]
        result = archive_before(
            deployment.cluster, "traces", CUTOFF, path
        )
        restored = restore_archive(deployment.cluster, path)
        assert restored == result.archived
        assert deployment.totals()["count"] == before_total
        # Hilbert field survived the roundtrip: targeted queries work.
        res = deployment.cluster.find(
            "traces", {"date": {"$lt": CUTOFF}}
        )
        assert len(res) == result.archived
        deployment.cluster.validate("traces")

    def test_empty_archive(self, tmp_path):
        deployment = make_deployment(20)
        path = str(tmp_path / "cold.json")
        result = archive_before(
            deployment.cluster,
            "traces",
            dt.datetime(2000, 1, 1, tzinfo=UTC),
            path,
        )
        assert result.archived == 0
        assert restore_archive(deployment.cluster, path) == 0
