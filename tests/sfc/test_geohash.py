"""Tests for GeoHash encoding (strings and the integer grid)."""

import pytest

from repro.sfc.geohash import (
    GEOHASH_BASE32,
    GeoHashGrid,
    geohash_cell_bounds,
    geohash_decode,
    geohash_decode_int,
    geohash_encode,
    geohash_encode_int,
)

ATHENS = (23.727539, 37.983810)  # (lon, lat), the paper's example


class TestGeoHashString:
    def test_athens_prefix_matches_paper(self):
        # The paper: Athens at precision 5 is "swbb5".
        assert geohash_encode(*ATHENS, precision=5) == "swbb5"

    def test_athens_precision10_prefix(self):
        # Longer hashes share the paper's prefix (the final character
        # depends on sub-metre rounding of the example coordinates).
        assert geohash_encode(*ATHENS, precision=10).startswith("swbb5ftze")

    def test_prefix_property(self):
        # Lower precision is a prefix of higher precision.
        long_hash = geohash_encode(*ATHENS, precision=12)
        for precision in range(1, 12):
            assert geohash_encode(*ATHENS, precision=precision) == (
                long_hash[:precision]
            )

    def test_decode_near_original(self):
        lon, lat = geohash_decode(geohash_encode(*ATHENS, precision=9))
        assert abs(lon - ATHENS[0]) < 1e-3
        assert abs(lat - ATHENS[1]) < 1e-3

    def test_alphabet_has_32_unique_chars(self):
        assert len(GEOHASH_BASE32) == 32
        assert len(set(GEOHASH_BASE32)) == 32
        for missing in "ailo":
            assert missing not in GEOHASH_BASE32

    def test_decode_rejects_bad_chars(self):
        with pytest.raises(ValueError):
            geohash_decode("swa")  # 'a' is not in the alphabet
        with pytest.raises(ValueError):
            geohash_decode("")

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            geohash_encode(0.0, 0.0, precision=0)


class TestGeoHashInt:
    def test_26_bits_default(self):
        value = geohash_encode_int(*ATHENS)
        assert 0 <= value < 2**26

    def test_roundtrip_center(self):
        value = geohash_encode_int(*ATHENS, bits=40)
        lon, lat = geohash_decode_int(value, bits=40)
        assert abs(lon - ATHENS[0]) < 1e-4
        assert abs(lat - ATHENS[1]) < 1e-4

    def test_cell_bounds_contain_point(self):
        value = geohash_encode_int(*ATHENS, bits=26)
        lon0, lat0, lon1, lat1 = geohash_cell_bounds(value, bits=26)
        assert lon0 <= ATHENS[0] <= lon1
        assert lat0 <= ATHENS[1] <= lat1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            geohash_encode_int(190.0, 0.0)
        with pytest.raises(ValueError):
            geohash_encode_int(0.0, 91.0)
        with pytest.raises(ValueError):
            geohash_cell_bounds(2**26, bits=26)

    def test_string_and_int_agree(self):
        # 5 chars == 25 bits; the string is the base32 rendering of the
        # integer form.
        value = geohash_encode_int(*ATHENS, bits=25)
        text = geohash_encode(*ATHENS, precision=5)
        rendered = "".join(
            GEOHASH_BASE32[(value >> (5 * (4 - i))) & 0x1F] for i in range(5)
        )
        assert rendered == text


class TestGeoHashGrid:
    def test_grid_matches_bit_encoding(self):
        grid = GeoHashGrid(26)
        value = grid.encode(*ATHENS)
        assert value == geohash_encode_int(*ATHENS, bits=26)

    def test_cell_roundtrip(self):
        grid = GeoHashGrid(26)
        value = grid.encode(*ATHENS)
        cx, cy = grid.decode_cell(value)
        assert grid.encode_cell(cx, cy) == value
        assert grid.cell_of(*ATHENS) == (cx, cy)

    def test_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            GeoHashGrid(25)
        with pytest.raises(ValueError):
            GeoHashGrid(0)

    def test_encode_clamps_out_of_range(self):
        grid = GeoHashGrid(10)
        assert grid.encode(-999.0, -999.0) == grid.encode(-180.0, -90.0)

    def test_order_is_half_bits(self):
        assert GeoHashGrid(26).order == 13
        assert GeoHashGrid(26).cells_per_side == 8192

    def test_cell_bounds_tile(self):
        grid = GeoHashGrid(8)
        # Adjacent x-cells share an edge.
        a = grid.encode_cell(3, 5)
        b = grid.encode_cell(4, 5)
        _, _, a_max_lon, _ = grid.cell_bounds(a)
        b_min_lon, _, _, _ = grid.cell_bounds(b)
        assert abs(a_max_lon - b_min_lon) < 1e-9
