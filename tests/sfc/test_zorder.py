"""Tests for the Z-order (Morton) curve."""

import pytest

from repro.sfc.zorder import (
    ZOrderCurve2D,
    morton_deinterleave,
    morton_interleave,
)


class TestMorton:
    def test_interleave_examples(self):
        assert morton_interleave(0, 0) == 0
        assert morton_interleave(1, 0) == 1
        assert morton_interleave(0, 1) == 2
        assert morton_interleave(1, 1) == 3
        assert morton_interleave(2, 0) == 4

    def test_roundtrip(self):
        for x in range(0, 300, 7):
            for y in range(0, 300, 11):
                assert morton_deinterleave(morton_interleave(x, y)) == (x, y)

    def test_large_values(self):
        x, y = 2**31 - 1, 2**30 + 12345
        assert morton_deinterleave(morton_interleave(x, y)) == (x, y)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_interleave(-1, 0)
        with pytest.raises(ValueError):
            morton_deinterleave(-1)

    def test_z_shape_order(self):
        # Z-order visits (0,0), (1,0), (0,1), (1,1) within each quad.
        quad = sorted(
            ((morton_interleave(x, y), (x, y)) for x in range(2) for y in range(2))
        )
        assert [c for _, c in quad] == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestZOrderCurve2D:
    def test_bijective_small(self):
        curve = ZOrderCurve2D(order=3, min_x=0, min_y=0, max_x=8, max_y=8)
        ds = {
            curve.encode_cell(x, y) for x in range(8) for y in range(8)
        }
        assert ds == set(range(64))

    def test_encode_decode_consistency(self):
        curve = ZOrderCurve2D.global_curve(10)
        d = curve.encode(23.7, 37.9)
        cx, cy = curve.decode_cell(d)
        assert curve.encode_cell(cx, cy) == d

    def test_cell_bounds_contain_point(self):
        curve = ZOrderCurve2D.global_curve(9)
        d = curve.encode(-70.5, -33.4)
        x0, y0, x1, y1 = curve.cell_bounds(d)
        assert x0 <= -70.5 <= x1
        assert y0 <= -33.4 <= y1

    def test_order_limits(self):
        with pytest.raises(ValueError):
            ZOrderCurve2D(order=0)
        with pytest.raises(ValueError):
            ZOrderCurve2D(order=40)

    def test_rejects_out_of_range_distance(self):
        curve = ZOrderCurve2D(order=2)
        with pytest.raises(ValueError):
            curve.decode_cell(16)

    def test_interface_matches_hilbert(self):
        # The encoder swaps curves freely; both expose the same surface.
        from repro.sfc.hilbert import HilbertCurve2D

        z = ZOrderCurve2D.global_curve(6)
        h = HilbertCurve2D.global_curve(6)
        for attr in (
            "order",
            "cells_per_side",
            "max_distance",
        ):
            assert getattr(z, attr) == getattr(h, attr)
        for method in ("encode", "decode_cell", "encode_cell", "cell_bounds",
                       "cell_range_for_box", "cell_of"):
            assert callable(getattr(z, method))
            assert callable(getattr(h, method))
