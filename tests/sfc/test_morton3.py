"""Tests for the 3D Morton curve and octree covering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.morton3 import (
    Morton3D,
    covering_ranges_3d,
    morton3_deinterleave,
    morton3_interleave,
)

coords = st.integers(min_value=0, max_value=2**18)


class TestInterleave:
    def test_examples(self):
        assert morton3_interleave(0, 0, 0) == 0
        assert morton3_interleave(0, 0, 1) == 1
        assert morton3_interleave(0, 1, 0) == 2
        assert morton3_interleave(1, 0, 0) == 4

    @given(a=coords, b=coords, c=coords)
    def test_roundtrip(self, a, b, c):
        assert morton3_deinterleave(morton3_interleave(a, b, c)) == (a, b, c)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton3_interleave(-1, 0, 0)


class TestMorton3D:
    def test_bijective_small(self):
        curve = Morton3D(2)
        codes = {
            curve.encode_cell(a, b, c)
            for a in range(4)
            for b in range(4)
            for c in range(4)
        }
        assert codes == set(range(64))

    def test_encode_normalized(self):
        curve = Morton3D(4)
        assert curve.encode(0.0, 0.0, 0.0) == 0
        assert curve.encode(0.999, 0.999, 0.999) == curve.max_distance

    def test_clamps(self):
        curve = Morton3D(4)
        assert curve.encode(-1.0, 2.0, 0.5) == curve.encode(0.0, 0.999, 0.5)

    def test_order_limits(self):
        with pytest.raises(ValueError):
            Morton3D(0)
        with pytest.raises(ValueError):
            Morton3D(22)


class TestCovering3D:
    def brute(self, curve, lo, hi):
        qlo = curve.cell_of(*lo)
        qhi = curve.cell_of(*hi)
        return {
            curve.encode_cell(a, b, c)
            for a in range(qlo[0], qhi[0] + 1)
            for b in range(qlo[1], qhi[1] + 1)
            for c in range(qlo[2], qhi[2] + 1)
        }

    @settings(max_examples=25, deadline=None)
    @given(
        bounds=st.tuples(
            *[
                st.floats(min_value=0.0, max_value=0.999, allow_nan=False)
                for _ in range(6)
            ]
        )
    )
    def test_exact_cover(self, bounds):
        lo = tuple(min(a, b) for a, b in zip(bounds[:3], bounds[3:]))
        hi = tuple(max(a, b) for a, b in zip(bounds[:3], bounds[3:]))
        curve = Morton3D(3)
        expected = self.brute(curve, lo, hi)
        got = set()
        for r in covering_ranges_3d(curve, lo, hi):
            got.update(range(r.lo, r.hi + 1))
        assert got == expected

    def test_full_cube_single_range(self):
        curve = Morton3D(3)
        ranges = covering_ranges_3d(curve, (0, 0, 0), (0.999,) * 3)
        assert len(ranges) == 1
        assert ranges[0].lo == 0
        assert ranges[0].hi == curve.max_distance

    def test_max_ranges(self):
        curve = Morton3D(5)
        full = covering_ranges_3d(curve, (0.1, 0.1, 0.1), (0.2, 0.9, 0.9))
        capped = covering_ranges_3d(
            curve, (0.1, 0.1, 0.1), (0.2, 0.9, 0.9), max_ranges=4
        )
        assert len(full) > 4
        assert len(capped) <= 4

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            covering_ranges_3d(Morton3D(3), (0.5, 0, 0), (0.4, 1, 1))

    def test_time_leading_scatters_spatial_queries(self):
        # The ST-Hash weakness the paper cites: with time owning the
        # leading interleaved bits, a spatially-selective query over a
        # long time window covers cells that are totally scattered in
        # key space (no two merge into a run), while the transposed
        # temporally-selective query gets contiguous runs.  Measured as
        # ranges needed per covered cell.
        curve = Morton3D(6)
        spatial_slab = covering_ranges_3d(
            curve, (0.0, 0.40, 0.40), (0.999, 0.42, 0.42)
        )
        temporal_slab = covering_ranges_3d(
            curve, (0.40, 0.0, 0.0), (0.42, 0.999, 0.999)
        )
        spatial_density = len(spatial_slab) / sum(
            r.size for r in spatial_slab
        )
        temporal_density = len(temporal_slab) / sum(
            r.size for r in temporal_slab
        )
        assert spatial_density == 1.0  # fully scattered
        assert temporal_density < 0.5  # merges into runs
