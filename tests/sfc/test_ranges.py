"""Tests for the rectangle → covering-ranges decomposition."""

import pytest

from repro.sfc.geohash import GeoHashGrid
from repro.sfc.hilbert import HilbertCurve2D
from repro.sfc.ranges import (
    CurveRange,
    RangeSet,
    covering_range_set,
    covering_ranges,
)
from repro.sfc.zorder import ZOrderCurve2D


def brute_force_cells(curve, min_x, min_y, max_x, max_y):
    cx0, cy0, cx1, cy1 = curve.cell_range_for_box(min_x, min_y, max_x, max_y)
    return {
        curve.encode_cell(cx, cy)
        for cx in range(cx0, cx1 + 1)
        for cy in range(cy0, cy1 + 1)
    }


def ranges_to_cells(ranges):
    out = set()
    for r in ranges:
        out.update(range(r.lo, r.hi + 1))
    return out


UNIT_CURVES = [
    HilbertCurve2D(order=5, min_x=0, min_y=0, max_x=32, max_y=32),
    ZOrderCurve2D(order=5, min_x=0, min_y=0, max_x=32, max_y=32),
    GeoHashGrid(10),
]

BOXES = [
    (0.0, 0.0, 31.9, 31.9),  # whole domain
    (3.2, 4.7, 9.8, 12.1),
    (0.0, 0.0, 0.5, 0.5),  # single cell
    (15.5, 15.5, 16.5, 16.5),  # straddles the centre
    (30.0, 0.0, 31.5, 31.5),  # right edge strip
]


class TestCoveringExactness:
    @pytest.mark.parametrize("curve", UNIT_CURVES, ids=lambda c: type(c).__name__)
    @pytest.mark.parametrize("box", BOXES)
    def test_exact_cover(self, curve, box):
        if isinstance(curve, GeoHashGrid):
            # Scale unit boxes into lon/lat space for the global grid.
            sx = 360.0 / 32.0
            sy = 180.0 / 32.0
            box = (
                -180 + box[0] * sx,
                -90 + box[1] * sy,
                -180 + box[2] * sx,
                -90 + box[3] * sy,
            )
        expected = brute_force_cells(curve, *box)
        ranges = covering_ranges(curve, *box)
        assert ranges_to_cells(ranges) == expected

    def test_ranges_sorted_disjoint_maximal(self):
        curve = UNIT_CURVES[0]
        ranges = covering_ranges(curve, 2.0, 3.0, 20.0, 25.0)
        for a, b in zip(ranges, ranges[1:]):
            assert a.hi + 1 < b.lo  # disjoint AND non-adjacent (maximal)

    def test_full_domain_single_range(self):
        curve = HilbertCurve2D(order=4, min_x=0, min_y=0, max_x=16, max_y=16)
        ranges = covering_ranges(curve, 0, 0, 16, 16)
        assert ranges == [CurveRange(0, 255)]

    def test_empty_rectangle_rejected(self):
        curve = UNIT_CURVES[0]
        with pytest.raises(ValueError):
            covering_ranges(curve, 5.0, 5.0, 4.0, 6.0)

    def test_hilbert_fewer_ranges_than_zorder(self):
        # The clustering property (Moon et al.) the paper cites: Hilbert
        # coverings need no more (usually fewer) ranges than Z-order for
        # the same query rectangles, on average.
        h = HilbertCurve2D(order=7, min_x=0, min_y=0, max_x=128, max_y=128)
        z = ZOrderCurve2D(order=7, min_x=0, min_y=0, max_x=128, max_y=128)
        boxes = [
            (3.0, 5.0, 40.0, 61.0),
            (10.0, 10.0, 90.0, 30.0),
            (64.5, 2.0, 100.0, 90.0),
            (20.0, 20.0, 25.0, 110.0),
        ]
        h_total = sum(len(covering_ranges(h, *b)) for b in boxes)
        z_total = sum(len(covering_ranges(z, *b)) for b in boxes)
        assert h_total <= z_total


class TestCoarsening:
    def test_max_ranges_respected(self):
        curve = UNIT_CURVES[1]  # Z-order fragments heavily
        full = covering_ranges(curve, 3.0, 3.0, 28.0, 17.0)
        assert len(full) > 4
        coarse = covering_ranges(curve, 3.0, 3.0, 28.0, 17.0, max_ranges=4)
        assert len(coarse) <= 4

    def test_coarsening_is_superset(self):
        curve = UNIT_CURVES[1]
        full = ranges_to_cells(covering_ranges(curve, 3.0, 3.0, 28.0, 17.0))
        coarse = ranges_to_cells(
            covering_ranges(curve, 3.0, 3.0, 28.0, 17.0, max_ranges=3)
        )
        assert full <= coarse

    def test_max_ranges_one_single_interval(self):
        curve = UNIT_CURVES[0]
        coarse = covering_ranges(curve, 1.0, 1.0, 30.0, 30.0, max_ranges=1)
        assert len(coarse) == 1


class TestRangeSet:
    def test_split_singles_from_ranges(self):
        rs = RangeSet.from_ranges(
            [CurveRange(1, 5), CurveRange(7, 7), CurveRange(9, 12)]
        )
        assert rs.singles == (7,)
        assert rs.ranges == (CurveRange(1, 5), CurveRange(9, 12))
        assert rs.total_cells == 5 + 1 + 4

    def test_contains(self):
        rs = RangeSet.from_ranges([CurveRange(1, 5), CurveRange(7, 7)])
        assert rs.contains(3)
        assert rs.contains(7)
        assert not rs.contains(6)

    def test_touching_ranges_coalesce(self):
        # [1, 5] and [6, 9] cover one contiguous curve interval; the
        # decomposition must emit a single clause for it.
        rs = RangeSet.from_ranges([CurveRange(1, 5), CurveRange(6, 9)])
        assert rs.ranges == (CurveRange(1, 9),)
        assert rs.singles == ()

    def test_overlapping_and_contained_ranges_coalesce(self):
        rs = RangeSet.from_ranges(
            [CurveRange(1, 8), CurveRange(3, 5), CurveRange(7, 12)]
        )
        assert rs.ranges == (CurveRange(1, 12),)
        assert rs.singles == ()

    def test_single_touching_range_coalesces(self):
        # A one-cell range adjacent to an interval joins it rather
        # than surviving as a separate $in member.
        rs = RangeSet.from_ranges([CurveRange(1, 5), CurveRange(6, 6)])
        assert rs.ranges == (CurveRange(1, 6),)
        assert rs.singles == ()

    def test_adjacent_singles_coalesce_into_range(self):
        rs = RangeSet.from_ranges(
            [CurveRange(4, 4), CurveRange(5, 5), CurveRange(9, 9)]
        )
        assert rs.ranges == (CurveRange(4, 5),)
        assert rs.singles == (9,)

    def test_coalescing_is_order_independent(self):
        pieces = [CurveRange(6, 9), CurveRange(1, 5), CurveRange(11, 11)]
        forward = RangeSet.from_ranges(pieces)
        backward = RangeSet.from_ranges(list(reversed(pieces)))
        assert forward == backward
        assert forward.ranges == (CurveRange(1, 9),)
        assert forward.singles == (11,)

    def test_all_ranges_sorted(self):
        rs = RangeSet.from_ranges(
            [CurveRange(9, 12), CurveRange(7, 7), CurveRange(1, 5)]
        )
        assert [r.lo for r in rs.all_ranges] == [1, 7, 9]

    def test_encoded_points_covered(self):
        # Every point inside the box must encode to a covered value —
        # the guarantee the Hilbert query's $or clause depends on.
        curve = HilbertCurve2D.global_curve(13)
        box = (23.606039, 38.023982, 24.032754, 38.353926)  # the paper's Qb
        rs = covering_range_set(curve, *box)
        import random

        rng = random.Random(5)
        for _ in range(300):
            lon = rng.uniform(box[0], box[2])
            lat = rng.uniform(box[1], box[3])
            assert rs.contains(curve.encode(lon, lat))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            CurveRange(5, 4)
