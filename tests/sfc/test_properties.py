"""Property-based tests (hypothesis) for the curve layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.geohash import GeoHashGrid, geohash_encode, geohash_encode_int
from repro.sfc.hilbert import HilbertCurve2D, hilbert_d_to_xy, hilbert_xy_to_d
from repro.sfc.ranges import covering_ranges
from repro.sfc.zorder import morton_deinterleave, morton_interleave

ORDER = 6
SIDE = 1 << ORDER

coords = st.integers(min_value=0, max_value=SIDE - 1)
lons = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
lats = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)


@given(x=coords, y=coords)
def test_hilbert_roundtrip(x, y):
    d = hilbert_xy_to_d(ORDER, x, y)
    assert hilbert_d_to_xy(ORDER, d) == (x, y)


@given(d=st.integers(min_value=0, max_value=SIDE * SIDE - 1))
def test_hilbert_inverse_roundtrip(d):
    x, y = hilbert_d_to_xy(ORDER, d)
    assert hilbert_xy_to_d(ORDER, x, y) == d


@given(d=st.integers(min_value=0, max_value=SIDE * SIDE - 2))
def test_hilbert_adjacency(d):
    # Consecutive curve positions are always 4-neighbours.
    x1, y1 = hilbert_d_to_xy(ORDER, d)
    x2, y2 = hilbert_d_to_xy(ORDER, d + 1)
    assert abs(x1 - x2) + abs(y1 - y2) == 1


@given(
    x=st.integers(min_value=0, max_value=2**20),
    y=st.integers(min_value=0, max_value=2**20),
)
def test_morton_roundtrip(x, y):
    assert morton_deinterleave(morton_interleave(x, y)) == (x, y)


@given(lon=lons, lat=lats)
def test_geohash_int_within_bits(lon, lat):
    value = geohash_encode_int(lon, lat, bits=26)
    assert 0 <= value < 2**26


@given(lon=lons, lat=lats)
def test_geohash_string_prefix_stability(lon, lat):
    long_form = geohash_encode(lon, lat, precision=8)
    short_form = geohash_encode(lon, lat, precision=4)
    assert long_form.startswith(short_form)


@given(lon=lons, lat=lats)
def test_geohash_grid_consistency(lon, lat):
    grid = GeoHashGrid(20)
    value = grid.encode(lon, lat)
    cx, cy = grid.decode_cell(value)
    assert grid.encode_cell(cx, cy) == value
    lon0, lat0, lon1, lat1 = grid.cell_bounds(value)
    assert lon0 - 1e-9 <= lon <= lon1 + 1e-9
    assert lat0 - 1e-9 <= lat <= lat1 + 1e-9


box_coords = st.floats(min_value=0.0, max_value=31.999, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(x0=box_coords, y0=box_coords, x1=box_coords, y1=box_coords)
def test_covering_matches_brute_force(x0, y0, x1, y1):
    # The decomposition must cover exactly the intersecting cells, for
    # arbitrary rectangles.
    if x0 > x1:
        x0, x1 = x1, x0
    if y0 > y1:
        y0, y1 = y1, y0
    curve = HilbertCurve2D(order=5, min_x=0, min_y=0, max_x=32, max_y=32)
    cx0, cy0, cx1, cy1 = curve.cell_range_for_box(x0, y0, x1, y1)
    expected = {
        curve.encode_cell(cx, cy)
        for cx in range(cx0, cx1 + 1)
        for cy in range(cy0, cy1 + 1)
    }
    got = set()
    for r in covering_ranges(curve, x0, y0, x1, y1):
        got.update(range(r.lo, r.hi + 1))
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    x0=box_coords,
    y0=box_coords,
    x1=box_coords,
    y1=box_coords,
    limit=st.integers(min_value=1, max_value=6),
)
def test_coarsened_covering_is_superset(x0, y0, x1, y1, limit):
    if x0 > x1:
        x0, x1 = x1, x0
    if y0 > y1:
        y0, y1 = y1, y0
    curve = HilbertCurve2D(order=5, min_x=0, min_y=0, max_x=32, max_y=32)
    full = covering_ranges(curve, x0, y0, x1, y1)
    coarse = covering_ranges(curve, x0, y0, x1, y1, max_ranges=limit)
    assert len(coarse) <= max(limit, 1)
    full_cells = set()
    for r in full:
        full_cells.update(range(r.lo, r.hi + 1))
    coarse_cells = set()
    for r in coarse:
        coarse_cells.update(range(r.lo, r.hi + 1))
    assert full_cells <= coarse_cells
