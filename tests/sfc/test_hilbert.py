"""Tests for the Hilbert curve implementation."""

import math

import pytest

from repro.sfc.hilbert import HilbertCurve2D, hilbert_d_to_xy, hilbert_xy_to_d


class TestHilbertXYToD:
    def test_order1_visits_all_four_cells(self):
        ds = {hilbert_xy_to_d(1, x, y) for x in range(2) for y in range(2)}
        assert ds == {0, 1, 2, 3}

    def test_order1_canonical_shape(self):
        # The order-1 Hilbert curve is the "cup": (0,0)→(0,1)→(1,1)→(1,0).
        assert hilbert_xy_to_d(1, 0, 0) == 0
        assert hilbert_xy_to_d(1, 0, 1) == 1
        assert hilbert_xy_to_d(1, 1, 1) == 2
        assert hilbert_xy_to_d(1, 1, 0) == 3

    def test_bijective_order3(self):
        n = 8
        ds = sorted(
            hilbert_xy_to_d(3, x, y) for x in range(n) for y in range(n)
        )
        assert ds == list(range(n * n))

    def test_roundtrip_order6(self):
        for d in range(0, 4096, 7):
            x, y = hilbert_d_to_xy(6, d)
            assert hilbert_xy_to_d(6, x, y) == d

    def test_consecutive_distances_are_adjacent_cells(self):
        # Defining property of the Hilbert curve: consecutive distances
        # map to 4-neighbour cells (Manhattan distance exactly 1).
        prev = hilbert_d_to_xy(5, 0)
        for d in range(1, 1024):
            cur = hilbert_d_to_xy(5, d)
            assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
            prev = cur

    def test_rejects_out_of_grid(self):
        with pytest.raises(ValueError):
            hilbert_xy_to_d(3, 8, 0)
        with pytest.raises(ValueError):
            hilbert_xy_to_d(3, 0, -1)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            hilbert_xy_to_d(0, 0, 0)
        with pytest.raises(ValueError):
            hilbert_d_to_xy(-1, 0)

    def test_rejects_out_of_range_distance(self):
        with pytest.raises(ValueError):
            hilbert_d_to_xy(2, 16)


class TestHilbertCurve2D:
    def test_global_domain_defaults(self):
        curve = HilbertCurve2D.global_curve(13)
        assert curve.min_x == -180.0
        assert curve.max_y == 90.0
        assert curve.cells_per_side == 8192
        assert curve.max_distance == 4**13 - 1

    def test_encode_within_range(self):
        curve = HilbertCurve2D.global_curve(13)
        d = curve.encode(23.727539, 37.983810)
        assert 0 <= d <= curve.max_distance

    def test_encode_decode_cell_consistency(self):
        curve = HilbertCurve2D.global_curve(8)
        d = curve.encode(10.0, 45.0)
        cx, cy = curve.decode_cell(d)
        assert curve.encode_cell(cx, cy) == d

    def test_cell_bounds_contain_point(self):
        curve = HilbertCurve2D.global_curve(10)
        lon, lat = 23.7275, 37.9838
        d = curve.encode(lon, lat)
        x0, y0, x1, y1 = curve.cell_bounds(d)
        assert x0 <= lon <= x1
        assert y0 <= lat <= y1

    def test_clamps_out_of_domain_points(self):
        curve = HilbertCurve2D(order=4, min_x=0, min_y=0, max_x=10, max_y=10)
        assert curve.cell_of(-5.0, -5.0) == (0, 0)
        assert curve.cell_of(99.0, 99.0) == (15, 15)

    def test_boundary_point_lands_in_last_cell(self):
        curve = HilbertCurve2D.global_curve(5)
        cx, cy = curve.cell_of(180.0, 90.0)
        assert (cx, cy) == (31, 31)

    def test_nearby_points_have_close_distances(self):
        # Locality (the paper's reason for choosing Hilbert): two points
        # in the same cell share a distance.
        curve = HilbertCurve2D.global_curve(13)
        d1 = curve.encode(23.7275, 37.9838)
        d2 = curve.encode(23.7276, 37.9839)
        assert abs(d1 - d2) <= 3

    def test_restricted_domain_higher_precision(self):
        # hil* over a small bbox: its cells are much smaller than the
        # global curve's, so two points separated by ~2 km that share a
        # global cell get distinct restricted cells.
        global_curve = HilbertCurve2D.global_curve(13)
        local_curve = HilbertCurve2D(
            order=13, min_x=23.0, min_y=37.5, max_x=24.5, max_y=38.6
        )
        p1 = (23.70, 37.98)
        p2 = (23.72, 37.99)
        assert global_curve.encode(*p1) == global_curve.encode(*p2)
        assert local_curve.encode(*p1) != local_curve.encode(*p2)

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            HilbertCurve2D(order=4, min_x=5, min_y=0, max_x=5, max_y=10)

    def test_walk_covers_grid(self):
        curve = HilbertCurve2D(order=3, min_x=0, min_y=0, max_x=8, max_y=8)
        cells = list(curve.walk())
        assert len(cells) == 64
        assert len(set(cells)) == 64

    def test_distances_for_box_sorted_and_unique(self):
        curve = HilbertCurve2D(order=4, min_x=0, min_y=0, max_x=16, max_y=16)
        ds = curve.distances_for_box(2.5, 3.5, 6.5, 9.5)
        assert ds == sorted(set(ds))
        assert len(ds) == 5 * 7  # cells 2..6 x 3..9

    def test_cell_range_for_box_inclusive(self):
        curve = HilbertCurve2D(order=4, min_x=0, min_y=0, max_x=16, max_y=16)
        assert curve.cell_range_for_box(1.0, 2.0, 3.0, 4.0) == (1, 2, 3, 4)
