"""One-off maintenance script: insert missing one-line docstrings.

Reads a (file, qualified name) → docstring table and inserts each
docstring right after the function/property signature using AST
positions, preserving indentation.  Idempotent: functions that already
have a docstring are skipped.
"""

import ast
import sys

DOCS = {
    "src/repro/sfc/ranges.py": {
        "CurveRange.contains": "Whether ``value`` lies inside the closed range.",
        "Quadtree2DCurve.order": "Bits per dimension.",
        "Quadtree2DCurve.decode_cell": "Grid cell of a curve distance.",
        "Quadtree2DCurve.encode_cell": "Curve distance of a grid cell.",
        "Quadtree2DCurve.cell_range_for_box": "Inclusive cell rectangle covering a box.",
        "RangeSet.from_ranges": "Split merged ranges into multi-value intervals and singles.",
        "RangeSet.total_cells": "Number of distinct curve values covered.",
        "RangeSet.contains": "Whether a curve value falls inside any range or single.",
    },
    "src/repro/sfc/zorder.py": {
        "ZOrderCurve2D.cells_per_side": "Number of grid cells along each dimension.",
        "ZOrderCurve2D.max_distance": "Largest valid curve distance (inclusive).",
        "ZOrderCurve2D.encode": "Morton code of the cell containing ``(x, y)``.",
        "ZOrderCurve2D.decode_cell": "Grid cell of a Morton code.",
        "ZOrderCurve2D.cell_bounds": "Continuous bounds of a cell.",
        "ZOrderCurve2D.cell_range_for_box": "Inclusive cell rectangle covering a box.",
    },
    "src/repro/sfc/geohash.py": {
        "GeoHashGrid.cells_per_side": "Number of grid cells along each dimension.",
        "GeoHashGrid.max_distance": "Largest valid integer GeoHash (inclusive).",
        "GeoHashGrid.cell_range_for_box": "Inclusive cell rectangle covering a box.",
    },
    "src/repro/sfc/morton3.py": {
        "Morton3D.cells_per_side": "Number of grid cells along each dimension.",
        "Morton3D.max_distance": "Largest valid Morton code (inclusive).",
        "Morton3D.cell_of": "Grid cell of a normalized (a, b, c) point, clamped.",
        "Morton3D.encode": "Morton code of the cell containing a normalized point.",
        "Morton3D.encode_cell": "Morton code of a grid cell.",
        "Morton3D.decode_cell": "Grid cell of a Morton code.",
        "morton3_deinterleave": "Recover the three coordinates from a Morton code.",
    },
    "src/repro/geo/geometry.py": {
        "Point.as_tuple": "The point as a ``(lon, lat)`` tuple.",
        "BoundingBox.world": "The whole-globe box.",
        "BoundingBox.width": "Longitudinal extent in degrees.",
        "BoundingBox.height": "Latitudinal extent in degrees.",
        "BoundingBox.center": "The box's central point.",
        "BoundingBox.contains": "Whether a point lies inside (borders inclusive).",
        "BoundingBox.contains_lonlat": "Whether a raw (lon, lat) pair lies inside.",
        "BoundingBox.intersects": "Whether two boxes overlap (touching counts).",
        "BoundingBox.intersection": "The overlapping box, or None when disjoint.",
        "BoundingBox.to_polygon": "The box as a closed polygon ring.",
        "Polygon.bbox": "The polygon's bounding box.",
        "LineString.bbox": "The polyline's bounding box.",
        "LineString.segments": "Consecutive point pairs forming the segments.",
        "LineString.length_km": "Total great-circle length in kilometres.",
    },
    "src/repro/docstore/bson.py": {
        "ObjectId.from_bytes": "Wrap an existing 12-byte value.",
        "ObjectId.from_hex": "Parse a 24-character hex string.",
        "ObjectId.binary": "The raw 12 bytes.",
        "ObjectId.generation_time": "The embedded creation timestamp (UTC).",
    },
    "src/repro/docstore/btree.py": {
        "BPlusTree.order": "Maximum children per node / entries per leaf.",
    },
    "src/repro/docstore/index.py": {
        "IndexDefinition.paths": "The indexed dotted paths, in declaration order.",
        "IndexDefinition.field_kind": "The kind of a path in this index, or None.",
        "Index.storage_key": "Canonical key plus the record-id tiebreaker.",
        "Index.insert_document": "Add a document's key(s) to the index.",
        "Index.remove_document": "Remove a document's key(s) from the index.",
        "Index.name": "The index's name.",
        "Index.grid": "The GeoHash grid backing 2dsphere fields.",
    },
    "src/repro/docstore/matcher.py": {
        "Matcher.matches": "Whether a document satisfies the compiled query.",
    },
    "src/repro/docstore/planner.py": {
        "Interval.full": "The unbounded interval (every key).",
        "Interval.point": "A single-value interval.",
        "Interval.is_full": "Whether the interval spans the whole key space.",
        "Interval.is_point": "Whether the interval holds exactly one value.",
        "PathPredicate.has_range": "Whether any range operator constrains the path.",
        "PathPredicate.is_constraining": "Whether the predicate can produce index bounds.",
        "QueryShape.predicate": "The predicate on a path, or None.",
        "IndexScanPlan.index_name": "Name of the index this plan scans.",
        "IndexScanPlan.kind": "Plan stage label (IXSCAN).",
        "IndexScanPlan.describe": "Explain-style summary of the plan.",
        "CollScanPlan.kind": "Plan stage label (COLLSCAN).",
        "CollScanPlan.describe": "Explain-style summary of the plan.",
    },
    "src/repro/docstore/executor.py": {
        "ExecutionStats.as_dict": "The counters as an executionStats-like mapping.",
    },
    "src/repro/docstore/collection.py": {
        "Collection.insert_many": "Insert documents in order; returns their ids.",
        "Collection.delete_many": "Delete matching documents; returns the count.",
        "Collection.drop_index": "Remove a secondary index by name.",
        "Collection.list_indexes": "Names of all indexes, ``_id_`` included.",
        "Collection.get_index": "The live index object for a name.",
        "Collection.find": "Matching documents as a chainable cursor.",
        "Collection.find_one": "The first matching document, or None.",
        "Collection.count_documents": "Number of documents matching the query.",
        "Collection.aggregate": "Run an aggregation pipeline over the collection.",
        "Collection.total_index_size": "Sum of all index sizes in bytes.",
    },
    "src/repro/docstore/database.py": {
        "Database.drop_collection": "Remove a collection from the namespace.",
        "Database.list_collections": "Names of the existing collections.",
        "Database.stats": "A dbStats-style summary.",
    },
    "src/repro/docstore/cursor.py": {
        "Cursor.sort": "Order results by the given field directions.",
        "Cursor.skip": "Skip the first ``count`` results.",
        "Cursor.limit": "Cap the number of results returned.",
        "Cursor.to_list": "Materialize the results as a list.",
        "Cursor.first": "The first result, or None.",
    },
    "src/repro/docstore/storage.py": {
        "StorageModel.index_size": "Prefix-compressed size of an index in bytes.",
    },
    "src/repro/cluster/chunk.py": {
        "ShardKeyPattern.from_spec": "Build from a list or mapping of (path, kind) pairs.",
        "ShardKeyPattern.paths": "The shard-key dotted paths, in order.",
        "ShardKeyPattern.is_hashed": "Whether any field is hashed.",
        "ShardKeyPattern.extract_canonical": "Canonical (comparable) shard key of a document.",
        "ShardKeyPattern.global_min": "The smallest possible key (all MinKey).",
        "ShardKeyPattern.global_max": "The largest possible key (all MaxKey).",
        "Chunk.contains": "Whether a canonical key falls in [min, max).",
        "Chunk.describe": "The chunk as a readable mapping.",
    },
    "src/repro/cluster/catalog.py": {
        "CollectionMetadata.chunk_for_key": "The chunk covering a canonical key.",
        "CollectionMetadata.chunk_index": "Position of a chunk in the ordered map.",
        "CollectionMetadata.mark_jumbo": "Flag a chunk as unsplittable.",
        "CollectionMetadata.chunks_on_shard": "Chunks currently owned by one shard.",
        "CollectionMetadata.chunk_counts": "Chunk count per shard id.",
        "CollectionMetadata.shards_used": "Sorted shard ids holding at least one chunk.",
        "ConfigCatalog.add_collection": "Register a newly sharded collection.",
        "ConfigCatalog.get": "Metadata of a sharded collection.",
        "ConfigCatalog.list_collections": "Names of all sharded collections.",
    },
    "src/repro/cluster/zones.py": {
        "Zone.contains": "Whether a canonical key falls in [min, max).",
        "Zone.overlaps_range": "Whether the zone overlaps a chunk range at all.",
        "ZoneSet.overlapping_zones": "Every zone overlapping a key range.",
    },
    "src/repro/cluster/shard.py": {
        "Shard.collection": "The shard-local collection for a name.",
    },
    "src/repro/cluster/cluster.py": {
        "ShardedCluster.insert_one": "Route and insert a single document.",
        "ShardedCluster.run_balancer": "Run the balancer; returns migrations performed.",
        "ShardedCluster.count_documents": "Number of matching documents cluster-wide.",
        "ShardedCluster.chunk_distribution": "Chunk count per shard for a collection.",
    },
    "src/repro/cluster/metrics.py": {
        "ClusterQueryStats.max_keys_examined": "Worst per-shard keys examined.",
        "ClusterQueryStats.max_docs_examined": "Worst per-shard documents examined.",
        "ClusterQueryStats.total_keys_examined": "Keys examined summed over shards.",
        "ClusterQueryStats.total_docs_examined": "Documents examined summed over shards.",
        "ClusterQueryStats.n_returned": "Total documents returned.",
        "ClusterQueryStats.as_dict": "The metrics as a readable mapping.",
    },
    "src/repro/cluster/snapshot.py": {
        "dump_cluster": "Write a cluster snapshot to a JSON file.",
        "load_cluster": "Read a cluster snapshot from a JSON file.",
    },
    "src/repro/core/approaches.py": {
        "Approach.shard_key_spec": "The shard-key fields this approach uses.",
        "BaselineST.shard_key_spec": "Shard on the date field (Section 4.1.2).",
        "BaselineST.index_specs": "The (location, date) compound index.",
        "BaselineST.render_query": "The baseline query document (no 1D clauses).",
        "BaselineST.zone_field": "Zones are defined on date.",
        "BaselineTS.shard_key_spec": "Shard on the date field (Section 4.1.2).",
        "BaselineTS.index_specs": "The (date, location) compound index.",
        "BaselineTS.render_query": "The baseline query document (no 1D clauses).",
        "BaselineTS.zone_field": "Zones are defined on date.",
        "HilbertApproach.shard_key_spec": "Shard on (hilbertIndex, date) (Section 4.2.2).",
        "HilbertApproach.index_specs": "No extra index: the shard-key compound suffices.",
        "HilbertApproach.transform": "Add the hilbertIndex field at load time.",
        "HilbertApproach.render_query": "Query with the $or of Hilbert ranges.",
        "HilbertApproach.zone_field": "Zones are defined on hilbertIndex.",
        "Deployment.totals": "Cluster-wide size statistics for the collection.",
    },
    "src/repro/core/benchmark.py": {
        "QueryMeasurement.as_row": "The measurement as a flat report row.",
        "MeasurementRun.rows": "All measurements as flat report rows.",
        "MeasurementRun.by_query": "Measurements grouped by query label.",
    },
    "src/repro/core/query.py": {
        "SpatioTemporalQuery.duration": "Length of the temporal window.",
        "SpatioTemporalQuery.temporal_predicate": "The $gte/$lte clause on the date field.",
    },
    "src/repro/core/sthash.py": {
        "STHashEncoder.curve": "The 3D Morton curve behind the encoding.",
        "STHashEncoder.encode_document": "ST-Hash of a document's location and date.",
        "STHashEncoder.enrich": "A copy of the document with the stHash field added.",
        "STHashApproach.shard_key_spec": "Shard on the single stHash string field.",
        "STHashApproach.index_specs": "No extra index: the shard-key index suffices.",
        "STHashApproach.transform": "Add the stHash field at load time.",
        "STHashApproach.render_query": "Query with the $or of ST-Hash string ranges.",
        "STHashApproach.zone_field": "Zones are defined on stHash.",
    },
    "src/repro/datagen/datasets.py": {
        "ReproScale.from_env": "Scale from the REPRO_R_RECORDS environment variable.",
    },
    "src/repro/datagen/vehicles.py": {
        "FleetGenerator.generate_list": "Generate and materialize ``n_records`` documents.",
    },
    "src/repro/datagen/uniform.py": {
        "UniformGenerator.generate": "Yield exactly ``n_records`` uniform documents.",
        "UniformGenerator.generate_list": "Generate and materialize ``n_records`` documents.",
    },
    "src/repro/datagen/csv_io.py": {
        "write_csv_file": "Write documents to a CSV file.",
        "read_csv_file": "Read documents back from a CSV file.",
    },
    "src/repro/workloads/queries.py": {
        "all_queries": "Both query categories keyed by 'small'/'big'.",
    },
    "src/repro/cli.py": {
        "build_parser": "The argparse parser for the repro CLI.",
        "main": "CLI entry point; returns the process exit code.",
    },
}


def insert_docstrings(path: str, table: dict) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    tree = ast.parse(source)
    lines = source.splitlines(keepends=True)
    insertions = []  # (line_index, text)

    def visit(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, prefix=child.name + ".")
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qualname = prefix + child.name
                if qualname not in table:
                    continue
                if ast.get_docstring(child) is not None:
                    continue
                first = child.body[0]
                indent = " " * first.col_offset
                text = '%s"""%s"""\n' % (indent, table[qualname])
                insertions.append((first.lineno - 1, text))

    visit(tree)
    for line_index, text in sorted(insertions, reverse=True):
        lines.insert(line_index, text)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("".join(lines))
    return len(insertions)


def main() -> int:
    total = 0
    for path, table in DOCS.items():
        count = insert_docstrings(path, table)
        print("%-40s +%d docstrings" % (path, count))
        total += count
    print("total inserted:", total)
    return 0


if __name__ == "__main__":
    sys.exit(main())
