#!/usr/bin/env python
"""Closed-loop stress under the runtime lock-order sanitizer.

Drives a :class:`LoadGenerator` (plus a writer mix) against a
:class:`QueryService` whose shard locks are instrumented, then
cross-validates the observed acquisition graph against the static
lock-order graph of ``src``.  Exits non-zero when the sanitizer
records any violation or the two graphs disagree — this is the CI
job that keeps the analyzer honest against running code.

Usage::

    PYTHONPATH=src python scripts/sanitizer_stress.py [--clients 8]
        [--queries 400] [--shards 8] [--docs 2000]
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lockgraph import build_lock_order_graph  # noqa: E402
from repro.cluster.cluster import (  # noqa: E402
    ClusterTopology,
    ShardedCluster,
)
from repro.sanitizer import (  # noqa: E402
    INSTRUMENTED_KEYS,
    LockOrderSanitizer,
    cross_validate,
    instrument_query_service,
)
from repro.service.loadgen import LoadGenerator  # noqa: E402
from repro.service.service import QueryService, ServiceConfig  # noqa: E402


def build_cluster(n_shards: int, n_docs: int) -> ShardedCluster:
    """A seeded cluster sharded on ("k", 1)."""
    cluster = ShardedCluster(
        topology=ClusterTopology(n_shards=n_shards),
        chunk_max_bytes=4 * 1024,
    )
    cluster.shard_collection("t", [("k", 1)])
    rng = random.Random(13)
    cluster.insert_many(
        "t",
        [
            {
                "_id": i,
                "k": rng.randrange(0, 100_000),
                "group": i % 16,
                "counter": 0,
            }
            for i in range(n_docs)
        ],
    )
    return cluster


def build_workload(n_queries: int) -> list:
    """Mixed targeted and broadcast range reads."""
    rng = random.Random(17)
    workload = []
    for _ in range(n_queries):
        lo = rng.randrange(0, 90_000)
        workload.append({"k": {"$gte": lo, "$lt": lo + 5_000}})
    workload.append({})  # broadcast: acquires every shard lock
    return workload


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--docs", type=int, default=2_000)
    args = parser.parse_args(argv)

    sanitizer = LockOrderSanitizer()
    cluster = build_cluster(args.shards, args.docs)
    with QueryService(
        cluster, ServiceConfig(max_workers=args.clients)
    ) as service:
        instrument_query_service(service, sanitizer)
        generator = LoadGenerator(
            service, "t", build_workload(n_queries=32)
        )
        report = generator.run_closed_loop(
            clients=args.clients, total_queries=args.queries
        )
        # Writer mix: the write path walks every shard write lock.
        service.insert_many(
            "t",
            [
                {"_id": args.docs + i, "k": i, "group": 0}
                for i in range(50)
            ],
        )
        service.update_many(
            "t", {"group": 1}, {"$inc": {"counter": 1}}
        )
        service.delete_many("t", {"group": 2})

    print(
        "closed loop: %d offered, %d completed, %d rejected, "
        "%d timed out, %d errors"
        % (
            report.offered,
            report.completed,
            report.rejected,
            report.timed_out,
            report.errors,
        )
    )
    print(
        "sanitizer: %d edge(s) observed, %d violation(s)"
        % (len(sanitizer.observed_edges()), len(sanitizer.violations()))
    )

    failed = False
    for violation in sanitizer.violations():
        failed = True
        print(
            "VIOLATION [%s] %s (thread %s)"
            % (violation.kind, violation.detail, violation.thread)
        )
    if not sanitizer.observed_edges():
        # An empty observed graph means the workload never nested two
        # instrumented acquisitions — the cross-validation below would
        # pass vacuously, so treat it as a harness failure instead.
        failed = True
        print("HARNESS ERROR: workload produced no observed lock edges")

    static_graph = build_lock_order_graph(["src"], REPO_ROOT)
    validation = cross_validate(
        static_graph, sanitizer, INSTRUMENTED_KEYS
    )
    print(validation.render())
    if not validation.ok:
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
