"""Reproduction of "Scalable Spatio-temporal Indexing and Querying over
a Document-oriented NoSQL Store" (Koutroumanis & Doulkeridis, EDBT 2021).

Public API layers, bottom-up:

* :mod:`repro.sfc` — Hilbert / Z-order / GeoHash curves and the
  rectangle-to-ranges covering algorithm;
* :mod:`repro.geo` — points, boxes, polygons, GeoJSON;
* :mod:`repro.docstore` — a MongoDB-like single-node document store
  (B-tree indexes, query planner, aggregation, storage sizing);
* :mod:`repro.cluster` — sharding: chunks, balancer, zones, router;
* :mod:`repro.service` — the concurrent query-serving frontend:
  parallel scatter-gather, plan cache, admission control, load
  generation;
* :mod:`repro.core` — the paper's contribution: Hilbert-keyed
  spatio-temporal indexing/sharding, the four evaluated approaches,
  and the measurement methodology;
* :mod:`repro.datagen` / :mod:`repro.workloads` — the R/S data sets
  and the Q^s/Q^b query workloads.
"""

from repro.core import (
    BaselineST,
    BaselineTS,
    Deployment,
    HilbertApproach,
    SpatioTemporalEncoder,
    SpatioTemporalQuery,
    deploy_approach,
    make_approach,
    measure_query,
    run_workload,
)
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
)

__version__ = "1.0.0"

__all__ = [
    "LoadGenerator",
    "QueryService",
    "ServiceConfig",
    "BaselineST",
    "BaselineTS",
    "Deployment",
    "HilbertApproach",
    "SpatioTemporalEncoder",
    "SpatioTemporalQuery",
    "deploy_approach",
    "make_approach",
    "measure_query",
    "run_workload",
    "__version__",
]
