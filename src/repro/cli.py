"""Command-line interface: ``python -m repro <command>``.

Small utilities a downstream user reaches for first:

* ``encode`` — show the Hilbert / GeoHash / ST-Hash encodings of a
  point (and time);
* ``generate`` — write one of the paper's data sets to CSV;
* ``compare`` — deploy the four approaches on generated data and print
  the paper's four metrics for a query;
* ``info`` — version and system inventory.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

_UTC = _dt.timezone.utc


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the repro CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Scalable Spatio-temporal Indexing and "
            "Querying over a Document-oriented NoSQL Store' (EDBT 2021)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    encode = sub.add_parser(
        "encode", help="encode a (lon, lat[, time]) point on every curve"
    )
    encode.add_argument("lon", type=float)
    encode.add_argument("lat", type=float)
    encode.add_argument(
        "--time",
        default="2018-08-01T12:00:00",
        help="ISO timestamp for the ST-Hash encoding",
    )
    encode.add_argument("--order", type=int, default=13)

    generate = sub.add_parser(
        "generate", help="write a data set to CSV (paper Appendix A.1 format)"
    )
    generate.add_argument("--dataset", choices=("R", "S"), default="R")
    generate.add_argument("--records", type=int, default=10_000)
    generate.add_argument("--out", required=True)

    compare = sub.add_parser(
        "compare", help="run the four approaches on one query and compare"
    )
    compare.add_argument("--records", type=int, default=8_000)
    compare.add_argument("--shards", type=int, default=8)
    compare.add_argument(
        "--query", choices=("small", "big"), default="big",
        help="which of the paper's query boxes to use",
    )
    compare.add_argument(
        "--window", type=int, default=7, help="temporal window in days"
    )

    stats = sub.add_parser(
        "stats", help="statistics catalog operations (ANALYZE)"
    )
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)
    analyze = stats_sub.add_parser(
        "analyze",
        help="deploy generated data and run the ANALYZE pass",
    )
    analyze.add_argument("collection")
    analyze.add_argument("--records", type=int, default=2_000)
    analyze.add_argument("--shards", type=int, default=4)
    analyze.add_argument("--buckets", type=int, default=32)
    analyze.add_argument("--sketch-order", type=int, default=10)

    sub.add_parser("info", help="version and system inventory")
    return parser


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.core.encoder import SpatioTemporalEncoder
    from repro.core.sthash import STHashEncoder
    from repro.sfc.geohash import geohash_encode

    stamp = _dt.datetime.fromisoformat(args.time)
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=_UTC)
    hilbert = SpatioTemporalEncoder.hilbert_global(args.order)
    zorder = SpatioTemporalEncoder.zorder_global(args.order)
    sthash = STHashEncoder()
    print("point           : (%g, %g) at %s" % (args.lon, args.lat, stamp))
    print("hilbertIndex    : %d" % hilbert.encode_lonlat(args.lon, args.lat))
    print("z-order index   : %d" % zorder.encode_lonlat(args.lon, args.lat))
    print("geohash (10 ch) : %s" % geohash_encode(args.lon, args.lat, 10))
    print("stHash          : %s" % sthash.encode(args.lon, args.lat, stamp))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datagen.csv_io import write_csv_file
    from repro.datagen.uniform import UniformGenerator
    from repro.datagen.vehicles import FleetConfig, FleetGenerator

    if args.dataset == "R":
        docs = FleetGenerator(
            FleetConfig(n_vehicles=max(20, args.records // 300))
        ).generate_list(args.records)
    else:
        docs = UniformGenerator().generate_list(args.records)
    write_csv_file(args.out, docs)
    print("wrote %d records to %s" % (len(docs), args.out))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.cluster.cluster import ClusterTopology
    from repro.core.approaches import deploy_approach, make_approach
    from repro.core.benchmark import measure_query
    from repro.core.query import SpatioTemporalQuery
    from repro.datagen.vehicles import FleetConfig, FleetGenerator, GREECE_BBOX
    from repro.workloads.queries import BIG_BBOX, SMALL_BBOX

    docs = FleetGenerator(
        FleetConfig(n_vehicles=max(20, args.records // 300))
    ).generate_list(args.records)
    bbox = BIG_BBOX if args.query == "big" else SMALL_BBOX
    query = SpatioTemporalQuery(
        bbox=bbox,
        time_from=_dt.datetime(2018, 8, 1, tzinfo=_UTC),
        time_to=_dt.datetime(2018, 8, 1, tzinfo=_UTC)
        + _dt.timedelta(days=args.window),
        label="%s/%dd" % (args.query, args.window),
    )
    header = "%-9s %6s %9s %9s %10s %8s" % (
        "approach", "nodes", "maxKeys", "maxDocs", "time(ms)", "results"
    )
    print(header)
    print("-" * len(header))
    for name in ("bslST", "bslTS", "hil", "hilstar"):
        deployment = deploy_approach(
            make_approach(name, dataset_bbox=GREECE_BBOX),
            docs,
            topology=ClusterTopology(n_shards=args.shards),
            chunk_max_bytes=24 * 1024,
        )
        m = measure_query(deployment, query, runs=3, average_last=1)
        print(
            "%-9s %6d %9d %9d %10.2f %8d"
            % (
                name,
                m.nodes,
                m.max_keys_examined,
                m.max_docs_examined,
                m.execution_time_ms,
                m.n_returned,
            )
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.cluster.cluster import ClusterTopology
    from repro.core.approaches import (
        COLLECTION,
        deploy_approach,
        make_approach,
    )
    from repro.datagen.vehicles import FleetConfig, FleetGenerator, GREECE_BBOX
    from repro.service import QueryService, ServiceConfig

    docs = FleetGenerator(
        FleetConfig(n_vehicles=max(20, args.records // 300))
    ).generate_list(args.records)
    deployment = deploy_approach(
        make_approach("bslST", dataset_bbox=GREECE_BBOX),
        docs,
        topology=ClusterTopology(n_shards=args.shards),
        chunk_max_bytes=64 * 1024,
    )
    if args.collection != COLLECTION:
        print(
            "unknown collection %r (the demo deployment shards %r)"
            % (args.collection, COLLECTION),
            file=sys.stderr,
        )
        return 2
    with QueryService(
        deployment.cluster, ServiceConfig(parallel_scatter_gather=False)
    ) as service:
        stats = service.analyze_collection(
            args.collection,
            histogram_buckets=args.buckets,
            sketch_order=args.sketch_order,
        )
        payload = stats.as_dict()
        payload["catalog"] = service.stats_catalog.stats()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import repro

    print("repro %s" % repro.__version__)
    print(
        "Reproduction of Koutroumanis & Doulkeridis, EDBT 2021.\n"
        "Subsystems: sfc (Hilbert/Z-order/GeoHash/Morton3), geo, docstore\n"
        "(B+tree, planner, matcher, aggregation), cluster (chunks,\n"
        "balancer, zones, router), core (approaches bslST/bslTS/hil/hil*,\n"
        "ST-Hash, trajectories, workload-aware zones), datagen (R/S),\n"
        "workloads (Q^s/Q^b)."
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "encode": _cmd_encode,
        "generate": _cmd_generate,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
