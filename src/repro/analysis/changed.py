"""Scope an analysis run to a change and its call-graph blast radius.

``--changed-only`` mode still parses and checks the whole tree — the
project checkers need every module to resolve the call graph — but
reports only findings in files the change can actually affect: the
files that differ from a git ref (default ``origin/main``), plus every
module that transitively *calls into* a changed module.  Callers are
the right closure direction: editing a callee can change the effects a
caller inlines (lock sets, fs-effect summaries), so the caller's
findings may appear or disappear even though its text did not move.

The scope is module-granular.  Symbol-level slicing would be tighter,
but fingerprints are per (rule, path, symbol, ordinal) and dropping
whole files keeps every surviving ordinal identical to the full run's,
so baselines match either way.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import CallGraph

__all__ = [
    "DEFAULT_REF",
    "ChangedFilesError",
    "changed_files",
    "dependent_modules",
]

DEFAULT_REF = "origin/main"


class ChangedFilesError(RuntimeError):
    """Raised when git cannot produce the changed-file list."""


def _git_lines(root: Path, argv: List[str]) -> List[str]:
    try:
        proc = subprocess.run(
            ["git", *argv],
            cwd=str(root),
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as exc:
        raise ChangedFilesError("git is not available: %s" % exc) from exc
    except subprocess.CalledProcessError as exc:
        raise ChangedFilesError(
            "git %s failed: %s" % (" ".join(argv), exc.stderr.strip())
        ) from exc
    return [line for line in proc.stdout.splitlines() if line]


def changed_files(root: str | Path, ref: str = DEFAULT_REF) -> List[str]:
    """Repo-relative posix paths that differ from ``ref``.

    Covers the working tree against the ref (staged and unstaged edits
    alike) plus untracked files git does not ignore — a new module is
    "changed" even before its first ``git add``.
    """
    root_path = Path(root)
    changed: Set[str] = set(
        _git_lines(root_path, ["diff", "--name-only", ref])
    )
    changed.update(
        _git_lines(
            root_path, ["ls-files", "--others", "--exclude-standard"]
        )
    )
    return sorted(changed)


def dependent_modules(
    changed: Iterable[str], callgraph: "CallGraph"
) -> Set[str]:
    """The changed paths plus their transitive reverse dependents.

    A module depends on another when any of its functions calls (or
    closes over, or spawns) a symbol defined there; the closure walks
    caller-ward from every changed path.  Paths the call graph never
    saw (tests, docs, deleted files) stay in the scope untouched — they
    simply have no dependents.
    """
    module_of: Dict[str, str] = {
        symbol: info.module.path
        for symbol, info in callgraph.functions.items()
    }
    callers_of: Dict[str, Set[str]] = {}
    for edge in callgraph.edges:
        caller = module_of.get(edge.caller)
        callee = module_of.get(edge.callee)
        if caller and callee and caller != callee:
            callers_of.setdefault(callee, set()).add(caller)
    scope: Set[str] = set(changed)
    frontier: List[str] = list(scope)
    while frontier:
        module = frontier.pop()
        for caller in callers_of.get(module, ()):
            if caller not in scope:
                scope.add(caller)
                frontier.append(caller)
    return scope
