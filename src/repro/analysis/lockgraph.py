"""Interprocedural lock-order analysis.

This is the layer the PR-2 checkers were missing: LD001/LD002 judge one
function at a time, while the bugs that actually bit the service cross
function boundaries — a read lock acquired in
``_read_lock_targeted_shards`` and released in ``_execute_read``, a
``Future.result()`` that blocks while locks taken three frames up are
still held.  The analysis here:

1. discovers every lock-like object in the project (a **lock
   registry**: ``threading.Lock``/``RLock``/``Condition``/
   ``Semaphore``/``ReadWriteLock`` attributes, class-level locks,
   function-local locks, and *collections* of locks such as
   ``self._shard_locks``), each with a stable dotted key;
2. simulates each function's statements in order, tracking the set of
   held locks through ``with`` blocks, bare ``acquire*``/``release*``
   calls, try/finally unwinds, and calls whose callees *escape* locks
   back to the caller (summaries are iterated to a fixpoint);
3. propagates held-lock sets across call edges — including closures
   passed as arguments and closures invoked through callee parameters
   (the ``_run_exclusive(lambda: ...)`` pattern), but **not** across
   executor/thread spawn edges, where a new thread starts with nothing
   held;
4. builds the **lock-order graph**: an edge ``A → B`` means some
   thread may acquire ``B`` while holding ``A``.  Acquiring several
   members of one lock collection inside a ``sorted(...)`` loop yields
   an *ordered* self-edge (internally ranked, deadlock-free); an
   unsorted loop yields an unordered self-edge, which is a cycle.

The graph and the accompanying blocking/escape records feed the LK001–
LK003 rules (:mod:`repro.analysis.checkers.lockorder`) and the runtime
sanitizer's cross-validation (:mod:`repro.sanitizer.crossval`): an edge
the sanitizer observes at runtime that this analysis cannot explain is
an analyzer blind spot and fails the run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    dotted_name,
    iter_classes,
    iter_functions,
    walk_within_function,
)
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    ResolvedCall,
    build_call_graph,
)
from repro.analysis.checker import ModuleInfo, iter_python_files, load_module

__all__ = [
    "BlockingRecord",
    "EdgeWitness",
    "EscapeRecord",
    "LockAnalysis",
    "LockEdge",
    "LockKey",
    "LockOrderGraph",
    "analyze_locks",
    "build_lock_order_graph",
]

#: A held lock: ``(key symbol, mode)`` where mode is read/write/lock.
Held = Tuple[str, str]

FACTORY_KINDS: Dict[str, str] = {
    "Lock": "mutex",
    "RLock": "rmutex",
    "Condition": "condition",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "ReadWriteLock": "rwlock",
    "SanitizedLock": "mutex",
    "SanitizedReadWriteLock": "rwlock",
}

ACQUIRE_MODES: Dict[str, str] = {
    "acquire": "lock",
    "acquire_read": "read",
    "acquire_write": "write",
}
RELEASE_MODES: Dict[str, str] = {
    "release": "lock",
    "release_read": "read",
    "release_write": "write",
}
WITH_CTX_MODES: Dict[str, str] = {
    "read_locked": "read",
    "write_locked": "write",
}
RELEASE_NAME_FOR_MODE: Dict[str, str] = {
    "lock": "release",
    "read": "release_read",
    "write": "release_write",
}


@dataclass(frozen=True)
class LockKey:
    """One lock-like object (or collection of them) in the project."""

    symbol: str
    kind: str  # mutex | rmutex | rwlock | condition | semaphore
    collection: bool = False


@dataclass(frozen=True)
class LockEdge:
    """``src`` held while ``dst`` acquired; ordered self-edges are the
    sorted-collection pattern and do not count as cycles."""

    src: str
    dst: str
    ordered: bool = False


@dataclass(frozen=True)
class EdgeWitness:
    """Where one lock-order edge was established."""

    path: str
    line: int
    symbol: str
    note: str = ""


class LockOrderGraph:
    """The project's lock-order digraph with per-edge witnesses."""

    def __init__(self) -> None:
        self.edges: Dict[LockEdge, EdgeWitness] = {}
        self.keys: Dict[str, LockKey] = {}

    def add_edge(self, edge: LockEdge, witness: EdgeWitness) -> None:
        """Record an edge, keeping the first witness seen."""
        self.edges.setdefault(edge, witness)

    def has_edge(
        self, src: str, dst: str, ordered: Optional[bool] = None
    ) -> bool:
        """Whether an edge exists (any orderedness unless specified)."""
        for edge in self.edges:
            if edge.src != src or edge.dst != dst:
                continue
            if ordered is None or edge.ordered == ordered:
                return True
        return False

    def cycles(
        self, restrict: Optional[Set[str]] = None
    ) -> List[List[str]]:
        """Lock-order cycles, each as a sorted list of key symbols.

        Ordered self-edges (sorted-collection acquisition) are not
        cycles; unordered self-edges are — unless the key is a
        re-entrant mutex (``threading.RLock``), where re-acquiring
        while held is the documented contract, not a deadlock.
        ``restrict`` limits the graph to the given keys (used by
        runtime cross-validation, which can only observe instrumented
        locks).
        """
        nodes: Set[str] = set()
        adjacency: Dict[str, Set[str]] = {}
        self_cycles: Set[str] = set()
        for edge in self.edges:
            if restrict is not None and (
                edge.src not in restrict or edge.dst not in restrict
            ):
                continue
            nodes.add(edge.src)
            nodes.add(edge.dst)
            if edge.src == edge.dst:
                key = self.keys.get(edge.src)
                reentrant = key is not None and key.kind == "rmutex"
                if not edge.ordered and not reentrant:
                    self_cycles.add(edge.src)
                continue
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        cycles = [[key] for key in sorted(self_cycles)]
        for scc in _strongly_connected(sorted(nodes), adjacency):
            if len(scc) > 1:
                cycles.append(sorted(scc))
        return cycles

    def witness(self, src: str, dst: str) -> Optional[EdgeWitness]:
        """The witness of the (preferably unordered) ``src → dst`` edge."""
        best: Optional[EdgeWitness] = None
        for edge, witness in sorted(
            self.edges.items(), key=lambda kv: (kv[0].src, kv[0].dst)
        ):
            if edge.src == src and edge.dst == dst:
                if not edge.ordered:
                    return witness
                best = best or witness
        return best

    def as_dict(self) -> dict:
        """JSON-ready form (used by the stress gate artifacts)."""
        return {
            "keys": [
                {
                    "symbol": key.symbol,
                    "kind": key.kind,
                    "collection": key.collection,
                }
                for key in sorted(
                    self.keys.values(), key=lambda k: k.symbol
                )
            ],
            "edges": [
                {
                    "src": edge.src,
                    "dst": edge.dst,
                    "ordered": edge.ordered,
                    "at": "%s:%d" % (witness.path, witness.line),
                    "symbol": witness.symbol,
                }
                for edge, witness in sorted(
                    self.edges.items(),
                    key=lambda kv: (kv[0].src, kv[0].dst, kv[0].ordered),
                )
            ],
            "cycles": self.cycles(),
        }


def _strongly_connected(
    nodes: Sequence[str], adjacency: Dict[str, Set[str]]
) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative and deterministic."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(adjacency.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return result


# -- lock registry -------------------------------------------------------------


class LockRegistry:
    """Every lock-like object in the module set, keyed by symbol."""

    def __init__(self) -> None:
        self.keys: Dict[str, LockKey] = {}
        self._by_name: Dict[str, List[str]] = {}

    def add(self, symbol: str, kind: str, collection: bool) -> None:
        if symbol in self.keys:
            return
        key = LockKey(symbol=symbol, kind=kind, collection=collection)
        self.keys[symbol] = key
        self._by_name.setdefault(symbol.rsplit(".", 1)[-1], []).append(
            symbol
        )

    def get(self, symbol: str) -> Optional[LockKey]:
        return self.keys.get(symbol)

    def candidates(self, bare_name: str) -> List[str]:
        """Key symbols whose attribute/variable name matches."""
        return sorted(self._by_name.get(bare_name, []))

    @classmethod
    def build(cls, modules: Sequence[ModuleInfo]) -> "LockRegistry":
        registry = cls()
        for module in modules:
            registry._scan_module(module)
        return registry

    def _scan_module(self, module: ModuleInfo) -> None:
        package = module.package
        class_quals: Dict[int, str] = {}
        for cls_qual, cls in iter_classes(module.tree):
            class_quals[id(cls)] = cls_qual
            for stmt in cls.body:
                self._scan_assign(
                    stmt, "%s.%s" % (package, cls_qual) if package else cls_qual
                )
        for qual, func, cls in iter_functions(module.tree):
            owner_class = (
                class_quals.get(id(cls)) if cls is not None else None
            )
            for node in walk_within_function(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                described = _lock_value(node.value)
                if described is None:
                    continue
                kind, collection = described
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in ("self", "cls")
                        and owner_class is not None
                    ):
                        owner = (
                            "%s.%s" % (package, owner_class)
                            if package
                            else owner_class
                        )
                        self.add(
                            "%s.%s" % (owner, target.attr), kind, collection
                        )
                    elif isinstance(target, ast.Name):
                        scope = "%s.%s" % (package, qual) if package else qual
                        self.add(
                            "%s.%s" % (scope, target.id), kind, collection
                        )
        for stmt in module.tree.body:
            self._scan_assign(stmt, package or "<module>")

    def _scan_assign(self, stmt: ast.stmt, owner: str) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        described = _lock_value(
            stmt.value if stmt.value is not None else None
        )
        if described is None:
            return
        kind, collection = described
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                self.add("%s.%s" % (owner, target.id), kind, collection)


def _lock_value(
    value: Optional[ast.expr],
) -> Optional[Tuple[str, bool]]:
    """``(kind, is_collection)`` when an expression builds lock(s)."""
    if value is None:
        return None
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            kind = FACTORY_KINDS.get(name.rsplit(".", 1)[-1])
            if kind is not None:
                return (kind, False)
    if isinstance(value, (ast.DictComp, ast.ListComp, ast.SetComp)):
        element = (
            value.value if isinstance(value, ast.DictComp) else value.elt
        )
        inner = _lock_value(element)
        if inner is not None:
            return (inner[0], True)
    return None


# -- per-function records ------------------------------------------------------


@dataclass(frozen=True)
class AcquireEvent:
    """One lock acquisition, with the locally held set before it."""

    keys: Tuple[str, ...]
    mode: str
    line: int
    col: int
    held: FrozenSet[Held]
    #: Acquisition of a collection member inside a loop (the loop
    #: repeats, so the acquisition orders against itself).
    looped: bool
    #: The loop iterates ``sorted(...)`` — internally ranked.
    loop_ordered: bool


@dataclass(frozen=True)
class BlockingEvent:
    """A potentially blocking call, with the locally held set."""

    desc: str
    line: int
    col: int
    bounded: bool
    receiver_keys: FrozenSet[str]
    held: FrozenSet[Held]


@dataclass(frozen=True)
class CallEvent:
    """A resolved call site, with held set and unwind protection."""

    resolved: ResolvedCall
    line: int
    col: int
    held: FrozenSet[Held]
    #: Release-method names reachable on the unwind path around this
    #: call (enclosing try finally/except, or the try that immediately
    #: follows the statement — the idiomatic acquire-then-try shape).
    protected_names: FrozenSet[str]


@dataclass
class FunctionLockSummary:
    """What one function does to locks, from its caller's viewpoint."""

    symbol: str
    #: Locks still held when the function returns normally.
    escapes: Set[Held] = field(default_factory=set)
    #: Caller-held locks the function releases (handoff helpers).
    releases_external: Set[Held] = field(default_factory=set)
    #: Parameter name → held set when the parameter is invoked.
    param_holds: Dict[str, Set[Held]] = field(default_factory=dict)
    acquires: List[AcquireEvent] = field(default_factory=list)
    blocking: List[BlockingEvent] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    #: Line of the first escaping acquisition, for messages.
    first_escape_line: int = 0

    def state(self) -> Tuple:
        """Comparable fixpoint state."""
        return (
            tuple(sorted(self.escapes)),
            tuple(sorted(self.releases_external)),
            tuple(
                (name, tuple(sorted(holds)))
                for name, holds in sorted(self.param_holds.items())
            ),
        )


@dataclass(frozen=True)
class BlockingRecord:
    """LK002 raw material: a blocking call executed under locks."""

    path: str
    line: int
    col: int
    symbol: str
    desc: str
    held_keys: Tuple[str, ...]


@dataclass(frozen=True)
class EscapeRecord:
    """LK003 raw material: an unprotected escaping-acquire call site."""

    path: str
    line: int
    col: int
    symbol: str
    callee: str
    keys: Tuple[str, ...]


@dataclass
class LockAnalysis:
    """Everything the LK rules and the sanitizer cross-check consume."""

    graph: LockOrderGraph
    registry: LockRegistry
    callgraph: CallGraph
    summaries: Dict[str, FunctionLockSummary]
    held_in: Dict[str, Set[Held]]
    blocking: List[BlockingRecord]
    unprotected_escapes: List[EscapeRecord]


# -- simulation ----------------------------------------------------------------


class _Simulator:
    """Simulates one function's lock behaviour in statement order."""

    def __init__(
        self,
        info: FunctionInfo,
        registry: LockRegistry,
        callgraph: CallGraph,
        summaries: Dict[str, FunctionLockSummary],
    ) -> None:
        self.info = info
        self.registry = registry
        self.callgraph = callgraph
        self.summaries = summaries
        self.summary = FunctionLockSummary(symbol=info.symbol)
        self.held: List[Held] = []
        self.locally_acquired: Set[Held] = set()
        self.var_keys: Dict[str, Set[str]] = {}
        self._ordered_loop_depth = 0
        self._unordered_loop_depth = 0
        self._protect_stack: List[Set[str]] = []
        self._finally_stack: List[List[Tuple[Set[str], str]]] = []
        self._followup_names: Set[str] = set()
        self._future_lists, self._future_vars = _future_evidence(info.node)

    # -- entry -----------------------------------------------------------------

    def run(self) -> FunctionLockSummary:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            self._process_expr(node.body)
        else:
            self._visit_block(node.body)
        self._record_escape()
        return self.summary

    # -- held-set helpers ------------------------------------------------------

    def _held_frozen(self) -> FrozenSet[Held]:
        return frozenset(self.held)

    def _add_held(self, keys: Sequence[str], mode: str) -> List[Held]:
        added = []
        for key in keys:
            held = (key, mode)
            self.held.append(held)
            self.locally_acquired.add(held)
            added.append(held)
        return added

    def _remove_held(self, key: str, mode: str) -> bool:
        held = (key, mode)
        if held in self.held:
            self.held.remove(held)
            return True
        return False

    def _record_escape(self, line: int = 0) -> None:
        escaping = {
            held for held in self.held if held in self.locally_acquired
        }
        for releases in self._finally_stack:
            for keys, mode in releases:
                escaping = {
                    held
                    for held in escaping
                    if not (held[0] in keys and held[1] == mode)
                }
        if escaping and not self.summary.escapes:
            self.summary.first_escape_line = line
        self.summary.escapes |= escaping

    # -- statement walk --------------------------------------------------------

    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        for position, stmt in enumerate(stmts):
            following = stmts[position + 1 : position + 2]
            self._followup_names = (
                _unwind_release_names(following[0])
                if following and isinstance(following[0], ast.Try)
                else set()
            )
            self._visit_stmt(stmt)
        self._followup_names = set()

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.While):
            self._process_expr(stmt.test)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._process_expr(stmt.value)
            self._record_escape(stmt.lineno)
        elif isinstance(stmt, ast.Assign):
            self._process_expr(stmt.value)
            self._propagate_assign(stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                self._process_expr(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._process_expr(child)

    def _visit_with(self, stmt) -> None:
        guards: List[Held] = []
        for item in stmt.items:
            guard = self._with_guard(item.context_expr)
            if guard is None:
                self._process_expr(item.context_expr)
                continue
            keys, mode = guard
            self._emit_acquire(
                keys,
                mode,
                item.context_expr.lineno,
                item.context_expr.col_offset,
            )
            guards.extend(self._add_held(keys, mode))
        if guards:
            release = [
                ({key}, mode) for key, mode in guards
            ]
            self._finally_stack.append(release)
        try:
            self._visit_block(stmt.body)
        finally:
            if guards:
                self._finally_stack.pop()
            for key, mode in guards:
                self._remove_held(key, mode)

    def _with_guard(
        self, expr: ast.expr
    ) -> Optional[Tuple[List[str], str]]:
        """``(keys, mode)`` when a with-item guards a known lock."""
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            mode = WITH_CTX_MODES.get(expr.func.attr)
            if mode is not None:
                keys = self._keys_for_expr(expr.func.value)
                if keys:
                    return (keys, mode)
                return ([self._synthetic_key(expr.func.value)], mode)
        keys = self._keys_for_expr(expr)
        if keys:
            key = self.registry.get(keys[0])
            mode = "lock"
            if key is not None and key.kind == "rwlock":
                mode = "write"
            return (keys, mode)
        return None

    def _visit_for(self, stmt) -> None:
        self._process_expr(stmt.iter)
        ordered = any(
            isinstance(sub, ast.Name) and sub.id == "sorted"
            for sub in ast.walk(stmt.iter)
        )
        # Loop targets iterating a variable that holds lock objects
        # (the ``for lock in acquired`` release pattern) carry keys.
        source_keys = self._iter_source_keys(stmt.iter)
        if source_keys:
            for name in _target_names(stmt.target):
                self.var_keys[name] = set(source_keys)
        if ordered:
            self._ordered_loop_depth += 1
        else:
            self._unordered_loop_depth += 1
        try:
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        finally:
            if ordered:
                self._ordered_loop_depth -= 1
            else:
                self._unordered_loop_depth -= 1

    def _iter_source_keys(self, expr: ast.expr) -> Set[str]:
        inner = expr
        while (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Name)
            and inner.func.id in ("sorted", "reversed", "list", "iter")
            and inner.args
        ):
            inner = inner.args[0]
        if isinstance(inner, ast.Name):
            return set(self.var_keys.get(inner.id, set()))
        return set()

    def _visit_if(self, stmt: ast.If) -> None:
        before_test = list(self.held)
        self._process_expr(stmt.test)
        test_acquired = [h for h in self.held if h not in before_test]
        with_test = list(self.held)
        self._visit_block(stmt.body)
        body_exit = list(self.held)
        # The else-branch runs when a boolean acquire in the test
        # failed, so it starts without the test's acquisitions.
        self.held = [h for h in with_test if h not in test_acquired]
        self._visit_block(stmt.orelse)
        orelse_exit = list(self.held)
        merged = list(body_exit)
        for held in orelse_exit:
            if merged.count(held) < orelse_exit.count(held):
                merged.append(held)
        self.held = merged

    def _visit_try(self, stmt: ast.Try) -> None:
        self._protect_stack.append(_unwind_release_names(stmt))
        finally_releases = self._finally_release_effects(stmt)
        if finally_releases:
            self._finally_stack.append(finally_releases)
        try:
            self._visit_block(stmt.body)
        finally:
            if finally_releases:
                self._finally_stack.pop()
            self._protect_stack.pop()
        after_body = list(self.held)
        exits: List[List[Held]] = []
        for handler in stmt.handlers:
            self.held = list(after_body)
            self._visit_block(handler.body)
            if not _terminates(handler.body):
                exits.append(list(self.held))
        self.held = list(after_body)
        self._visit_block(stmt.orelse)
        exits.append(list(self.held))
        merged: List[Held] = []
        for branch in exits:
            for held in branch:
                if merged.count(held) < branch.count(held):
                    merged.append(held)
        self.held = merged
        self._visit_block(stmt.finalbody)

    def _finally_release_effects(
        self, stmt: ast.Try
    ) -> List[Tuple[Set[str], str]]:
        effects: List[Tuple[Set[str], str]] = []
        for node in stmt.finalbody:
            for sub in ast.walk(node):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in RELEASE_MODES
                ):
                    continue
                keys = self._keys_for_expr(sub.func.value)
                if keys:
                    effects.append(
                        (set(keys), RELEASE_MODES[sub.func.attr])
                    )
        return effects

    def _propagate_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        keys: Set[str] = set()
        value = stmt.value
        if isinstance(value, ast.Call):
            resolved = self.callgraph.resolved.get(id(value))
            if resolved is not None:
                for callee in resolved.callees:
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is not None:
                        keys |= {k for k, _m in callee_summary.escapes}
        else:
            keys |= set(self._keys_for_expr(value))
        if not keys:
            return
        for name in _target_names(target):
            self.var_keys[name] = keys

    # -- expression / call handling --------------------------------------------

    def _process_expr(self, expr: ast.expr) -> None:
        calls = [
            node
            for node in _walk_expr(expr)
            if isinstance(node, ast.Call)
        ]
        for call in sorted(
            calls, key=lambda c: (c.lineno, c.col_offset)
        ):
            self._handle_call(call)

    def _handle_call(self, call: ast.Call) -> None:
        func = call.func
        own_name = _function_name(self.info.node)
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in ACQUIRE_MODES and method != own_name:
                keys = self._keys_for_expr(func.value)
                if not keys:
                    keys = [self._synthetic_key(func.value)]
                self._emit_acquire(
                    keys,
                    ACQUIRE_MODES[method],
                    call.lineno,
                    call.col_offset,
                )
                self._add_held(keys, ACQUIRE_MODES[method])
                return
            if method in RELEASE_MODES and method != own_name:
                keys = self._keys_for_expr(func.value)
                if not keys:
                    keys = [self._synthetic_key(func.value)]
                mode = RELEASE_MODES[method]
                for key in keys:
                    if not self._remove_held(key, mode):
                        self.summary.releases_external.add((key, mode))
                return
            if method == "append" and isinstance(func.value, ast.Name):
                gathered: Set[str] = set()
                for arg in call.args:
                    for sub in ast.walk(arg):
                        gathered |= set(self._keys_for_expr(sub))
                if gathered:
                    existing = self.var_keys.setdefault(
                        func.value.id, set()
                    )
                    existing |= gathered
                return
        if self._handle_blocking(call):
            return
        if (
            isinstance(func, ast.Name)
            and func.id in self.info.params
            and func.id not in self.var_keys
        ):
            holds = self.summary.param_holds.setdefault(func.id, set())
            holds |= set(self.held)
            return
        resolved = self.callgraph.resolved.get(id(call))
        if resolved is None:
            return
        protected = set(self._followup_names)
        for names in self._protect_stack:
            protected |= names
        self.summary.calls.append(
            CallEvent(
                resolved=resolved,
                line=call.lineno,
                col=call.col_offset,
                held=self._held_frozen(),
                protected_names=frozenset(protected),
            )
        )
        # Synchronous callees may escape locks into this frame or
        # release locks this frame holds.
        for callee in resolved.callees:
            callee_summary = self.summaries.get(callee)
            if callee_summary is None:
                continue
            for key, mode in sorted(callee_summary.escapes):
                self._add_held([key], mode)
            for key, mode in sorted(callee_summary.releases_external):
                self._remove_held(key, mode)
        # A spawned task that releases locks this frame holds is a
        # handoff (the open-loop generator's semaphore pattern).
        for spawned in resolved.spawn_args:
            spawn_summary = self.summaries.get(spawned)
            if spawn_summary is None:
                continue
            for key, mode in sorted(spawn_summary.releases_external):
                self._remove_held(key, mode)

    def _handle_blocking(self, call: ast.Call) -> bool:
        func = call.func
        timeout_kw = any(kw.arg == "timeout" for kw in call.keywords)
        name = dotted_name(func)
        if name in ("time.sleep", "sleep"):
            self._emit_blocking(
                "time.sleep()",
                call,
                bounded=False,
                receiver_keys=frozenset(),
            )
            return True
        if name in ("wait", "futures.wait", "concurrent.futures.wait"):
            if not timeout_kw and len(call.args) < 2:
                self._emit_blocking(
                    "futures.wait() with no timeout",
                    call,
                    bounded=False,
                    receiver_keys=frozenset(),
                )
                return True
            return False
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method == "result" and not call.args and not timeout_kw:
                if self._is_future_receiver(func.value):
                    self._emit_blocking(
                        "Future.result() with no timeout",
                        call,
                        bounded=False,
                        receiver_keys=frozenset(),
                    )
                    return True
                return False
            if method in ("wait", "wait_for"):
                receiver_keys = frozenset(
                    self._keys_for_expr(func.value)
                )
                condition_like = any(
                    (key := self.registry.get(symbol)) is not None
                    and key.kind == "condition"
                    for symbol in receiver_keys
                )
                if not condition_like:
                    return False
                bounded = timeout_kw or (
                    method == "wait_for" and len(call.args) >= 2
                ) or (method == "wait" and len(call.args) >= 1)
                self._emit_blocking(
                    "Condition.%s()" % method,
                    call,
                    bounded=bounded,
                    receiver_keys=receiver_keys,
                )
                return True
            if (
                method == "join"
                and not call.args
                and not timeout_kw
                and not isinstance(func.value, ast.Constant)
            ):
                self._emit_blocking(
                    "join() with no timeout",
                    call,
                    bounded=False,
                    receiver_keys=frozenset(),
                )
                return True
        return False

    def _is_future_receiver(self, receiver: ast.expr) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in self._future_vars
        if isinstance(receiver, ast.Subscript) and isinstance(
            receiver.value, ast.Name
        ):
            return receiver.value.id in self._future_lists
        return (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Attribute)
            and receiver.func.attr == "submit"
        )

    def _emit_acquire(
        self, keys: Sequence[str], mode: str, line: int, col: int
    ) -> None:
        in_loop = (
            self._ordered_loop_depth > 0
            or self._unordered_loop_depth > 0
        )
        collection_member = any(
            (key := self.registry.get(symbol)) is not None
            and key.collection
            for symbol in keys
        )
        self.summary.acquires.append(
            AcquireEvent(
                keys=tuple(keys),
                mode=mode,
                line=line,
                col=col,
                held=self._held_frozen(),
                looped=in_loop and collection_member,
                loop_ordered=self._ordered_loop_depth > 0,
            )
        )

    def _emit_blocking(
        self,
        desc: str,
        call: ast.Call,
        bounded: bool,
        receiver_keys: FrozenSet[str],
    ) -> None:
        self.summary.blocking.append(
            BlockingEvent(
                desc=desc,
                line=call.lineno,
                col=call.col_offset,
                bounded=bounded,
                receiver_keys=receiver_keys,
                held=self._held_frozen(),
            )
        )

    # -- key resolution --------------------------------------------------------

    def _keys_for_expr(self, expr: ast.expr) -> List[str]:
        if isinstance(expr, ast.Subscript):
            base_keys = self._keys_for_expr(expr.value)
            return [
                symbol
                for symbol in base_keys
                if (key := self.registry.get(symbol)) is not None
                and key.collection
            ]
        if isinstance(expr, ast.Attribute):
            resolver = self.callgraph.resolvers.get(self.info.symbol)
            if resolver is not None:
                receiver = resolver.receiver_class(expr.value)
                if receiver is not None:
                    symbol = "%s.%s" % (receiver, expr.attr)
                    if symbol in self.registry.keys:
                        return [symbol]
            dotted = dotted_name(expr)
            if dotted is not None:
                suffix = "." + dotted
                matches = sorted(
                    symbol
                    for symbol in self.registry.keys
                    if symbol.endswith(suffix)
                )
                if matches:
                    return matches
            return self._candidates_for_name(expr.attr)
        if isinstance(expr, ast.Name):
            if expr.id in self.var_keys:
                return sorted(self.var_keys[expr.id])
            return self._candidates_for_name(expr.id)
        return []

    def _candidates_for_name(self, name: str) -> List[str]:
        candidates = self.registry.candidates(name)
        if len(candidates) <= 1:
            return candidates
        if self.info.class_symbol is not None:
            scoped = [
                symbol
                for symbol in candidates
                if symbol == "%s.%s" % (self.info.class_symbol, name)
            ]
            if scoped:
                return scoped
        return candidates

    def _synthetic_key(self, expr: ast.expr) -> str:
        name = dotted_name(expr) or "<expr>"
        symbol = "%s.<%s>" % (self.info.module.package, name)
        self.registry.add(symbol, "mutex", False)
        return symbol


def _walk_expr(expr: ast.expr) -> List[ast.AST]:
    """Expression descendants, not descending into lambdas."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _function_name(node: ast.AST) -> str:
    return getattr(node, "name", "<lambda>")


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Raise, ast.Return, ast.Continue, ast.Break)
    )


def _unwind_release_names(stmt: ast.stmt) -> Set[str]:
    """Release-method names in a try's finally/except bodies."""
    if not isinstance(stmt, ast.Try):
        return set()
    names: Set[str] = set()
    unwind = list(stmt.finalbody)
    for handler in stmt.handlers:
        unwind.extend(handler.body)
    for node in unwind:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in RELEASE_MODES
            ):
                names.add(sub.func.attr)
    return names


def _future_evidence(node: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Names bound to futures / lists of futures in one scope."""
    future_lists: Set[str] = set()
    future_vars: Set[str] = set()

    def is_submit(value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "submit"
        )

    if isinstance(node, ast.Lambda):
        return future_lists, future_vars
    for sub in walk_within_function(node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = sub.value
            if is_submit(value):
                future_vars.add(target.id)
            elif isinstance(value, ast.ListComp) and is_submit(value.elt):
                future_lists.add(target.id)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.For, ast.comprehension)):
            iter_expr = sub.iter
            target = sub.target
            if (
                isinstance(iter_expr, ast.Name)
                and iter_expr.id in future_lists
                and isinstance(target, ast.Name)
            ):
                future_vars.add(target.id)
        elif isinstance(
            sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            for gen in sub.generators:
                if (
                    isinstance(gen.iter, ast.Name)
                    and gen.iter.id in future_lists
                    and isinstance(gen.target, ast.Name)
                ):
                    future_vars.add(gen.target.id)
    return future_lists, future_vars


# -- whole-project analysis ----------------------------------------------------

_FIXPOINT_LIMIT = 12


def analyze_locks(modules: Sequence[ModuleInfo]) -> LockAnalysis:
    """Run the full interprocedural lock analysis over the modules."""
    registry = LockRegistry.build(modules)
    callgraph = build_call_graph(modules)
    summaries: Dict[str, FunctionLockSummary] = {}
    # Phase 1: iterate local summaries to a fixpoint so escaping
    # acquisitions and external releases flow through call chains.
    for _round in range(_FIXPOINT_LIMIT):
        changed = False
        for symbol in sorted(callgraph.functions):
            info = callgraph.functions[symbol]
            summary = _Simulator(
                info, registry, callgraph, summaries
            ).run()
            previous = summaries.get(symbol)
            if previous is None or previous.state() != summary.state():
                changed = True
            summaries[symbol] = summary
        if not changed:
            break
    # Phase 2: propagate held-at-entry sets over call edges.
    held_in: Dict[str, Set[Held]] = {
        symbol: set() for symbol in callgraph.functions
    }
    for _round in range(_FIXPOINT_LIMIT * 4):
        changed = False
        for symbol in sorted(callgraph.functions):
            summary = summaries[symbol]
            base_extra = held_in[symbol]
            for event in summary.calls:
                flowing = set(event.held) | base_extra
                for callee in event.resolved.callees:
                    if callee in held_in and not flowing <= held_in[callee]:
                        held_in[callee] |= flowing
                        changed = True
                for closure in event.resolved.closure_args:
                    if (
                        closure in held_in
                        and not flowing <= held_in[closure]
                    ):
                        held_in[closure] |= flowing
                        changed = True
                for param, closure in event.resolved.param_binds:
                    if closure not in held_in:
                        continue
                    extra = set(flowing)
                    for callee in event.resolved.callees:
                        callee_summary = summaries.get(callee)
                        if callee_summary is not None:
                            extra |= callee_summary.param_holds.get(
                                param, set()
                            )
                        if callee in held_in:
                            extra |= held_in[callee]
                    if not extra <= held_in[closure]:
                        held_in[closure] |= extra
                        changed = True
        if not changed:
            break
    # Phase 3: emit the lock-order graph, blocking records, and
    # unprotected-escape records.
    graph = LockOrderGraph()
    graph.keys = dict(registry.keys)
    blocking: List[BlockingRecord] = []
    for symbol in sorted(callgraph.functions):
        info = callgraph.functions[symbol]
        summary = summaries[symbol]
        ambient = held_in[symbol]
        for event in summary.acquires:
            effective_held = set(event.held) | ambient
            for target in event.keys:
                witness = EdgeWitness(
                    path=info.module.path,
                    line=event.line,
                    symbol=info.qual,
                    note="%s-mode acquisition" % event.mode,
                )
                for source, _mode in sorted(effective_held):
                    if source == target:
                        graph.add_edge(
                            LockEdge(source, target, ordered=False),
                            witness,
                        )
                    else:
                        graph.add_edge(
                            LockEdge(source, target, ordered=False),
                            witness,
                        )
                if event.looped:
                    graph.add_edge(
                        LockEdge(
                            target, target, ordered=event.loop_ordered
                        ),
                        witness,
                    )
        for blocked in summary.blocking:
            if blocked.bounded:
                continue
            effective = {
                key
                for key, _mode in (set(blocked.held) | ambient)
                if key not in blocked.receiver_keys
            }
            if not effective:
                continue
            blocking.append(
                BlockingRecord(
                    path=info.module.path,
                    line=blocked.line,
                    col=blocked.col,
                    symbol=info.qual,
                    desc=blocked.desc,
                    held_keys=tuple(sorted(effective)),
                )
            )
    escapes = _unprotected_escapes(callgraph, summaries)
    return LockAnalysis(
        graph=graph,
        registry=registry,
        callgraph=callgraph,
        summaries=summaries,
        held_in=held_in,
        blocking=blocking,
        unprotected_escapes=escapes,
    )


def _unprotected_escapes(
    callgraph: CallGraph,
    summaries: Dict[str, FunctionLockSummary],
) -> List[EscapeRecord]:
    records: List[EscapeRecord] = []
    for symbol in sorted(callgraph.functions):
        info = callgraph.functions[symbol]
        summary = summaries[symbol]
        for event in summary.calls:
            for callee in event.resolved.callees:
                callee_summary = summaries.get(callee)
                if callee_summary is None or not callee_summary.escapes:
                    continue
                needed = {
                    RELEASE_NAME_FOR_MODE[mode]
                    for _key, mode in callee_summary.escapes
                }
                if needed <= set(event.protected_names):
                    continue
                # Delegation: the caller itself escapes these locks,
                # so its own call sites carry the obligation.
                if callee_summary.escapes <= summary.escapes:
                    continue
                records.append(
                    EscapeRecord(
                        path=info.module.path,
                        line=event.line,
                        col=event.col,
                        symbol=info.qual,
                        callee=callee,
                        keys=tuple(
                            sorted(
                                key
                                for key, _mode in callee_summary.escapes
                            )
                        ),
                    )
                )
    return records


def build_lock_order_graph(
    paths: Sequence[str], root: str | Path = "."
) -> LockOrderGraph:
    """Parse the given paths and return their lock-order graph.

    This is the static half of runtime cross-validation: the sanitizer
    compares the edges it observed against this graph.
    """
    root_path = Path(root).resolve()
    modules: List[ModuleInfo] = []
    for path in iter_python_files(paths, root_path):
        loaded = load_module(path, root_path)
        if isinstance(loaded, ModuleInfo):
            modules.append(loaded)
    return analyze_locks(modules).graph
