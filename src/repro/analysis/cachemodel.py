"""Static dataflow over cache-coherence effects (the stale-cache model).

PR 4 grew a web of derived-state caches — the plan cache, the
targeting cache, the Hilbert range-decomposition memo — each kept
coherent with its source of truth by a *version token*: a monotonic
counter (``metadata_version``, the storage epoch) bumped on every
mutation of the state the cached values derive from.  A missing bump,
a key built from the wrong version, or a bump published before the
mutation it covers does not crash: it silently serves wrong query
results.  This module extracts the vocabulary those bugs are made of,
so the CC checkers (:mod:`repro.analysis.checkers.cachecoherence`) can
judge orderings the same way the FS rules judge the write path.

The model discovers three kinds of declaration:

* **version tokens** — a ``self`` attribute whose name mentions
  ``version``/``epoch``/``generation`` and that some method bumps with
  an augmented assignment (``self.metadata_version += 1``); the
  methods containing the bump are its *bump methods*;
* **cache classes** — a class whose name contains ``cache`` holding a
  dict-like store attribute with a read method (``get``-then-return),
  a fill method (subscript assignment), and optionally invalidation
  methods (``del``/``clear``/``pop`` on the store).  A method that is
  both read and fill marks the cache *pure-memo* (keys capture the
  full input, like the range LRU); a read method that compares the
  entry against other instance state is *stamp-validated* (the plan
  cache's write-volume rule);
* **key builders** — module-level functions with a version-named
  parameter flowing into their return value
  (:func:`repro.cluster.router.targeting_cache_key`).

Per function, the model records an ordered :class:`CacheEffect`
sequence — cache ``read``/``fill``/``invalidate`` operations with
their key classification, version ``bump``\\ s, explicit version
``vcheck`` comparisons, ``mutate``\\ s of instance state, and resolved
``call`` markers the inliner expands through the PR-3 call graph.
Effects in ``except`` handlers are failure-path compensations;
effects in ``finally`` blocks are unwind-safe and recorded as such,
because "the bump runs even when the mutation's tail throws" is
exactly the property CC003 demands.

Which mutations matter is not hard-coded: a field is *governed* by a
token when functions that fill caches (or their callees) read it and
functions adjacent to the token's bump mutate it.  The intersection is
small and precise — for ``metadata_version`` it is the chunk list and
chunk placement, not the statistics counters riding alongside.

Like the rest of ``repro.analysis`` this is deliberately heuristic
and source-ordered; the runtime epoch tracer
(:mod:`repro.sanitizer.cachetrace`) cross-validates what the
approximation misses.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.astutil import (
    collect_lock_attrs,
    dotted_name,
    walk_within_function,
)
from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.checker import ModuleInfo

__all__ = [
    "CacheClassInfo",
    "CacheEffect",
    "CacheFunctionSummary",
    "CacheModel",
    "VersionToken",
    "build_cache_model",
]

#: Attribute / parameter names that look like a version token.
TOKEN_RE = re.compile(r"version|epoch|generation", re.IGNORECASE)

#: Constructor expressions that make an attribute a dict-like store.
_STORE_FACTORIES = {"dict", "OrderedDict", "collections.OrderedDict"}

#: Container methods that mutate in place (feed ``mutate`` effects).
_MUTATING_CONTAINER_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "clear",
}


@dataclass(frozen=True)
class CacheEffect:
    """One cache-coherence effect (or resolved call site) in order."""

    #: ``read`` / ``fill`` / ``invalidate`` / ``bump`` / ``vcheck`` /
    #: ``mutate`` / ``call``.
    kind: str
    #: Cache class name, token key, mutated field, or callee text.
    target: str
    line: int
    col: int
    #: Inside an ``except`` handler (failure-path compensation).
    in_handler: bool = False
    #: Inside a ``finally`` block — runs on unwind too.
    in_finally: bool = False
    #: Kind-specific detail: ``bump`` token key, ``mutate`` owner text
    #: (``"fresh"`` for mutation of a just-constructed local), ``call``
    #: callee symbols (comma-joined).
    detail: str = ""
    #: Spliced in from a callee by :meth:`CacheModel.inlined_effects`.
    inlined: bool = False
    #: Lock attribute whose ``with self.X:`` encloses the effect.
    under_lock: str = ""
    #: Splice depth: 0 in the function itself, +1 per inlining level.
    depth: int = 0
    #: Symbol of the function the effect was extracted from.
    origin: str = ""
    #: For ``read``/``fill``: whether the key expression carries a
    #: version token, and where it came from (``"param"`` or
    #: ``"attr:<line>"`` of the ``v = self.token`` capture).
    keyed: bool = False
    key_source: str = ""


@dataclass
class VersionToken:
    """One discovered version counter and its bump sites."""

    #: ``ClassName.attr`` (or ``module.attr`` for globals).
    key: str
    attr: str
    class_symbol: Optional[str]
    #: Function symbols containing the ``+=`` bump.
    bump_methods: Set[str] = field(default_factory=set)
    #: Fields whose mutation this token governs (computed late).
    governed_fields: Set[str] = field(default_factory=set)


@dataclass
class CacheClassInfo:
    """One discovered cache class and its classified methods."""

    #: Bare class name (``PlanCache``).
    name: str
    class_symbol: str
    #: Dict-like store attribute names.
    store_attrs: Set[str] = field(default_factory=set)
    #: Method name → role sets.
    read_methods: Set[str] = field(default_factory=set)
    fill_methods: Set[str] = field(default_factory=set)
    invalidate_methods: Set[str] = field(default_factory=set)
    #: One method is both read and fill: keys capture the full input.
    pure_memo: bool = False
    #: A read method validates the entry against other instance state.
    stamp_validated: bool = False
    #: The instance attributes the stamp validation consults.
    stamp_source_attrs: Set[str] = field(default_factory=set)
    #: Methods that feed the stamp sources (``note_writes``).
    stamp_feeder_methods: Set[str] = field(default_factory=set)


@dataclass
class CacheFunctionSummary:
    """Everything the CC rules need to know about one function."""

    symbol: str
    info: FunctionInfo
    effects: List[CacheEffect] = field(default_factory=list)
    #: Every attribute load (self or not): ``(attr, line)``.
    field_reads: List[Tuple[str, int]] = field(default_factory=list)
    #: Locals derived from one shard's state but referenced inside a
    #: nested function or lambda (the cross-shard sharing shape).
    shared_shard_derived: List[Tuple[str, int]] = field(
        default_factory=list
    )


class CacheModel:
    """The project-wide cache-coherence model."""

    def __init__(
        self,
        summaries: Dict[str, CacheFunctionSummary],
        tokens: Dict[str, VersionToken],
        caches: Dict[str, CacheClassInfo],
        callgraph: CallGraph,
    ) -> None:
        self.summaries = summaries
        self.tokens = tokens
        self.caches = caches
        self.callgraph = callgraph
        #: Field name → keys of tokens governing it.
        self.governing_tokens: Dict[str, Set[str]] = {}
        for token in tokens.values():
            for fname in token.governed_fields:
                self.governing_tokens.setdefault(fname, set()).add(
                    token.key
                )

    def inlined_effects(
        self, symbol: str, depth: int = 3
    ) -> List[CacheEffect]:
        """The function's effect sequence with resolved calls expanded.

        ``call`` effects whose callee has a summary are replaced by the
        callee's own (recursively inlined) effects, spliced at the call
        position.  Cycles and unknown callees keep the call marker —
        load-bearing for the unwind-window rule, which needs to know a
        *call* (a potential raise) sits between a mutation and its
        bump.
        """
        return self._inline(symbol, depth, frozenset((symbol,)))

    def _inline(
        self, symbol: str, depth: int, seen: FrozenSet[str]
    ) -> List[CacheEffect]:
        summary = self.summaries.get(symbol)
        if summary is None:
            return []
        out: List[CacheEffect] = []
        for effect in summary.effects:
            if effect.kind != "call" or depth <= 0:
                out.append(effect)
                continue
            spliced = False
            for callee in effect.detail.split(","):
                if not callee or callee in seen:
                    continue
                inner = self._inline(callee, depth - 1, seen | {callee})
                for inner_effect in inner:
                    out.append(
                        CacheEffect(
                            kind=inner_effect.kind,
                            target=inner_effect.target,
                            line=effect.line,
                            col=effect.col,
                            in_handler=(
                                effect.in_handler
                                or inner_effect.in_handler
                            ),
                            in_finally=(
                                effect.in_finally
                                or inner_effect.in_finally
                            ),
                            detail=inner_effect.detail,
                            inlined=True,
                            under_lock=effect.under_lock,
                            depth=inner_effect.depth + 1,
                            origin=inner_effect.origin,
                            keyed=inner_effect.keyed,
                            key_source=inner_effect.key_source,
                        )
                    )
                    spliced = True
            if not spliced:
                out.append(effect)
        return out

    def callers_of(self, symbol: str) -> List[str]:
        """Distinct caller symbols with a summary, via call effects."""
        out: Set[str] = set()
        for caller, summary in self.summaries.items():
            for effect in summary.effects:
                if effect.kind != "call":
                    continue
                if symbol in effect.detail.split(","):
                    out.add(caller)
                    break
        return sorted(out)


# -- declaration discovery ---------------------------------------------------


def _is_store_factory(value: ast.expr) -> bool:
    """``OrderedDict()`` / ``dict()`` / ``{}`` — a dict-like store."""
    if isinstance(value, ast.Dict):
        return not value.keys
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name in _STORE_FACTORIES
    return False


def _method_defs(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [
        item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    ]


def _store_get_locals(
    func: ast.FunctionDef, stores: Set[str]
) -> Set[str]:
    """Locals assigned from ``self.<store>.get(...)``."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and isinstance(value.func.value, ast.Attribute)
            and isinstance(value.func.value.value, ast.Name)
            and value.func.value.value.id == "self"
            and value.func.value.attr in stores
        ):
            out.add(node.targets[0].id)
    return out


def _returns_name(func: ast.FunctionDef, names: Set[str]) -> bool:
    """Whether any return value mentions one of ``names``.

    Attribute access on the name counts (``return entry.index_name``),
    which is what distinguishes a read method from bookkeeping that
    merely compares the got value.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id in names:
                    return True
    return False


def _returns_store_get(
    func: ast.FunctionDef, stores: Set[str]
) -> bool:
    """``return self.<store>.get(...)`` directly."""
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Return) and node.value is not None
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and isinstance(value.func.value, ast.Attribute)
            and isinstance(value.func.value.value, ast.Name)
            and value.func.value.value.id == "self"
            and value.func.value.attr in stores
        ):
            return True
    return False


def _fills_store(func: ast.FunctionDef, stores: Set[str]) -> bool:
    """``self.<store>[key] = value`` anywhere in the method."""
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
                and target.value.attr in stores
            ):
                return True
    return False


def _invalidates_store(
    func: ast.FunctionDef, stores: Set[str]
) -> bool:
    """``del``/``clear``/``pop``/``popitem`` on a store attribute."""
    for node in ast.walk(func):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                    and target.value.attr in stores
                ):
                    return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("clear", "pop", "popitem")
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
            and node.func.value.attr in stores
        ):
            return True
    return False


def _stamp_sources(
    func: ast.FunctionDef, got_locals: Set[str]
) -> Set[str]:
    """Instance attrs a read method compares the got entry against.

    The plan cache's shape: ``written - entry.writes_at_creation >=
    self.write_invalidation_threshold`` — a Compare whose subtree
    touches both the entry local (via attribute access) and other
    ``self`` state (directly or through a tainted local).
    """
    # Locals assigned from a self attribute (``written = self._writes
    # .get(...)`` taints ``written`` with ``_writes``).
    tainted: Dict[str, str] = {}
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            continue
        for sub in ast.walk(node.value):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                tainted[node.targets[0].id] = sub.attr
                break
    sources: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        touches_entry = False
        compared: Set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in got_locals
            ):
                touches_entry = True
            elif (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                compared.add(sub.attr)
            elif isinstance(sub, ast.Name) and sub.id in tainted:
                compared.add(tainted[sub.id])
        if touches_entry and compared:
            sources |= compared
    return sources


def _feeds_attrs(func: ast.FunctionDef, attrs: Set[str]) -> bool:
    """Assign/subscript/augassign of one of ``attrs`` on ``self``."""
    for node in ast.walk(func):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in attrs
            ):
                return True
    return False


def _discover_cache_classes(
    modules: Sequence[ModuleInfo], graph: CallGraph
) -> Dict[str, CacheClassInfo]:
    """Cache classes by class symbol."""
    caches: Dict[str, CacheClassInfo] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "cache" not in node.name.lower():
                continue
            methods = _method_defs(node)
            init = next(
                (m for m in methods if m.name == "__init__"), None
            )
            if init is None:
                continue
            stores: Set[str] = set()
            for stmt in ast.walk(init):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                if value is None or not _is_store_factory(value):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        stores.add(target.attr)
            if not stores:
                continue
            info = CacheClassInfo(
                name=node.name,
                class_symbol=_class_symbol(module, node),
            )
            info.store_attrs = stores
            for method in methods:
                if method.name == "__init__":
                    continue
                got = _store_get_locals(method, stores)
                is_read = _returns_store_get(method, stores) or (
                    bool(got) and _returns_name(method, got)
                )
                is_fill = _fills_store(method, stores)
                if is_read:
                    info.read_methods.add(method.name)
                    sources = _stamp_sources(method, got)
                    if sources:
                        info.stamp_validated = True
                        info.stamp_source_attrs |= sources
                if is_fill:
                    info.fill_methods.add(method.name)
                if is_read and is_fill:
                    info.pure_memo = True
            for method in methods:
                if method.name == "__init__":
                    continue
                if (
                    method.name not in info.read_methods
                    and method.name not in info.fill_methods
                    and _invalidates_store(method, stores)
                ):
                    info.invalidate_methods.add(method.name)
                if info.stamp_source_attrs and _feeds_attrs(
                    method, info.stamp_source_attrs
                ):
                    if method.name not in info.read_methods:
                        info.stamp_feeder_methods.add(method.name)
            if info.read_methods and info.fill_methods:
                caches[info.class_symbol] = info
    return caches


def _class_symbol(module: ModuleInfo, node: ast.ClassDef) -> str:
    if module.package:
        return "%s.%s" % (module.package, node.name)
    return node.name


def _discover_tokens(
    modules: Sequence[ModuleInfo], graph: CallGraph
) -> Dict[str, VersionToken]:
    """Version tokens by key (``ClassName.attr``)."""
    tokens: Dict[str, VersionToken] = {}
    for module in modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for method in _method_defs(cls):
                for node in ast.walk(method):
                    if not (
                        isinstance(node, ast.AugAssign)
                        and isinstance(node.target, ast.Attribute)
                        and isinstance(node.target.value, ast.Name)
                        and node.target.value.id == "self"
                        and TOKEN_RE.search(node.target.attr)
                    ):
                        continue
                    key = "%s.%s" % (cls.name, node.target.attr)
                    token = tokens.get(key)
                    if token is None:
                        token = VersionToken(
                            key=key,
                            attr=node.target.attr,
                            class_symbol=_class_symbol(module, cls),
                        )
                        tokens[key] = token
                    method_symbol = _method_symbol(
                        graph, module, cls, method
                    )
                    if method_symbol is not None:
                        token.bump_methods.add(method_symbol)
    return tokens


def _method_symbol(
    graph: CallGraph,
    module: ModuleInfo,
    cls: ast.ClassDef,
    method: ast.FunctionDef,
) -> Optional[str]:
    for symbol, info in graph.functions.items():
        if info.node is method and info.module is module:
            return symbol
    return None


def _discover_builders(
    modules: Sequence[ModuleInfo], graph: CallGraph
) -> Dict[str, int]:
    """Version-key builders: function symbol → version-param index.

    A builder is a module-level function with a TOKEN_RE-named
    parameter whose value flows (through simple local assignment or a
    tuple literal) into a returned expression.
    """
    builders: Dict[str, int] = {}
    for symbol, info in graph.functions.items():
        node = info.node
        if isinstance(node, ast.Lambda) or info.class_symbol is not None:
            continue
        if "." in info.qual:
            continue  # nested functions are not shared key builders
        version_params = [
            (index, name)
            for index, name in enumerate(info.params)
            if TOKEN_RE.search(name)
        ]
        if not version_params:
            continue
        param_names = {name for _, name in version_params}
        # Locals tainted by a version param through assignment.
        tainted = set(param_names)
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
            ):
                for leaf in ast.walk(sub.value):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id in tainted
                    ):
                        tainted.add(sub.targets[0].id)
                        break
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                for leaf in ast.walk(sub.value):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id in tainted
                    ):
                        builders[symbol] = version_params[0][0]
                        break
    return builders


def _module_global_caches(
    modules: Sequence[ModuleInfo],
    caches: Dict[str, CacheClassInfo],
) -> Dict[str, str]:
    """Module-global name → cache class symbol (``DEFAULT_RANGE_CACHE``)."""
    by_name = {info.name: symbol for symbol, info in caches.items()}
    out: Dict[str, str] = {}
    for module in modules:
        for stmt in module.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            called = dotted_name(stmt.value.func)
            if called is None:
                continue
            bare = called.split(".")[-1]
            if bare in by_name:
                out[stmt.targets[0].id] = by_name[bare]
    return out


# -- model construction ------------------------------------------------------


def build_cache_model(
    modules: Sequence[ModuleInfo],
    callgraph: Optional[CallGraph] = None,
) -> CacheModel:
    """Extract per-function cache-effect summaries project-wide.

    Unlike the FS model there is no domain gate: cache holders, version
    owners, and the mutation sites they govern are spread across
    cluster, service, and sfc modules, and the splicing needs all of
    them summarized.
    """
    graph = callgraph if callgraph is not None else build_call_graph(modules)
    caches = _discover_cache_classes(modules, graph)
    tokens = _discover_tokens(modules, graph)
    builders = _discover_builders(modules, graph)
    globals_map = _module_global_caches(modules, caches)
    token_attrs = {token.attr for token in tokens.values()}
    summaries: Dict[str, CacheFunctionSummary] = {}
    for symbol, info in graph.functions.items():
        if isinstance(info.node, ast.Lambda):
            continue
        extractor = _CacheEffectExtractor(
            info,
            graph,
            caches,
            tokens,
            token_attrs,
            builders,
            globals_map,
        )
        summaries[symbol] = extractor.run()
    _compute_governed_fields(summaries, tokens)
    return CacheModel(summaries, tokens, caches, graph)


def _compute_governed_fields(
    summaries: Dict[str, CacheFunctionSummary],
    tokens: Dict[str, VersionToken],
) -> None:
    """Governed fields = fill-path reads ∩ bump-adjacent mutations.

    The *reads side* is every attribute read by a function holding a
    fill effect, plus its resolved callees two levels deep — the state
    the cached value was derived from.  The *mutation side*, per
    token, is every field mutated by a function adjacent to that
    token's bump (it bumps locally or calls a bump method), plus its
    direct callees.  Only fields on both sides are governed: counters
    bumped next to a version bump but never read by a fill path do not
    create obligations.
    """
    callees_of: Dict[str, Set[str]] = {}
    for symbol, summary in summaries.items():
        outs: Set[str] = set()
        for effect in summary.effects:
            if effect.kind == "call":
                outs.update(
                    callee
                    for callee in effect.detail.split(",")
                    if callee
                )
        callees_of[symbol] = outs

    read_side: Set[str] = set()
    for symbol, summary in summaries.items():
        if not any(e.kind == "fill" for e in summary.effects):
            continue
        fill_module = summary.info.module.path
        frontier = {symbol}
        seen: Set[str] = set()
        for _ in range(3):  # the function itself + 2 callee levels
            next_frontier: Set[str] = set()
            for current in frontier:
                if current in seen:
                    continue
                seen.add(current)
                current_summary = summaries.get(current)
                if current_summary is None:
                    continue
                # Stay within the fill function's module: the derived
                # value is computed from what the fill path reads
                # *here*, and following service→cluster→docstore
                # chains would govern half the project's fields.
                if current_summary.info.module.path != fill_module:
                    continue
                read_side.update(
                    attr for attr, _ in current_summary.field_reads
                )
                next_frontier |= callees_of.get(current, set())
            frontier = next_frontier

    for token in tokens.values():
        adjacent: Set[str] = set(token.bump_methods)
        for symbol, summary in summaries.items():
            for effect in summary.effects:
                if effect.kind == "bump" and effect.detail == token.key:
                    adjacent.add(symbol)
                elif effect.kind == "call" and any(
                    callee in token.bump_methods
                    for callee in effect.detail.split(",")
                ):
                    adjacent.add(symbol)
        mutated: Set[str] = set()
        for symbol in adjacent:
            for scope in {symbol} | callees_of.get(symbol, set()):
                scope_summary = summaries.get(scope)
                if scope_summary is None:
                    continue
                for effect in scope_summary.effects:
                    if (
                        effect.kind == "mutate"
                        and effect.detail != "fresh"
                    ):
                        mutated.add(effect.target)
        token.governed_fields = mutated & read_side
        # The token itself is bookkeeping, not governed state.
        token.governed_fields.discard(token.attr)


# -- effect extraction -------------------------------------------------------


class _CacheEffectExtractor:
    """Walks one function body in source order, emitting cache effects."""

    def __init__(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        caches: Dict[str, CacheClassInfo],
        tokens: Dict[str, VersionToken],
        token_attrs: Set[str],
        builders: Dict[str, int],
        globals_map: Dict[str, str],
    ) -> None:
        self.info = info
        self.graph = graph
        self.caches = caches
        self.tokens = tokens
        self.token_attrs = token_attrs
        self.builders = builders
        self.globals_map = globals_map
        self.summary = CacheFunctionSummary(
            symbol=info.symbol, info=info
        )
        self._handler_depth = 0
        self._finally_depth = 0
        self._lock_attrs = self._owner_lock_attrs()
        self._lock_stack: List[str] = []
        #: TOKEN_RE-named parameters of this function.
        self._version_params: Set[str] = {
            name for name in info.params if TOKEN_RE.search(name)
        }
        #: Local ``v = <obj>.token_attr`` captures: name → line.
        self._version_locals: Dict[str, int] = {}
        #: Locals keyed by a version (builder result / version tuple):
        #: name → key source string.
        self._keyed_locals: Dict[str, str] = {}
        #: Locals constructed fresh in this function (mutations of
        #: them are pre-publication and carry no bump obligation).
        self._fresh_locals: Set[str] = set()
        #: ``self.<attr>`` attrs whose declared type is a cache class.
        self._own_class = (
            info.class_symbol.rsplit(".", 1)[-1]
            if info.class_symbol is not None
            else None
        )

    def _owner_lock_attrs(self) -> Set[str]:
        node = self.info.node
        if self.info.class_symbol is None:
            return set()
        for candidate in ast.walk(self.info.module.tree):
            if isinstance(candidate, ast.ClassDef) and any(
                item is node for item in ast.walk(candidate)
            ):
                return collect_lock_attrs(candidate)
        return set()

    # -- driver ----------------------------------------------------------------

    def run(self) -> CacheFunctionSummary:
        node = self.info.node
        assert not isinstance(node, ast.Lambda)
        self._visit_body(node.body)
        self._collect_field_reads(node)
        self._collect_shared_shard_derived(node)
        return self.summary

    def _visit_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes are separate summaries
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.With):
            self._visit_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                self._handler_depth += 1
                self._visit_body(handler.body)
                self._handler_depth -= 1
            self._visit_body(stmt.orelse)
            self._finally_depth += 1
            self._visit_body(stmt.finalbody)
            self._finally_depth -= 1
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
            return
        if isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_augassign(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._note_subscript_mutation(target, stmt)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    # -- statement shapes --------------------------------------------------------

    def _visit_with(self, stmt: ast.With) -> None:
        locks_here = 0
        for item in stmt.items:
            ctx = item.context_expr
            if (
                isinstance(ctx, ast.Attribute)
                and isinstance(ctx.value, ast.Name)
                and ctx.value.id == "self"
                and ctx.attr in self._lock_attrs
            ):
                self._lock_stack.append(ctx.attr)
                locks_here += 1
            self._scan_expr(ctx)
        self._visit_body(stmt.body)
        for _ in range(locks_here):
            self._lock_stack.pop()

    def _visit_assign(self, stmt: ast.Assign) -> None:
        value = stmt.value
        name_target = (
            stmt.targets[0].id
            if len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            else None
        )
        # Key classification for locals feeding cache ops.
        if name_target is not None:
            self._classify_local(name_target, value)
        # Instance-state mutations (non-__init__ scopes only).
        if not self._in_init():
            for target in stmt.targets:
                self._note_attr_mutation(target, stmt)
                self._note_subscript_mutation(target, stmt)
        self._scan_expr(value)

    def _visit_augassign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        # self.token += 1 → bump
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in self.token_attrs
        ):
            token_key = self._token_key_for(target.attr)
            if token_key is not None:
                self._emit(
                    "bump",
                    target.attr,
                    stmt.lineno,
                    stmt.col_offset,
                    detail=token_key,
                )
                self._scan_expr(stmt.value)
                return
        if not self._in_init():
            self._note_attr_mutation(target, stmt)
            self._note_subscript_mutation(target, stmt)
        self._scan_expr(stmt.value)

    def _token_key_for(self, attr: str) -> Optional[str]:
        own = self._own_class
        if own is not None:
            key = "%s.%s" % (own, attr)
            if key in self.tokens:
                return key
        for key, token in self.tokens.items():
            if token.attr == attr:
                return key
        return None

    def _in_init(self) -> bool:
        return self.info.qual.endswith("__init__") or self.info.qual.endswith(
            "__post_init__"
        )

    def _classify_local(self, name: str, value: ast.expr) -> None:
        # v = self.metadata_version / v = cluster.metadata_version
        if (
            isinstance(value, ast.Attribute)
            and TOKEN_RE.search(value.attr)
        ):
            self._version_locals[name] = value.lineno
            return
        # metadata = CollectionMetadata(...) — fresh construction.
        if isinstance(value, ast.Call):
            called = dotted_name(value.func)
            if called is not None:
                bare = called.split(".")[-1]
                if bare[:1].isupper():
                    self._fresh_locals.add(name)
            resolved = self.graph.resolved.get(id(value))
            builder_callee: Optional[str] = None
            if resolved is not None:
                for callee in resolved.callees:
                    if callee in self.builders:
                        builder_callee = callee
                        break
            if builder_callee is None and called is not None:
                bare = called.split(".")[-1]
                candidates = self.graph.types.functions_by_name.get(
                    bare, []
                )
                if (
                    len(candidates) == 1
                    and candidates[0] in self.builders
                ):
                    builder_callee = candidates[0]
            if builder_callee is not None:
                index = self.builders[builder_callee]
                source = self._version_arg_source(value, index)
                if source is not None:
                    self._keyed_locals[name] = source
                return
        # key = (collection, version, ...) — tuple carrying a version.
        if isinstance(value, ast.Tuple):
            source = self._version_expr_source(value)
            if source is not None:
                self._keyed_locals[name] = source

    def _version_arg_source(
        self, call: ast.Call, index: int
    ) -> Optional[str]:
        """Key source when the builder's version argument is versioned."""
        args: List[ast.expr] = list(call.args)
        if 0 <= index < len(args):
            return self._version_expr_source(args[index])
        for keyword in call.keywords:
            if keyword.arg is not None and TOKEN_RE.search(keyword.arg):
                return self._version_expr_source(keyword.value)
        # Builder declared a version param; a call that omits it is
        # not keyed.
        return None

    def _version_expr_source(self, expr: ast.expr) -> Optional[str]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                if node.id in self._version_params:
                    return "param"
                if node.id in self._version_locals:
                    return "attr:%d" % self._version_locals[node.id]
                if node.id in self._keyed_locals:
                    return self._keyed_locals[node.id]
            elif isinstance(node, ast.Attribute) and TOKEN_RE.search(
                node.attr
            ):
                return "attr:%d" % node.lineno
        return None

    def _note_attr_mutation(
        self, target: ast.expr, stmt: ast.stmt
    ) -> None:
        """``obj.field = ...`` / ``obj.field += ...``."""
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
        ):
            return
        owner = target.value.id
        if target.attr in self.token_attrs and owner == "self":
            return  # plain (non-aug) token rebinds are init shapes
        detail = "fresh" if owner in self._fresh_locals else owner
        self._emit(
            "mutate",
            target.attr,
            stmt.lineno,
            stmt.col_offset,
            detail=detail,
        )

    def _note_subscript_mutation(
        self, target: ast.expr, stmt: ast.stmt
    ) -> None:
        """``obj.field[...] = ...`` (subscript or slice assignment)."""
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if not isinstance(base, ast.Attribute):
            return
        owner_text = _expr_text(base.value)
        owner_root = owner_text.split(".")[0].split("[")[0]
        detail = (
            "fresh" if owner_root in self._fresh_locals else owner_text
        )
        self._emit(
            "mutate",
            base.attr,
            stmt.lineno,
            stmt.col_offset,
            detail=detail,
        )

    # -- expression scanning -----------------------------------------------------

    def _scan_expr(self, expr: ast.expr) -> None:
        self._note_vchecks(expr)
        for node in _ordered_calls(expr):
            self._visit_call(node)

    def _note_vchecks(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Compare):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and self._is_token_attr(sub.attr)
                ) or (
                    isinstance(sub, ast.Name)
                    and (
                        sub.id in self._version_locals
                        or sub.id in self._version_params
                    )
                ):
                    self._emit(
                        "vcheck",
                        _expr_text(node),
                        node.lineno,
                        node.col_offset,
                    )
                    break

    def _is_token_attr(self, attr: str) -> bool:
        stripped = attr.lstrip("_")
        return any(
            token.attr.lstrip("_") == stripped
            for token in self.tokens.values()
        )

    def _visit_call(self, call: ast.Call) -> None:
        func = call.func
        line, col = call.lineno, call.col_offset

        # Cache-operation detection by receiver type.
        if isinstance(func, ast.Attribute):
            cache = self._receiver_cache(func.value)
            if cache is not None:
                method = func.attr
                if method in cache.read_methods:
                    keyed, source = self._call_key(call)
                    self._emit(
                        "read",
                        cache.name,
                        line,
                        col,
                        keyed=keyed,
                        key_source=source,
                    )
                    return
                if method in cache.fill_methods:
                    keyed, source = self._call_key(call)
                    self._emit(
                        "fill",
                        cache.name,
                        line,
                        col,
                        keyed=keyed,
                        key_source=source,
                    )
                    return
                if method in cache.invalidate_methods:
                    self._emit("invalidate", cache.name, line, col)
                    return
                if method in cache.stamp_feeder_methods:
                    self._emit(
                        "invalidate",
                        cache.name,
                        line,
                        col,
                        detail="stamp-feed",
                    )
                    return

        # Mutating container-method calls on instance attributes.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_CONTAINER_METHODS
            and isinstance(func.value, ast.Attribute)
            and not self._in_init()
        ):
            base = func.value
            owner_text = _expr_text(base.value)
            owner_root = owner_text.split(".")[0].split("[")[0]
            cache = self._receiver_cache(base.value)
            if cache is None:
                detail = (
                    "fresh"
                    if owner_root in self._fresh_locals
                    else owner_text
                )
                self._emit(
                    "mutate", base.attr, line, col, detail=detail
                )
                # fall through: the call may also resolve in-graph

        # Resolved project call → bump (when the callee is a bump
        # method) or call marker for inlining.
        resolved = self.graph.resolved.get(id(call))
        if resolved is not None and resolved.callees:
            bump_token = self._bump_callee_token(resolved.callees)
            if bump_token is not None:
                self._emit(
                    "bump",
                    dotted_name(func) or "?",
                    line,
                    col,
                    detail=bump_token,
                )
                return
            self._emit(
                "call",
                dotted_name(func) or "?",
                line,
                col,
                detail=",".join(resolved.callees),
            )

    def _bump_callee_token(
        self, callees: Sequence[str]
    ) -> Optional[str]:
        """Token key when every callee is one token's bump method.

        Calling the bump method *is* the bump: ``_bump_metadata_version``
        does nothing else, and treating the call as an opaque marker
        would hide the bump from ordering rules at depth limits.
        """
        for token in self.tokens.values():
            if all(callee in token.bump_methods for callee in callees):
                bump_only = True
                for callee in callees:
                    info = self.graph.functions.get(callee)
                    if info is None or isinstance(
                        info.node, ast.Lambda
                    ):
                        bump_only = False
                        break
                    body = [
                        stmt
                        for stmt in info.node.body
                        if not isinstance(stmt, ast.Expr)
                        or not isinstance(stmt.value, ast.Constant)
                    ]
                    if len(body) != 1 or not isinstance(
                        body[0], ast.AugAssign
                    ):
                        bump_only = False
                        break
                if bump_only:
                    return token.key
        return None

    def _receiver_cache(
        self, node: ast.expr
    ) -> Optional[CacheClassInfo]:
        """The cache class a call receiver names, if any."""
        if isinstance(node, ast.Name):
            global_symbol = self.globals_map.get(node.id)
            if global_symbol is not None:
                return self.caches.get(global_symbol)
        resolver = self.graph.resolvers.get(self.info.symbol)
        if resolver is None:
            return None
        type_name = resolver.receiver_type_name(node)
        if type_name is None:
            return None
        for cache in self.caches.values():
            if cache.name == type_name:
                return cache
        return None

    def _call_key(self, call: ast.Call) -> Tuple[bool, str]:
        """Key classification of a cache read/fill call's arguments."""
        for arg in list(call.args) + [
            keyword.value
            for keyword in call.keywords
            if keyword.value is not None
        ]:
            source = self._version_expr_source(arg)
            if source is not None:
                return True, source
        return False, ""

    # -- summary data ------------------------------------------------------------

    def _collect_field_reads(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                self.summary.field_reads.append(
                    (sub.attr, sub.lineno)
                )

    def _collect_shared_shard_derived(
        self, node: ast.AST
    ) -> None:
        """Locals drawn from one shard, referenced in a nested scope.

        ``first = self.shards[sid]`` then ``bounds = first.f(...)``
        then ``def run(...): ... bounds ...`` — the cached-per-query
        value computed from one shard's state but visible to every
        shard's closure.  CC006 flags these (info) so the sharing is
        consciously justified.
        """
        assert not isinstance(node, ast.Lambda)
        per_shard: Dict[str, int] = {}
        derived: Dict[str, int] = {}
        # Only assignments in the function's own scope count: a value
        # both derived and consumed inside the same nested closure is
        # per-shard by construction, not shared.  Sorted by line so
        # ``first = self.shards[...]`` registers before the assignment
        # that derives from it.
        assigns = sorted(
            (
                sub
                for sub in walk_within_function(node)
                if isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
            ),
            key=lambda a: (a.lineno, a.col_offset),
        )
        for sub in assigns:
            name_target = sub.targets[0]
            if not isinstance(name_target, ast.Name):
                continue
            target = name_target.id
            for leaf in ast.walk(sub.value):
                if (
                    isinstance(leaf, ast.Subscript)
                    and isinstance(leaf.value, ast.Attribute)
                    and leaf.value.attr == "shards"
                ):
                    per_shard[target] = sub.lineno
                    break
            else:
                for leaf in ast.walk(sub.value):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id in per_shard
                    ):
                        derived[target] = sub.lineno
                        break
        if not derived:
            return
        nested: List[ast.AST] = []
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.append(sub)
        for scope in nested:
            for leaf in ast.walk(scope):
                if (
                    isinstance(leaf, ast.Name)
                    and leaf.id in derived
                    and isinstance(leaf.ctx, ast.Load)
                ):
                    entry = (leaf.id, derived[leaf.id])
                    if entry not in self.summary.shared_shard_derived:
                        self.summary.shared_shard_derived.append(entry)

    def _emit(
        self,
        kind: str,
        target: str,
        line: int,
        col: int,
        detail: str = "",
        keyed: bool = False,
        key_source: str = "",
    ) -> None:
        self.summary.effects.append(
            CacheEffect(
                kind=kind,
                target=target,
                line=line,
                col=col,
                in_handler=self._handler_depth > 0,
                in_finally=self._finally_depth > 0,
                detail=detail,
                under_lock=(
                    self._lock_stack[-1] if self._lock_stack else ""
                ),
                origin=self.info.symbol,
                keyed=keyed,
                key_source=key_source,
            )
        )


# -- small AST utilities -----------------------------------------------------


def _ordered_calls(expr: ast.expr) -> Iterator[ast.Call]:
    """Calls within one expression, in (line, col) source order.

    Lambda bodies are included: a call inside ``lambda: self.f(...)``
    resolves through the global call-resolution table, and the effect
    belongs at the lambda's use site in this function.
    """
    calls = [
        node for node in ast.walk(expr) if isinstance(node, ast.Call)
    ]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return iter(calls)


def _expr_text(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return "<expr>"
