"""A best-effort project call graph for interprocedural checkers.

The per-module checkers (LD/CH/DT/DS) judge one function at a time,
which is exactly why the PR-1 lock leak needed a human: the acquire
lived in ``_read_lock_targeted_shards`` and the release in
``_execute_read``.  This module builds the call graph those rules need:

* a **symbol table** of every function, method, nested closure, and
  lambda, keyed by its dotted symbol
  (``repro.service.service.QueryService.find``);
* **type-informed resolution** of ``obj.method()`` calls — attribute
  types are inferred from ``__init__`` parameter annotations,
  constructor assignments, and local annotations, so
  ``self.cluster.find(...)`` resolves to ``ShardedCluster.find`` and
  not to every ``find`` in the project;
* **callable arguments**: a locally defined function, bound method, or
  lambda passed into a call is assumed to be invoked by the callee
  (``kind="closure"``), while ``executor.submit(fn, ...)`` and
  ``threading.Thread(target=fn)`` are ``kind="spawn"`` edges — the
  spawned callee runs on another thread, so held-lock sets must *not*
  propagate across them;
* **closure returns**: a function that returns a nested function (the
  ``_shard_mapper`` pattern) transfers its closure to call sites that
  pass the result onward as a callable.

Resolution is deliberately conservative where types are unknown: an
ambiguous method name produces *no* edge rather than every possible
edge, because a fabricated edge would fabricate lock-order cycles.
The runtime sanitizer (:mod:`repro.sanitizer`) cross-validates the
blind spots this policy leaves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.astutil import (
    dotted_name,
    iter_classes,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import ModuleInfo

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "ResolvedCall",
    "build_call_graph",
]

CallableNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Executor/thread entry points whose callable argument runs on
#: another thread (held-lock sets reset across these edges).
SPAWN_METHODS = {"submit"}
SPAWN_FACTORIES = {"Thread", "threading.Thread"}

#: Constructor basenames treated as spawns regardless of how they are
#: reached (``threading.Thread``, ``ctx.Process``,
#: ``multiprocessing.Process``): the ``target=`` runs on a fresh
#: thread *or* in a fresh process, so the spawner's held-lock set must
#: not propagate into it.
SPAWN_BASENAMES = {"Thread", "Process"}

#: Method names of builtin containers/strings/files/futures.  A call
#: like ``self._entries.clear()`` must not resolve to a project method
#: that happens to be named ``clear`` — the unique-name fallback below
#: skips these (type-informed resolution is unaffected).
BUILTIN_METHOD_NAMES = {
    "add",
    "append",
    "appendleft",
    "cancel",
    "clear",
    "close",
    "copy",
    "count",
    "decode",
    "discard",
    "encode",
    "endswith",
    "extend",
    "find",
    "flush",
    "format",
    "get",
    "index",
    "insert",
    "items",
    "join",
    "keys",
    "lower",
    "pop",
    "popitem",
    "popleft",
    "read",
    "readline",
    "remove",
    "replace",
    "result",
    "reverse",
    "setdefault",
    "sort",
    "split",
    "splitlines",
    "startswith",
    "strip",
    "update",
    "upper",
    "values",
    "write",
}

#: Lock acquire/release method names are handled by the lock-order
#: analysis directly and never produce call edges.
LOCK_METHOD_NAMES = {
    "acquire",
    "acquire_read",
    "acquire_write",
    "release",
    "release_read",
    "release_write",
    "read_locked",
    "write_locked",
}


@dataclass
class FunctionInfo:
    """One callable in the project: function, method, closure, lambda."""

    #: Fully dotted symbol, e.g. ``repro.service.service.QueryService.find``.
    symbol: str
    #: Qualname within the module, e.g. ``QueryService.find``.
    qual: str
    module: ModuleInfo
    node: CallableNode
    #: Symbol of the innermost enclosing class, or None.
    class_symbol: Optional[str]
    #: Parameter names in declaration order (``self``/``cls`` included).
    params: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class CallEdge:
    """One resolved caller → callee relationship."""

    caller: str
    callee: str
    line: int
    #: ``call`` (synchronous), ``closure`` (callable argument assumed
    #: invoked by the callee), or ``spawn`` (runs on another thread).
    kind: str


@dataclass(frozen=True)
class ResolvedCall:
    """Everything the lock analysis needs about one call site."""

    line: int
    col: int
    #: Synchronously called function symbols (usually one).
    callees: Tuple[str, ...]
    #: Callable-argument symbols assumed invoked by the callee.
    closure_args: Tuple[str, ...]
    #: Callable-argument symbols that run on another thread.
    spawn_args: Tuple[str, ...]
    #: ``(callee_param_name, closure_symbol)`` bindings, when a callable
    #: argument could be matched to a parameter of a resolved callee.
    param_binds: Tuple[Tuple[str, str], ...]


def _annotation_type(node: Optional[ast.expr]) -> Optional[str]:
    """Bare class name an annotation refers to, unwrapping Optional."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return _annotation_type(parsed.body)
    if isinstance(node, ast.Subscript):
        base = _annotation_type(node.value)
        if base == "Optional":
            return _annotation_type(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_type(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_type(node.right)
    return None


class _TypeIndex:
    """Class/attribute/variable types inferred from the module set."""

    def __init__(self) -> None:
        #: Bare class name → class symbol (only when project-unique).
        self.classes: Dict[str, str] = {}
        self.ambiguous_classes: set = set()
        #: Class symbol → base-class bare names.
        self.bases: Dict[str, List[str]] = {}
        #: Class symbol → attribute name → bare type name.
        self.attr_types: Dict[str, Dict[str, str]] = {}
        #: ``(class symbol, method name)`` → function symbol.
        self.methods: Dict[Tuple[str, str], str] = {}
        #: Bare function name → module-level function symbols.
        self.functions_by_name: Dict[str, List[str]] = {}

    def register_class(self, symbol: str, node: ast.ClassDef) -> None:
        if node.name in self.classes and self.classes[node.name] != symbol:
            self.ambiguous_classes.add(node.name)
            del self.classes[node.name]
        elif node.name not in self.ambiguous_classes:
            self.classes[node.name] = symbol
        self.bases[symbol] = [
            base
            for base in (_annotation_type(b) for b in node.bases)
            if base is not None
        ]

    def class_symbol(self, bare_name: Optional[str]) -> Optional[str]:
        if bare_name is None:
            return None
        return self.classes.get(bare_name)

    def resolve_method(
        self, class_symbol: str, method: str
    ) -> Optional[str]:
        """Method lookup walking single-level base classes."""
        found = self.methods.get((class_symbol, method))
        if found is not None:
            return found
        for base_name in self.bases.get(class_symbol, []):
            base_symbol = self.classes.get(base_name)
            if base_symbol is not None:
                found = self.methods.get((base_symbol, method))
                if found is not None:
                    return found
        return None

    def attr_type(
        self, class_symbol: Optional[str], attr: str
    ) -> Optional[str]:
        if class_symbol is None:
            return None
        found = self.attr_types.get(class_symbol, {}).get(attr)
        if found is not None:
            return found
        for base_name in self.bases.get(class_symbol, []):
            base_symbol = self.classes.get(base_name)
            if base_symbol is not None:
                found = self.attr_types.get(base_symbol, {}).get(attr)
                if found is not None:
                    return found
        return None


class CallGraph:
    """The resolved call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges: List[CallEdge] = []
        self.types = _TypeIndex()
        #: ``id(ast.Call)`` → resolution, for the lock analysis.
        self.resolved: Dict[int, ResolvedCall] = {}
        #: Function symbol → nested-function symbols it returns.
        self.returns_closures: Dict[str, List[str]] = {}
        #: Function symbol → its resolved call sites.
        self.calls_by_function: Dict[str, List[ResolvedCall]] = {}
        #: Function symbol → its resolver (kept for the lock analysis,
        #: which reuses receiver-type inference for lock attributes).
        self.resolvers: Dict[str, "_FunctionResolver"] = {}

    def callees(self, symbol: str) -> List[CallEdge]:
        """Outgoing edges of one function."""
        return [e for e in self.edges if e.caller == symbol]

    def callers(self, symbol: str) -> List[CallEdge]:
        """Incoming edges of one function."""
        return [e for e in self.edges if e.callee == symbol]

    # -- construction ----------------------------------------------------------

    def _index_modules(self, modules: Sequence[ModuleInfo]) -> None:
        for module in modules:
            class_symbols: Dict[int, str] = {}
            class_quals: Dict[int, str] = {}
            for cls_qual, cls in iter_classes(module.tree):
                symbol = _symbol(module, cls_qual)
                class_symbols[id(cls)] = symbol
                class_quals[id(cls)] = cls_qual
                self.types.register_class(symbol, cls)
            for qual, func, cls in iter_functions(module.tree):
                symbol = _symbol(module, qual)
                class_symbol = (
                    class_symbols.get(id(cls)) if cls is not None else None
                )
                info = FunctionInfo(
                    symbol=symbol,
                    qual=qual,
                    module=module,
                    node=func,
                    class_symbol=class_symbol,
                    params=[a.arg for a in _all_args(func.args)],
                )
                self.functions[symbol] = info
                if (
                    cls is not None
                    and class_symbol is not None
                    and qual
                    == "%s.%s" % (class_quals[id(cls)], func.name)
                ):
                    self.types.methods[(class_symbol, func.name)] = symbol
                if cls is None and "." not in qual:
                    self.types.functions_by_name.setdefault(
                        func.name, []
                    ).append(symbol)
                # Lambdas belong to their innermost enclosing function.
                for node in _direct_lambdas(func):
                    lam_symbol = "%s.<lambda:%d>" % (symbol, node.lineno)
                    self.functions[lam_symbol] = FunctionInfo(
                        symbol=lam_symbol,
                        qual="%s.<lambda:%d>" % (qual, node.lineno),
                        module=module,
                        node=node,
                        class_symbol=class_symbol,
                        params=[a.arg for a in _all_args(node.args)],
                    )

    def _index_attr_types(self) -> None:
        for info in list(self.functions.values()):
            if info.class_symbol is None or isinstance(info.node, ast.Lambda):
                continue
            if not info.qual.endswith(".__init__"):
                continue
            param_types: Dict[str, str] = {}
            for arg in _all_args(info.node.args):
                ann = _annotation_type(arg.annotation)
                if ann is not None:
                    param_types[arg.arg] = ann
            attr_types = self.types.attr_types.setdefault(
                info.class_symbol, {}
            )
            for node in walk_within_function(info.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    ann = _annotation_type(node.annotation)
                    if (
                        ann is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attr_types[target.attr] = ann
                        continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                inferred = self._value_type(value, param_types)
                if inferred is not None:
                    attr_types[target.attr] = inferred

    def _value_type(
        self, value: Optional[ast.expr], param_types: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        if isinstance(value, ast.Call):
            name = _annotation_type(value.func)
            if name is not None and name in self.types.classes:
                return name
        if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
            for part in value.values:
                found = self._value_type(part, param_types)
                if found is not None:
                    return found
        if isinstance(value, ast.IfExp):
            return self._value_type(
                value.body, param_types
            ) or self._value_type(value.orelse, param_types)
        return None

    def _index_closure_returns(self) -> None:
        for symbol, info in self.functions.items():
            if isinstance(info.node, ast.Lambda):
                continue
            nested = {
                child.name: "%s.%s" % (symbol, child.name)
                for child in _direct_nested_defs(info.node)
            }
            returned: List[str] = []
            for node in walk_within_function(info.node):
                if isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Name
                ):
                    closure = nested.get(node.value.id)
                    if closure is not None and closure in self.functions:
                        returned.append(closure)
            if returned:
                self.returns_closures[symbol] = returned

    # -- per-call resolution ---------------------------------------------------

    def _resolve_all(self) -> None:
        for symbol in sorted(self.functions):
            info = self.functions[symbol]
            resolver = _FunctionResolver(self, info)
            self.resolvers[symbol] = resolver
            for call in resolver.iter_calls():
                resolved = resolver.resolve(call)
                if resolved is None:
                    continue
                self.resolved[id(call)] = resolved
                self.calls_by_function.setdefault(symbol, []).append(resolved)
                for callee in resolved.callees:
                    self.edges.append(
                        CallEdge(symbol, callee, call.lineno, "call")
                    )
                for closure in resolved.closure_args:
                    self.edges.append(
                        CallEdge(symbol, closure, call.lineno, "closure")
                    )
                for spawned in resolved.spawn_args:
                    self.edges.append(
                        CallEdge(symbol, spawned, call.lineno, "spawn")
                    )


class _FunctionResolver:
    """Resolves the calls of one function against the project indexes."""

    def __init__(self, graph: CallGraph, info: FunctionInfo) -> None:
        self.graph = graph
        self.info = info
        self.local_types = self._collect_local_types()
        self.nested = self._collect_nested()

    def _collect_local_types(self) -> Dict[str, str]:
        types: Dict[str, str] = {}
        node = self.info.node
        for arg in _all_args(node.args):
            ann = _annotation_type(arg.annotation)
            if ann is not None:
                types[arg.arg] = ann
        if isinstance(node, ast.Lambda):
            return types
        for sub in walk_within_function(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    sub.value, ast.Call
                ):
                    name = _annotation_type(sub.value.func)
                    if name is not None and name in self.graph.types.classes:
                        types[target.id] = name
            elif isinstance(sub, ast.AnnAssign) and isinstance(
                sub.target, ast.Name
            ):
                ann = _annotation_type(sub.annotation)
                if ann is not None:
                    types[sub.target.id] = ann
        return types

    def _collect_nested(self) -> Dict[str, str]:
        """Function names defined in this scope or an enclosing one."""
        nested: Dict[str, str] = {}
        # Walk up the symbol chain: a closure sees its parents' defs.
        symbol = self.info.symbol
        chain = [symbol]
        while "." in symbol:
            symbol = symbol.rsplit(".", 1)[0]
            chain.append(symbol)
        for scope in reversed(chain):
            scope_info = self.graph.functions.get(scope)
            if scope_info is None or isinstance(scope_info.node, ast.Lambda):
                continue
            for child in _direct_nested_defs(scope_info.node):
                nested[child.name] = "%s.%s" % (scope, child.name)
        return nested

    def iter_calls(self) -> List[ast.Call]:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            calls = [
                sub
                for sub in ast.walk(node.body)
                if isinstance(sub, ast.Call)
            ]
        else:
            calls = [
                sub
                for sub in walk_within_function(node)
                if isinstance(sub, ast.Call)
            ]
        return sorted(calls, key=lambda c: (c.lineno, c.col_offset))

    # -- resolution pieces -----------------------------------------------------

    def _callable_symbol(self, node: ast.expr) -> Optional[str]:
        """Symbol when an expression evidently names a project callable."""
        if isinstance(node, ast.Lambda):
            return "%s.<lambda:%d>" % (self.info.symbol, node.lineno)
        if isinstance(node, ast.Name):
            if node.id in self.nested:
                return self.nested[node.id]
            funcs = self.graph.types.functions_by_name.get(node.id, [])
            if len(funcs) == 1:
                return funcs[0]
            return None
        if isinstance(node, ast.Attribute):
            symbols = self._resolve_attribute_callee(node)
            if len(symbols) == 1:
                return symbols[0]
            return None
        if isinstance(node, ast.Call):
            # ``f(...)`` passed as a callable: the closures f returns.
            inner = self.graph.resolved.get(id(node))
            closures: List[str] = []
            callees: Tuple[str, ...] = ()
            if inner is not None:
                callees = inner.callees
            else:
                callees = tuple(self._resolve_callees(node))
            for callee in callees:
                closures.extend(self.graph.returns_closures.get(callee, []))
            if len(closures) == 1:
                return closures[0]
        return None

    def receiver_class(self, node: ast.expr) -> Optional[str]:
        """Class symbol of an attribute-call receiver, when inferable."""
        types = self.graph.types
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return self.info.class_symbol
            local = self.local_types.get(node.id)
            if local is not None:
                return types.class_symbol(local)
            return types.class_symbol(node.id)  # ClassName.method(...)
        if isinstance(node, ast.Attribute):
            owner = self.receiver_class(node.value)
            if owner is not None:
                return types.class_symbol(types.attr_type(owner, node.attr))
        return None

    def receiver_type_name(self, node: ast.expr) -> Optional[str]:
        """Bare type-name evidence for a receiver, if any.

        Distinguishes "typed as a class we did not analyze" from "no
        type information at all": the former must not fall back to
        unique-name resolution, because the real callee lives outside
        the analyzed module set.
        """
        if isinstance(node, ast.Name):
            if node.id in ("self", "cls"):
                return (
                    self.info.class_symbol.rsplit(".", 1)[-1]
                    if self.info.class_symbol is not None
                    else None
                )
            return self.local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self.receiver_class(node.value)
            if owner is not None:
                return self.graph.types.attr_type(owner, node.attr)
        return None

    def _resolve_attribute_callee(self, func: ast.Attribute) -> List[str]:
        method = func.attr
        receiver_class = self.receiver_class(func.value)
        if receiver_class is not None:
            found = self.graph.types.resolve_method(receiver_class, method)
            return [found] if found is not None else []
        # The receiver is typed, but as a class outside the analyzed
        # module set: the real callee is not here, so resolve to
        # nothing rather than to a same-named local method.
        if self.receiver_type_name(func.value) is not None:
            return []
        # No type information: accept a project-unique method name,
        # otherwise resolve to nothing (a fabricated edge would
        # fabricate lock-order cycles; the runtime sanitizer covers
        # what this policy misses).
        if method in BUILTIN_METHOD_NAMES:
            return []
        candidates = sorted(
            symbol
            for (cls, name), symbol in self.graph.types.methods.items()
            if name == method
        )
        if len(candidates) == 1:
            return candidates
        return []

    def _resolve_callees(self, call: ast.Call) -> List[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.nested:
                return [self.nested[func.id]]
            class_symbol = self.graph.types.class_symbol(func.id)
            if class_symbol is not None:
                init = self.graph.types.resolve_method(
                    class_symbol, "__init__"
                )
                return [init] if init is not None else []
            funcs = self.graph.types.functions_by_name.get(func.id, [])
            if len(funcs) == 1:
                return list(funcs)
            return []
        if isinstance(func, ast.Attribute):
            if func.attr in LOCK_METHOD_NAMES:
                return []
            return self._resolve_attribute_callee(func)
        return []

    def resolve(self, call: ast.Call) -> Optional[ResolvedCall]:
        func = call.func
        is_spawn_submit = (
            isinstance(func, ast.Attribute) and func.attr in SPAWN_METHODS
        )
        dotted = (
            dotted_name(func) if not isinstance(func, ast.Lambda) else None
        )
        is_spawn_thread = dotted is not None and (
            dotted in SPAWN_FACTORIES
            or dotted.split(".")[-1] in SPAWN_BASENAMES
        )
        callees = (
            [] if is_spawn_thread else self._resolve_callees(call)
        )
        closure_args: List[str] = []
        spawn_args: List[str] = []
        param_binds: List[Tuple[str, str]] = []
        arg_values: List[Tuple[Optional[str], int, ast.expr]] = []
        for index, arg in enumerate(call.args):
            arg_values.append((None, index, arg))
        for kw in call.keywords:
            arg_values.append((kw.arg, -1, kw.value))
        for kw_name, index, value in arg_values:
            symbol = self._callable_symbol(value)
            if symbol is None:
                continue
            if is_spawn_submit or (is_spawn_thread and kw_name == "target"):
                spawn_args.append(symbol)
                continue
            closure_args.append(symbol)
            for callee in callees:
                param = self._param_name(callee, kw_name, index)
                if param is not None:
                    param_binds.append((param, symbol))
        if not (callees or closure_args or spawn_args):
            return None
        return ResolvedCall(
            line=call.lineno,
            col=call.col_offset,
            callees=tuple(callees),
            closure_args=tuple(closure_args),
            spawn_args=tuple(spawn_args),
            param_binds=tuple(param_binds),
        )

    def _param_name(
        self, callee: str, kw_name: Optional[str], index: int
    ) -> Optional[str]:
        info = self.graph.functions.get(callee)
        if info is None:
            return None
        params = list(info.params)
        if params and params[0] in ("self", "cls") and "." in info.qual:
            params = params[1:]
        if kw_name is not None:
            return kw_name if kw_name in params else None
        if 0 <= index < len(params):
            return params[index]
        return None


def _symbol(module: ModuleInfo, qual: str) -> str:
    if module.package:
        return "%s.%s" % (module.package, qual)
    return qual


def _all_args(args: ast.arguments) -> List[ast.arg]:
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def _direct_lambdas(node: ast.AST) -> List[ast.Lambda]:
    """Lambdas whose innermost enclosing function is ``node``."""
    out: List[ast.Lambda] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, ast.Lambda):
            out.append(child)
            continue
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return out


def _direct_nested_defs(
    node: ast.AST,
) -> List[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """Function definitions whose immediate scope is ``node``."""
    out: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = []
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(child)
            continue
        if isinstance(child, (ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return out


def build_call_graph(modules: Sequence[ModuleInfo]) -> CallGraph:
    """Build the project call graph over the given parsed modules."""
    graph = CallGraph()
    graph._index_modules(modules)
    graph._index_attr_types()
    graph._index_closure_returns()
    graph._resolve_all()
    return graph
