"""Shared AST helpers used by the checkers.

Checkers reason about three recurring shapes: dotted references
(``self._cond``, ``threading.Lock``), function scopes with stable
qualified names (fingerprints hang off them), and "which statements
run while a lock is held".  This module centralizes those so each
checker stays a readable statement of its rule.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

__all__ = [
    "FunctionNode",
    "LOCK_FACTORY_NAMES",
    "collect_lock_attrs",
    "dotted_name",
    "iter_classes",
    "iter_functions",
    "iter_scoped_statements",
    "walk_within_function",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructor names (suffix of the dotted call) that create a lock or
#: lock-like object worth guarding shared state with.
LOCK_FACTORY_NAMES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "ReadWriteLock",
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute chain such as ``self._cond`` or ``time.time``.

    Returns None when the chain is rooted in anything but a plain name
    (a call result, a subscript, ...).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, FunctionNode, Optional[ast.ClassDef]]]:
    """Yield ``(qualname, function, owning_class)`` for every function.

    Nested functions carry their parent's qualname as a prefix;
    ``owning_class`` is the innermost enclosing class, or None.
    """

    def walk(
        node: ast.AST, qual: str, cls: Optional[ast.ClassDef]
    ) -> Iterator[Tuple[str, FunctionNode, Optional[ast.ClassDef]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = "%s.%s" % (qual, child.name) if qual else child.name
                yield (child_qual, child, cls)
                yield from walk(child, child_qual, cls)
            elif isinstance(child, ast.ClassDef):
                child_qual = "%s.%s" % (qual, child.name) if qual else child.name
                yield from walk(child, child_qual, child)
            else:
                yield from walk(child, qual, cls)

    yield from walk(tree, "", None)


def iter_classes(tree: ast.Module) -> Iterator[Tuple[str, ast.ClassDef]]:
    """Yield ``(qualname, class)`` for every class definition."""

    def walk(node: ast.AST, qual: str) -> Iterator[Tuple[str, ast.ClassDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                child_qual = "%s.%s" % (qual, child.name) if qual else child.name
                yield (child_qual, child)
                yield from walk(child, child_qual)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = "%s.%s" % (qual, child.name) if qual else child.name
                yield from walk(child, child_qual)
            else:
                yield from walk(child, qual)

    yield from walk(tree, "")


def walk_within_function(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function's body without entering nested functions/classes.

    Used to attribute a node to its *innermost* function so scopes are
    analyzed exactly once.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_scoped_statements(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield every node with the qualname of its innermost function.

    Module-level nodes are attributed to ``<module>``; a node inside a
    method of a nested class carries ``Class.method``.
    """
    for node in _module_level_nodes(tree):
        yield ("<module>", node)
    for qual, func, _cls in iter_functions(tree):
        for node in walk_within_function(func):
            yield (qual, node)


def _module_level_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.ClassDef):
            # Class bodies are module-level executable code, but their
            # methods are separate scopes.
            stack.extend(
                child
                for child in ast.iter_child_nodes(node)
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            )
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def collect_lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names holding a lock-like object in a class.

    Covers instance attributes assigned from a lock factory in any
    method (``self._lock = threading.Lock()``) and class-level
    assignments (``_counter_lock = threading.Lock()``).
    """
    lock_attrs: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = dotted_name(value.func)
        if name is None or name.split(".")[-1] not in LOCK_FACTORY_NAMES:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                lock_attrs.add(target.attr)
            elif isinstance(target, ast.Name):
                lock_attrs.add(target.id)
    return lock_attrs
