"""The ``python -m repro.analysis`` command line.

Runs the registered checkers over the given paths, subtracts the
baseline, prints what remains, and exits non-zero when *new* findings
exist — which is exactly what CI gates on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.changed import (
    DEFAULT_REF,
    ChangedFilesError,
    changed_files,
)
from repro.analysis.checker import registered_checkers, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.sarif import to_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The analyzer's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-specific static analysis: lock discipline, "
            "concurrency hygiene, determinism, and docstore invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of accepted findings with justifications",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to accept all current findings, "
            "keeping existing justifications and dropping stale entries"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule-id prefixes to keep (e.g. LD,DT001)",
    )
    parser.add_argument(
        "--checker",
        action="append",
        dest="checkers",
        default=None,
        help="run only this checker (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "parse files and run per-module checkers in N worker "
            "processes (default: 1)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only findings in files changed against "
            "--changed-ref, plus their transitive call-graph dependents"
        ),
    )
    parser.add_argument(
        "--changed-ref",
        default=DEFAULT_REF,
        metavar="REF",
        help=(
            "git ref --changed-only diffs the working tree against "
            "(default: %s)" % DEFAULT_REF
        ),
    )
    parser.add_argument(
        "--fail-on-stale",
        action="store_true",
        help="also exit non-zero when baseline entries no longer match",
    )
    parser.add_argument(
        "--require-justification",
        action="store_true",
        help=(
            "exit non-zero when any baseline entry has an empty or "
            "placeholder justification"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print wall-clock seconds per checker phase after the "
            "report, so CI can spot slow rules"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every checker and rule, then exit",
    )
    return parser


def _list_rules(out: TextIO) -> None:
    for name, cls in sorted(registered_checkers().items()):
        out.write("%s — %s\n" % (name, cls.description))
        for rule_id, text in sorted(cls.rules.items()):
            out.write("  %s  %s\n" % (rule_id, text))


def _render_text(
    out: TextIO,
    new: List[Finding],
    suppressed_count: int,
    stale: List[str],
    missing: List[BaselineEntry],
    unjustified: List[BaselineEntry],
) -> None:
    for finding in new:
        out.write(finding.render() + "\n")
    for fingerprint in stale:
        out.write(
            "stale baseline entry (no longer matches): %s\n" % fingerprint
        )
    for entry in missing:
        out.write(
            "warning: baseline entry for missing file %s: %s\n"
            % (entry.path, entry.fingerprint)
        )
    for entry in unjustified:
        out.write(
            "baseline entry lacks a justification: %s\n"
            % entry.fingerprint
        )
    out.write(
        "%d new finding(s), %d baselined, %d stale baseline entr%s\n"
        % (
            len(new),
            suppressed_count,
            len(stale),
            "y" if len(stale) == 1 else "ies",
        )
    )


def _render_stats(out: TextIO, timings: dict) -> None:
    """Per-phase wall-clock table, slowest first."""
    out.write("per-checker timing (seconds):\n")
    for phase, seconds in sorted(
        timings.items(), key=lambda item: -item[1]
    ):
        out.write("  %-28s %8.3f\n" % (phase, seconds))


def _render_json(
    out: TextIO,
    new: List[Finding],
    suppressed: List[Finding],
    stale: List[str],
    missing: List[BaselineEntry],
    unjustified: List[BaselineEntry],
) -> None:
    payload = {
        "findings": [f.as_dict() for f in new],
        "suppressed": [f.as_dict() for f in suppressed],
        "staleBaselineEntries": stale,
        "missingFileEntries": [e.fingerprint for e in missing],
        "unjustifiedEntries": [e.fingerprint for e in unjustified],
        "summary": {
            "new": len(new),
            "suppressed": len(suppressed),
            "stale": len(stale),
        },
    }
    out.write(json.dumps(payload, indent=2) + "\n")


def main(
    argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None
) -> int:
    """Run the analyzer; returns the process exit code."""
    stream: TextIO = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(stream)
        return 0
    root = Path(args.root).resolve()
    select = (
        [s for s in args.select.split(",") if s] if args.select else None
    )
    changed_scope = None
    if args.changed_only:
        if args.write_baseline:
            # A scoped run cannot see every finding, so rewriting the
            # baseline from it would silently drop the out-of-scope
            # entries.
            stream.write(
                "--write-baseline cannot be combined with "
                "--changed-only\n"
            )
            return 2
        try:
            changed_scope = changed_files(root, args.changed_ref)
        except ChangedFilesError as exc:
            stream.write("error: %s\n" % exc)
            return 2
    timings: Optional[dict] = {} if args.stats else None
    findings = run_analysis(
        args.paths,
        root=root,
        select=select,
        checker_names=args.checkers,
        jobs=args.jobs,
        changed_scope=changed_scope,
        stats_out=timings,
    )
    baseline = Baseline()
    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_absolute():
            baseline_path = root / baseline_path
        baseline = Baseline.load(baseline_path)
    new, suppressed, stale_entries = baseline.split(findings)
    # A scoped run never saw the out-of-scope files, so their baseline
    # entries are not evidence of staleness.
    stale = (
        []
        if args.changed_only
        else [entry.fingerprint for entry in stale_entries]
    )
    missing = baseline.missing_file_entries(root)
    unjustified = (
        baseline.unjustified_entries()
        if args.require_justification
        else []
    )
    if args.write_baseline:
        if baseline_path is None:
            stream.write("--write-baseline requires --baseline\n")
            return 2
        # ``updated`` keeps only entries matching a current finding,
        # which also drops the missing-file ones: a file the analyzer
        # never parsed cannot produce findings.
        baseline.updated(findings).save(baseline_path)
        stream.write(
            "baseline rewritten: %d entr%s (%d new, %d stale dropped, "
            "%d for missing files)\n"
            % (
                len(findings),
                "y" if len(findings) == 1 else "ies",
                len(new),
                len(stale),
                len(missing),
            )
        )
        return 0
    if args.format == "json":
        _render_json(stream, new, suppressed, stale, missing, unjustified)
    elif args.format == "sarif":
        sarif_log = to_sarif(new, suppressed, baseline)
        stream.write(json.dumps(sarif_log, indent=2) + "\n")
    else:
        _render_text(
            stream, new, len(suppressed), stale, missing, unjustified
        )
    if timings is not None:
        _render_stats(stream, timings)
    if new:
        return 1
    if unjustified:
        return 1
    if stale and args.fail_on_stale:
        return 1
    return 0
