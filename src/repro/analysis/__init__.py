"""Project-specific static analysis for the reproduction codebase.

PR 1 turned the reproduction into a concurrent serving system, and its
review immediately found lock leaks on timeout paths — bugs that are
mechanically detectable from the source.  This package encodes the
project's locking, concurrency, determinism, and layering contracts as
AST-based checkers and gates CI on them:

* ``lock-discipline`` (LD) — acquisitions must be released on every
  exception path, multi-lock acquisition must be sorted, and shared
  attributes of lock-owning classes must be mutated under their lock.
* ``concurrency`` (CH) — no unguarded check-then-act or lazy init on
  shared state, no threads without join/daemon discipline, no
  unbounded ``Future.result()`` waits.
* ``determinism`` (DT) — no iteration over sets feeding plan selection
  or shard targeting without explicit ordering, no arbitrary-element
  ``set.pop()``, no wall-clock ``time.time()`` for durations.
* ``docstore-invariants`` (DS) — lower layers must not import upper
  layers (the docstore never sees the cluster or the service), and
  public docstore entry points must not mutate caller-supplied
  documents.
* ``lock-order`` (LK) — interprocedural: a project call graph
  propagates held-lock sets across call edges, catching lock-order
  cycles split across functions, unbounded blocking calls under locks,
  and acquisitions escaping without a caller-side release.  The
  resulting graph is cross-validated at runtime by
  :mod:`repro.sanitizer`.

Pre-existing, deliberately-accepted findings live in
``analysis-baseline.json`` with recorded justifications; any *new*
finding fails CI.  Run ``python -m repro.analysis src --baseline
analysis-baseline.json``.  ``--format sarif`` emits SARIF 2.1.0 for
code-scanning upload.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.checker import (
    Checker,
    ModuleInfo,
    register,
    registered_checkers,
    run_analysis,
)
from repro.analysis.findings import Finding, Severity

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "ModuleInfo",
    "Severity",
    "register",
    "registered_checkers",
    "run_analysis",
]
