"""Baseline files: accepted findings with recorded justifications.

A baseline turns the analyzer into a ratchet: every pre-existing,
deliberately-accepted finding is recorded once with a one-line
justification, and from then on only *new* findings fail the build.
Entries whose finding disappears (the code was fixed) become *stale*
and are reported so the file can be pruned — rewriting with
``--write-baseline`` drops them while preserving the justifications of
entries that still match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "PLACEHOLDER_JUSTIFICATION"]

#: Justification written for entries added by ``--write-baseline``;
#: humans are expected to replace it before committing.
PLACEHOLDER_JUSTIFICATION = "TODO: justify this accepted finding"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding and why it is acceptable."""

    fingerprint: str
    rule: str
    path: str
    symbol: str
    justification: str

    def as_dict(self) -> dict:
        """The entry as a JSON-ready mapping."""
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }


class Baseline:
    """The set of accepted findings, keyed by fingerprint."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: Dict[str, BaselineEntry] = {
            e.fingerprint: e for e in entries
        }

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                fingerprint=raw["fingerprint"],
                rule=raw.get("rule", raw["fingerprint"].split("::")[0]),
                path=raw.get("path", ""),
                symbol=raw.get("symbol", ""),
                justification=raw.get("justification", ""),
            )
            for raw in payload.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": 1,
            "entries": [
                entry.as_dict()
                for entry in sorted(
                    self.entries.values(), key=lambda e: e.fingerprint
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into ``(new, suppressed, stale_entries)``.

        New findings have no baseline entry; suppressed findings match
        one; stale entries match no current finding.
        """
        new: List[Finding] = []
        suppressed: List[Finding] = []
        seen: set = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                suppressed.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in seen
        ]
        return new, suppressed, stale

    def unjustified_entries(self) -> List[BaselineEntry]:
        """Entries whose justification is empty or the placeholder.

        A baseline is only a ratchet if every accepted finding records
        *why* it was accepted; these entries record nothing.
        """
        return [
            entry
            for _fingerprint, entry in sorted(self.entries.items())
            if not entry.justification.strip()
            or entry.justification == PLACEHOLDER_JUSTIFICATION
        ]

    def missing_file_entries(self, root: Path) -> List[BaselineEntry]:
        """Entries whose recorded file no longer exists under ``root``.

        These can never match a finding again (the analyzer only
        reports on files it parsed), so they are dead weight — warned
        about on every run and dropped by ``--write-baseline``.
        """
        return [
            entry
            for _fingerprint, entry in sorted(self.entries.items())
            if entry.path and not (root / entry.path).exists()
        ]

    def updated(self, findings: Sequence[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings.

        Justifications of entries that still match are preserved; new
        entries get :data:`PLACEHOLDER_JUSTIFICATION` for a human to
        replace.
        """
        entries = []
        for finding in findings:
            existing = self.entries.get(finding.fingerprint)
            entries.append(
                BaselineEntry(
                    fingerprint=finding.fingerprint,
                    rule=finding.rule_id,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=(
                        existing.justification
                        if existing is not None
                        else PLACEHOLDER_JUSTIFICATION
                    ),
                )
            )
        return Baseline(entries)

    def __len__(self) -> int:
        return len(self.entries)
