"""Lock-discipline rules (LD): the PR-1 bug class, mechanized.

The service review found read locks leaking when a deadline expired
mid-acquisition — an ``acquire`` whose matching release was only on
the straight-line path.  These rules make that class of bug (and its
siblings: unordered multi-lock acquisition, unguarded shared-state
mutation) a CI failure instead of a reviewer catch.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.astutil import (
    FunctionNode,
    collect_lock_attrs,
    dotted_name,
    iter_classes,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import Checker, ModuleInfo, register
from repro.analysis.findings import Finding, Severity

__all__ = ["LockDisciplineChecker"]

#: Acquire method → release methods that balance it.
ACQUIRE_TO_RELEASE: Dict[str, Tuple[str, ...]] = {
    "acquire": ("release",),
    "acquire_read": ("release_read",),
    "acquire_write": ("release_write",),
}

RELEASE_METHODS: Set[str] = {
    name for names in ACQUIRE_TO_RELEASE.values() for name in names
}

#: Method calls that mutate a container in place.
MUTATOR_METHODS: Set[str] = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _with_item_node_ids(func: FunctionNode) -> Set[int]:
    """Ids of every node inside a ``with`` item's context expression."""
    ids: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    ids.add(id(sub))
    return ids


def _releases_on_unwind_paths(func: FunctionNode) -> Set[str]:
    """Release methods called from a ``finally`` or ``except`` body.

    Nested functions count: a closure handed to an executor may own
    the release for an acquire made by its parent.
    """
    protected: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        unwind_stmts = list(node.finalbody)
        for handler in node.handlers:
            unwind_stmts.extend(handler.body)
        for stmt in unwind_stmts:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in RELEASE_METHODS
                ):
                    protected.add(sub.func.attr)
    return protected


def _walk_outside_nested_loops(stmt: ast.stmt) -> List[ast.AST]:
    """Descendants of a statement, not descending into nested loops."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                ),
            ):
                continue
            stack.append(child)
    return out


def _lock_guard_in_with_item(
    expr: ast.expr, lock_attrs: Set[str]
) -> bool:
    """Whether a ``with`` item expression references a known lock attr.

    Matches ``with self._lock:``, ``with ObjectId._counter_lock:``,
    and context-manager accessors like ``with lock.read_locked():``.
    """
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Attribute) and sub.attr in lock_attrs:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in (
            "read_locked",
            "write_locked",
        ):
            return True
        if isinstance(sub, ast.Name) and sub.id in lock_attrs:
            return True
    return False


def _owned_attr(
    node: ast.expr, owners: Set[str]
) -> Optional[str]:
    """Attribute name when ``node`` is ``<owner>.X`` or ``<owner>.X[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in owners
    ):
        return node.attr
    return None


@register
class LockDisciplineChecker(Checker):
    """LD rules: release-on-all-paths, sorted order, guarded mutation."""

    name = "lock-discipline"
    description = (
        "lock acquisitions released on every exception path, sorted "
        "multi-lock order, shared state mutated only under its lock"
    )
    rules = {
        "LD001": (
            "lock/semaphore acquired outside a with-statement and with "
            "no matching release on a finally/except unwind path"
        ),
        "LD002": (
            "multiple locks acquired in a loop over an unsorted "
            "iterable (deadlock risk against other multi-lock holders)"
        ),
        "LD003": (
            "attribute of a lock-owning class mutated outside a "
            "lock-holding scope"
        ),
    }
    rule_details = {
        "LD001": (
            "An acquire with no release on some unwind path leaks the "
            "lock the first time that path raises — the bug class "
            "behind the PR-1 timeout-path leak.  Use a with-statement, "
            "or release in a finally that covers every exit."
        ),
        "LD002": (
            "Acquiring multiple locks in arbitrary order deadlocks "
            "against any other multi-lock holder using a different "
            "order.  Iterate the lock collection in sorted key order, "
            "as the targeted-shard read path does."
        ),
        "LD003": (
            "An attribute of a lock-owning class written outside any "
            "lock scope races every reader that does take the lock.  "
            "Mutate under the class's own lock.  Methods whose name "
            "ends in ``_locked`` declare the calling convention that "
            "the caller already holds the class lock and are judged "
            "as guarded."
        ),
    }
    rule_levels = {
        "LD001": Severity.ERROR,
        "LD002": Severity.ERROR,
        "LD003": Severity.WARNING,
    }
    help_uri = "DESIGN.md#rule-catalog"

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run all LD rules over one module."""
        findings: List[Finding] = []
        for qual, func, _cls in iter_functions(module.tree):
            findings.extend(self._check_release_paths(module, qual, func))
            findings.extend(self._check_sorted_order(module, qual, func))
        findings.extend(self._check_guarded_mutation(module))
        return findings

    # -- LD001 -----------------------------------------------------------------

    def _check_release_paths(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        exempt = _with_item_node_ids(func)
        protected = _releases_on_unwind_paths(func)
        for node in walk_within_function(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ACQUIRE_TO_RELEASE
            ):
                continue
            if id(node) in exempt:
                continue
            # Wrapper delegation: a method named like the acquire it
            # forwards (``SanitizedLock.acquire`` calling
            # ``self._inner.acquire()``) or ``__enter__`` (whose
            # release lives in ``__exit__``) holds the lock *for its
            # caller* — the caller's unwind path is judged instead.
            enclosing = getattr(func, "name", None)
            if enclosing == node.func.attr or enclosing == "__enter__":
                continue
            balancing = ACQUIRE_TO_RELEASE[node.func.attr]
            if any(name in protected for name in balancing):
                continue
            receiver = dotted_name(node.func.value) or "<expr>"
            findings.append(
                Finding(
                    rule_id="LD001",
                    severity=Severity.ERROR,
                    message=(
                        "%s.%s() has no matching %s() on a finally/except "
                        "path; a timeout or error here leaks the lock "
                        "(use a with-statement or try/finally)"
                        % (receiver, node.func.attr, balancing[0])
                    ),
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=qual,
                )
            )
        return findings

    # -- LD002 -----------------------------------------------------------------

    def _check_sorted_order(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in walk_within_function(func):
            if not isinstance(node, ast.For):
                continue
            # Only acquisitions driven by *this* loop matter; an inner
            # (possibly sorted) loop is judged on its own.
            acquires = [
                sub
                for stmt in node.body
                for sub in _walk_outside_nested_loops(stmt)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ACQUIRE_TO_RELEASE
            ]
            if not acquires:
                continue
            ordered = any(
                isinstance(sub, ast.Name) and sub.id == "sorted"
                for sub in ast.walk(node.iter)
            )
            if ordered:
                continue
            findings.append(
                Finding(
                    rule_id="LD002",
                    severity=Severity.ERROR,
                    message=(
                        "multi-lock acquisition iterates an unsorted "
                        "iterable; acquire in sorted() order so "
                        "concurrent multi-lock holders cannot deadlock"
                    ),
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=qual,
                )
            )
        return findings

    # -- LD003 -----------------------------------------------------------------

    def _check_guarded_mutation(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for cls_qual, cls in iter_classes(module.tree):
            lock_attrs = collect_lock_attrs(cls)
            if not lock_attrs:
                continue
            owners = {"self", "cls", cls.name}
            for child in cls.body:
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if child.name in ("__init__", "__new__", "__post_init__"):
                    continue
                qual = "%s.%s" % (cls_qual, child.name)
                # The ``_locked`` suffix is the repo's calling
                # convention for "caller holds the class lock"; the
                # runtime sanitizer still observes the real acquisition
                # order, so a convention-violating caller is caught by
                # the dynamic oracle rather than silently trusted.
                self._visit_guarded(
                    child.body,
                    guarded=child.name.endswith("_locked"),
                    lock_attrs=lock_attrs,
                    owners=owners,
                    module=module,
                    qual=qual,
                    findings=findings,
                )
        return findings

    def _visit_guarded(
        self,
        stmts: List[ast.stmt],
        guarded: bool,
        lock_attrs: Set[str],
        owners: Set[str],
        module: ModuleInfo,
        qual: str,
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_guarded = guarded or any(
                    _lock_guard_in_with_item(item.context_expr, lock_attrs)
                    for item in stmt.items
                )
                self._visit_guarded(
                    stmt.body,
                    now_guarded,
                    lock_attrs,
                    owners,
                    module,
                    qual,
                    findings,
                )
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A closure may run later on another thread; judge its
                # body on its own (unguarded) terms.
                self._visit_guarded(
                    stmt.body,
                    False,
                    lock_attrs,
                    owners,
                    module,
                    "%s.%s" % (qual, stmt.name),
                    findings,
                )
                continue
            if not guarded:
                attr = self._mutated_attr(stmt, owners)
                if attr is not None and attr not in lock_attrs:
                    findings.append(
                        Finding(
                            rule_id="LD003",
                            severity=Severity.WARNING,
                            message=(
                                "mutation of shared attribute %r outside "
                                "a lock-holding scope in a lock-owning "
                                "class" % attr
                            ),
                            path=module.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            symbol=qual,
                        )
                    )
            for body in self._nested_bodies(stmt):
                self._visit_guarded(
                    body, guarded, lock_attrs, owners, module, qual, findings
                )

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
        bodies: List[List[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                bodies.append(value)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    @staticmethod
    def _mutated_attr(
        stmt: ast.stmt, owners: Set[str]
    ) -> Optional[str]:
        """The owned attribute a statement mutates, if any."""
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                attr = _owned_attr(target, owners)
                if attr is not None:
                    return attr
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            target = stmt.target
            attr = _owned_attr(target, owners)
            if attr is not None and not (
                isinstance(stmt, ast.AnnAssign) and stmt.value is None
            ):
                return attr
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                attr = _owned_attr(target, owners)
                if attr is not None:
                    return attr
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATOR_METHODS
            ):
                return _owned_attr(call.func.value, owners)
        return None
