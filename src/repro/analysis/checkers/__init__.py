"""Built-in checkers; importing this package registers them all."""

from __future__ import annotations

from repro.analysis.checkers.cachecoherence import CacheCoherenceChecker
from repro.analysis.checkers.concurrency import ConcurrencyChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.docstore_invariants import (
    DocstoreInvariantsChecker,
)
from repro.analysis.checkers.fsconsistency import FsConsistencyChecker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.lockorder import LockOrderChecker

__all__ = [
    "CacheCoherenceChecker",
    "ConcurrencyChecker",
    "DeterminismChecker",
    "DocstoreInvariantsChecker",
    "FsConsistencyChecker",
    "LockDisciplineChecker",
    "LockOrderChecker",
]
