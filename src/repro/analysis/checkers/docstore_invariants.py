"""Docstore-invariant rules (DS): layering and caller-document safety.

The document store is the bottom of the stack: B-tree, index, and
matcher modules must never import from the cluster or the service
above them, and its public query entry points must treat
caller-supplied documents as immutable (MongoDB drivers copy before
assigning ``_id`` for the same reason).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.astutil import (
    FunctionNode,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import Checker, ModuleInfo, register
from repro.analysis.findings import Finding, Severity

__all__ = ["DocstoreInvariantsChecker", "LAYERS"]

#: Architectural layers, lowest first.  A module may import only from
#: its own layer or below; the docstore (layer 2) importing the
#: service (layer 5) is the canonical violation.
LAYERS: Dict[str, int] = {
    "repro.errors": 0,
    "repro.geo": 1,
    "repro.sfc": 1,
    "repro.docstore": 2,
    "repro.cluster": 3,
    "repro.core": 4,
    "repro.datagen": 4,
    "repro.workloads": 4,
    "repro.service": 5,
    "repro.analysis": 6,
    "repro.cli": 6,
    "repro": 6,
}

#: Method calls that mutate a mapping or sequence in place.
PARAM_MUTATORS: Set[str] = {
    "add",
    "append",
    "clear",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _layer_of(package: str) -> Optional[int]:
    """The layer of a dotted module name, or None when unknown."""
    parts = package.split(".")
    for width in (2, 1):
        key = ".".join(parts[:width])
        if key in LAYERS:
            return LAYERS[key]
    return None


@register
class DocstoreInvariantsChecker(Checker):
    """DS rules: layering and no mutation of caller-supplied documents."""

    name = "docstore-invariants"
    description = (
        "lower layers never import upper layers; public docstore entry "
        "points never mutate caller-supplied documents"
    )
    rules = {
        "DS001": (
            "import from a higher architectural layer (e.g. docstore "
            "importing cluster or service)"
        ),
        "DS002": (
            "public docstore entry point mutates a caller-supplied "
            "argument; copy before modifying"
        ),
    }
    rule_details = {
        "DS001": (
            "repro.docstore is the storage engine; importing the "
            "service or cluster layers above it inverts the "
            "dependency arrow and makes the engine untestable in "
            "isolation.  Move the shared code down, or pass the "
            "dependency in."
        ),
        "DS002": (
            "A public docstore entry point that mutates its argument "
            "surprises every caller that reuses the document — the "
            "service layer batches and retries inserts.  Copy before "
            "modifying."
        ),
    }
    rule_levels = {
        "DS001": Severity.ERROR,
        "DS002": Severity.ERROR,
    }
    help_uri = "DESIGN.md#rule-catalog"

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run all DS rules over one module."""
        findings: List[Finding] = []
        findings.extend(self._check_layering(module))
        if module.package.startswith("repro.docstore"):
            for qual, func, _cls in iter_functions(module.tree):
                findings.extend(
                    self._check_param_mutation(module, qual, func)
                )
        return findings

    # -- DS001 -----------------------------------------------------------------

    def _check_layering(self, module: ModuleInfo) -> List[Finding]:
        importer_layer = _layer_of(module.package)
        if importer_layer is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            imported: List[str] = []
            if isinstance(node, ast.Import):
                imported = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module is not None:
                    imported = [node.module]
            for name in imported:
                target_layer = _layer_of(name)
                if target_layer is None or target_layer <= importer_layer:
                    continue
                findings.append(
                    Finding(
                        rule_id="DS001",
                        severity=Severity.ERROR,
                        message=(
                            "%s (layer %d) imports %s (layer %d); lower "
                            "layers must not depend on upper layers"
                            % (
                                module.package,
                                importer_layer,
                                name,
                                target_layer,
                            )
                        ),
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
        return findings

    # -- DS002 -----------------------------------------------------------------

    def _check_param_mutation(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        if any(part.startswith("_") for part in qual.split(".")):
            return []
        args = func.args
        params = {
            a.arg
            for a in (args.posonlyargs + args.args + args.kwonlyargs)
            if a.arg not in ("self", "cls")
        }
        if not params:
            return []
        candidates = params - self._rebound_names(func)
        if not candidates:
            return []
        findings: List[Finding] = []
        for node in walk_within_function(func):
            name = self._mutated_param(node, candidates)
            if name is None:
                continue
            findings.append(
                Finding(
                    rule_id="DS002",
                    severity=Severity.ERROR,
                    message=(
                        "public docstore entry point mutates "
                        "caller-supplied argument %r; copy it first "
                        "(callers own their documents)" % name
                    ),
                    path=module.path,
                    line=getattr(node, "lineno", func.lineno),
                    col=getattr(node, "col_offset", 0),
                    symbol=qual,
                )
            )
        return findings

    @staticmethod
    def _rebound_names(func: FunctionNode) -> Set[str]:
        """Names rebound in the function (a rebound param is a copy)."""
        rebound: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        rebound.add(sub.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for sub in ast.walk(item.optional_vars):
                            if isinstance(sub, ast.Name):
                                rebound.add(sub.id)
        return rebound

    @staticmethod
    def _mutated_param(
        node: ast.AST, params: Set[str]
    ) -> Optional[str]:
        """The parameter a node mutates in place, if any."""

        def param_subscript(target: ast.expr) -> Optional[str]:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in params
            ):
                return target.value.id
            return None

        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = param_subscript(target)
                if name is not None:
                    return name
        elif isinstance(node, ast.AugAssign):
            return param_subscript(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = param_subscript(target)
                if name is not None:
                    return name
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in PARAM_MUTATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in params
            ):
                return func.value.id
        return None
