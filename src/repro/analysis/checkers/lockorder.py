"""LK: interprocedural lock-order rules.

Built on :mod:`repro.analysis.lockgraph`, which simulates held-lock
sets through every function and propagates them across call edges
(closures included, executor spawns excluded).  These are the rules
LD001/LD002 structurally cannot express: a cycle whose two halves live
in different functions, a ``Future.result()`` that blocks three frames
below the acquisition, an escaping acquisition whose caller forgets
the balancing ``finally``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.checker import (
    ModuleInfo,
    ProjectChecker,
    ProjectContext,
    register,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["LockOrderChecker"]


def _short(symbol: str) -> str:
    """Last two dotted components — enough to identify a lock."""
    return ".".join(symbol.rsplit(".", 2)[-2:])


@register
class LockOrderChecker(ProjectChecker):
    """Whole-project lock-order analysis (LK rules)."""

    name = "lock-order"
    description = (
        "Interprocedural lock-order cycles, blocking calls under "
        "locks, and unprotected escaping acquisitions."
    )
    rules = {
        "LK001": (
            "Lock-order cycle across functions: two code paths "
            "acquire the same locks in opposite orders (potential "
            "deadlock)."
        ),
        "LK002": (
            "Blocking call (Future.result, Condition.wait, join, "
            "sleep) with no timeout while locks are held."
        ),
        "LK003": (
            "Call to a function that returns with locks held, without "
            "a reachable release on the caller's unwind path."
        ),
    }
    rule_details = {
        "LK001": (
            "Two code paths acquiring the same locks in opposite "
            "orders deadlock the first time they interleave; no "
            "single function shows the cycle, only the call-graph "
            "propagation of held-lock sets does.  Fix by imposing one "
            "global acquisition order."
        ),
        "LK002": (
            "A blocking call with no timeout made while locks are "
            "held turns a slow peer into a lock convoy — and into a "
            "deadlock if the awaited work needs one of the held "
            "locks.  Pass a timeout or move the wait outside the "
            "lock."
        ),
        "LK003": (
            "A callee that returns with locks still held transfers "
            "release responsibility to its caller; a caller without a "
            "release on every unwind path leaks the lock on the first "
            "exception.  Release where you acquire, or wrap the pair "
            "in a context manager."
        ),
    }
    rule_levels = {
        "LK001": Severity.ERROR,
        "LK002": Severity.WARNING,
        "LK003": Severity.ERROR,
    }
    help_uri = "DESIGN.md#rule-catalog"

    def check_project(
        self,
        modules: Sequence[ModuleInfo],
        context: Optional[ProjectContext] = None,
    ) -> List[Finding]:
        if context is None:
            context = ProjectContext(modules)
        analysis = context.locks
        findings: List[Finding] = []
        findings.extend(self._cycles(analysis))
        findings.extend(self._blocking(analysis))
        findings.extend(self._escapes(analysis))
        return findings

    def _cycles(self, analysis) -> List[Finding]:
        findings: List[Finding] = []
        for cycle in analysis.graph.cycles():
            legs: List[str] = []
            witness = None
            ring = cycle + [cycle[0]] if len(cycle) > 1 else cycle * 2
            for src, dst in zip(ring, ring[1:]):
                edge_witness = analysis.graph.witness(src, dst)
                if edge_witness is None:
                    continue
                if witness is None:
                    witness = edge_witness
                legs.append(
                    "%s -> %s at %s:%d (%s)"
                    % (
                        _short(src),
                        _short(dst),
                        edge_witness.path,
                        edge_witness.line,
                        edge_witness.symbol,
                    )
                )
            if witness is None:
                continue
            findings.append(
                Finding(
                    rule_id="LK001",
                    severity=Severity.ERROR,
                    message=(
                        "potential deadlock: lock-order cycle %s; %s"
                        % (
                            " -> ".join(
                                _short(key) for key in ring
                            ),
                            "; ".join(legs),
                        )
                    ),
                    path=witness.path,
                    line=witness.line,
                    col=0,
                    symbol=witness.symbol,
                )
            )
        return findings

    def _blocking(self, analysis) -> List[Finding]:
        findings: List[Finding] = []
        for record in analysis.blocking:
            findings.append(
                Finding(
                    rule_id="LK002",
                    severity=Severity.WARNING,
                    message=(
                        "%s while holding %s; a stalled peer holds "
                        "every waiter behind these locks"
                        % (
                            record.desc,
                            ", ".join(
                                _short(key) for key in record.held_keys
                            ),
                        )
                    ),
                    path=record.path,
                    line=record.line,
                    col=record.col,
                    symbol=record.symbol,
                )
            )
        return findings

    def _escapes(self, analysis) -> List[Finding]:
        findings: List[Finding] = []
        seen: Dict[tuple, bool] = {}
        for record in analysis.unprotected_escapes:
            key = (record.path, record.line, record.callee)
            if key in seen:
                continue
            seen[key] = True
            findings.append(
                Finding(
                    rule_id="LK003",
                    severity=Severity.ERROR,
                    message=(
                        "%s returns holding %s but no release is "
                        "reachable on this call's unwind path; a "
                        "timeout here leaks the lock"
                        % (
                            record.callee.rsplit(".", 1)[-1],
                            ", ".join(
                                _short(key) for key in record.keys
                            ),
                        )
                    ),
                    path=record.path,
                    line=record.line,
                    col=record.col,
                    symbol=record.symbol,
                )
            )
        return findings
