"""FS: crash-consistency rules over the filesystem-effect model.

Built on :mod:`repro.analysis.fsmodel`, which extracts an ordered
filesystem-effect sequence per function and splices callee effects in
through the PR-3 call graph.  These rules machine-check the ordering
invariants PR 6's review enforced by hand:

* **FS001** — a locally-opened write handle whose data is never
  fsync-covered before the function succeeds.  Durability that stops
  at the page cache is not durability; an acknowledged write behind
  such a handle dies with the machine, not just the process.
* **FS002** — ``os.replace`` (the commit point of every atomic-publish
  protocol here) followed by a dependent delete with no directory
  fsync in between.  A crash can then resurrect the *old* directory
  entry while the files the old state needs are already gone — the
  exact resurrected-manifest/orphaned-run bug from the PR-6 review.
* **FS003** — ``close()`` on a handle drawn from a lock-guarded shared
  collection, later unlinked.  Readers that snapshotted the collection
  still ``pread`` the handle; closing hands them a dead fd, or — worse
  — a recycled number pointing at the wrong file.  Retirement must
  unlink *without* closing.
* **FS004** — engine state rebound before the commit point it depends
  on.  Swapping the memtable/WAL (or run list) and *then* writing the
  manifest means a failure between the two makes acknowledged writes
  invisible.
* **FS005** — a temp-file suffix created somewhere but swept nowhere:
  a crash mid-publish strands the temp file forever.
* **FS006** (info) — an fsync executed while a contended lock is held.
  Correct, but every waiter behind that lock now queues behind a disk
  flush; the WAL's group-commit syncer exists precisely to avoid this.

The runtime trace oracle (:mod:`repro.sanitizer.fstrace`) observes the
same effect vocabulary live and cross-validates both directions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.checker import (
    ModuleInfo,
    ProjectChecker,
    ProjectContext,
    register,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.fsmodel import FsEffect, FsFunctionSummary, FsModel

__all__ = ["FsConsistencyChecker"]


def _short(symbol: str) -> str:
    """Last two dotted components — enough to identify a function."""
    return ".".join(symbol.rsplit(".", 2)[-2:])


@register
class FsConsistencyChecker(ProjectChecker):
    """Whole-project crash-consistency analysis (FS rules)."""

    name = "fs-consistency"
    description = (
        "Crash-consistency ordering over filesystem effects: fsync "
        "coverage, rename/dirfsync/delete ordering, close-vs-unlink "
        "on reader-visible handles, commit-point ordering, temp-file "
        "sweeps."
    )
    rules = {
        "FS001": (
            "Data written to a local file handle is not covered by an "
            "fsync before the success path returns."
        ),
        "FS002": (
            "os.replace/rename is followed by a dependent delete with "
            "no directory fsync in between; a crash can resurrect the "
            "old state after its files are gone."
        ),
        "FS003": (
            "close() on a handle drawn from a lock-guarded shared "
            "collection that concurrent readers may still pread; "
            "retire by unlinking without closing."
        ),
        "FS004": (
            "Engine state is rebound before the os.replace commit "
            "point it depends on; a failure between the two loses "
            "acknowledged writes."
        ),
        "FS005": (
            "Temp-file suffix is created but no recovery sweep "
            "removes it; a crash mid-publish strands the file."
        ),
        "FS006": (
            "fsync executed while a contended lock is held; every "
            "waiter behind the lock queues behind the disk flush."
        ),
    }
    rule_details = {
        "FS001": (
            "A write the function never fsyncs lives only in the page "
            "cache; a crash after the success path returns loses data "
            "the caller was told is safe.  fsync the handle (directly "
            "or via a helper the call graph can see) before "
            "returning, on the path that reports success."
        ),
        "FS002": (
            "os.replace makes the new name visible but only a fsync "
            "of the *directory* makes the rename durable.  Deleting "
            "the old state (say, a covered WAL) before that fsync "
            "means a crash can roll the rename back after the only "
            "copy of the data is gone.  Order: replace, dirfsync, "
            "then delete."
        ),
        "FS003": (
            "Immutable runs are read via pread on a shared handle; "
            "readers snapshot the run list and read outside the "
            "lock.  Retiring a run by close() hands every snapshot "
            "holder a dead descriptor — or a recycled one pointing "
            "at an unrelated file.  Retire by unlinking only; the "
            "inode dies with the last descriptor."
        ),
        "FS004": (
            "The manifest replace is the commit point of a flush.  "
            "Rebinding engine state (memtable, run list) or deleting "
            "the WAL before it means a crash in the window leaves "
            "durable-looking state the manifest never heard of — "
            "recovery sweeps it and acknowledged writes vanish.  "
            "Commit first, swap after."
        ),
        "FS005": (
            "A temp-file suffix written by the publish path but "
            "never matched by a recovery sweep strands files on "
            "every crash mid-publish, growing the directory forever. "
            " Sweep the suffix during recovery."
        ),
        "FS006": (
            "An fsync can take tens of milliseconds; holding a "
            "contended lock across it queues every waiter behind the "
            "disk.  Flush outside the lock, as the WAL group-commit "
            "path does."
        ),
    }
    rule_levels = {
        "FS001": Severity.ERROR,
        "FS002": Severity.ERROR,
        "FS003": Severity.ERROR,
        "FS004": Severity.ERROR,
        "FS005": Severity.WARNING,
        "FS006": Severity.INFO,
    }
    help_uri = "DESIGN.md#filesystem-crash-consistency-rules"

    def check_project(
        self,
        modules: Sequence[ModuleInfo],
        context: Optional[ProjectContext] = None,
    ) -> List[Finding]:
        if context is None:
            context = ProjectContext(modules)
        model = context.fs_model
        if not model.summaries:
            return []
        findings: List[Finding] = []
        for symbol in sorted(model.summaries):
            summary = model.summaries[symbol]
            findings.extend(self._fs001(summary))
            inlined = model.inlined_effects(symbol)
            findings.extend(self._fs002(summary, inlined))
            findings.extend(self._fs003(summary))
            findings.extend(self._fs004(summary, inlined))
        findings.extend(self._fs005(model))
        findings.extend(self._fs006(model, context))
        return findings

    # -- FS001: unsynced write handles -------------------------------------------

    def _fs001(self, summary: FsFunctionSummary) -> List[Finding]:
        findings: List[Finding] = []
        for handle in summary.handles:
            if (
                handle.writes == 0
                or handle.escaped
                or handle.fsynced_after_write
            ):
                continue
            findings.append(
                Finding(
                    rule_id="FS001",
                    severity=Severity.ERROR,
                    message=(
                        "data written to %r (opened line %d, mode %r) "
                        "is never fsync-covered before %s succeeds; a "
                        "crash after the success return loses it from "
                        "the page cache"
                        % (
                            handle.name,
                            handle.opened_line,
                            handle.mode,
                            _short(summary.symbol),
                        )
                    ),
                    path=summary.info.module.path,
                    line=handle.last_write_line or handle.opened_line,
                    col=0,
                    symbol=summary.info.qual,
                )
            )
        return findings

    # -- FS002: replace without dirfsync before dependent deletes ----------------

    def _fs002(
        self, summary: FsFunctionSummary, inlined: List[FsEffect]
    ) -> List[Finding]:
        findings: List[Finding] = []
        pending: Optional[FsEffect] = None
        for effect in inlined:
            if effect.in_handler:
                continue
            if effect.kind == "replace":
                pending = effect
            elif effect.kind == "dirfsync":
                pending = None
            elif (
                effect.kind == "unlink"
                and pending is not None
                and not effect.inlined
            ):
                findings.append(
                    Finding(
                        rule_id="FS002",
                        severity=Severity.ERROR,
                        message=(
                            "delete of %s at line %d follows the "
                            "os.replace of %s (line %d) with no "
                            "directory fsync in between; a crash can "
                            "resurrect the pre-rename state after "
                            "this file is gone"
                            % (
                                effect.target,
                                effect.line,
                                pending.target,
                                pending.line,
                            )
                        ),
                        path=summary.info.module.path,
                        line=effect.line,
                        col=effect.col,
                        symbol=summary.info.qual,
                    )
                )
                pending = None
        return findings

    # -- FS003: close on a reader-visible handle before unlink -------------------

    def _fs003(self, summary: FsFunctionSummary) -> List[Finding]:
        findings: List[Finding] = []
        closed_visible: Dict[str, FsEffect] = {}
        for effect in summary.effects:
            if effect.in_handler:
                continue
            if (
                effect.kind == "close"
                and effect.detail == "reader-visible"
            ):
                closed_visible[effect.target] = effect
            elif effect.kind == "unlink":
                for name, close_effect in closed_visible.items():
                    if effect.target == name or effect.target.startswith(
                        name + "."
                    ):
                        findings.append(
                            Finding(
                                rule_id="FS003",
                                severity=Severity.ERROR,
                                message=(
                                    "%s is closed (line %d) and then "
                                    "unlinked (line %d), but it was "
                                    "drawn from a lock-guarded shared "
                                    "collection: a reader holding a "
                                    "pre-swap snapshot still preads "
                                    "this fd — close hands it EBADF "
                                    "or a recycled descriptor; unlink "
                                    "without closing instead"
                                    % (
                                        name,
                                        close_effect.line,
                                        effect.line,
                                    )
                                ),
                                path=summary.info.module.path,
                                line=effect.line,
                                col=effect.col,
                                symbol=summary.info.qual,
                            )
                        )
        return findings

    # -- FS004: state swap before the commit point -------------------------------

    def _fs004(
        self, summary: FsFunctionSummary, inlined: List[FsEffect]
    ) -> List[Finding]:
        replace_lines = [
            effect.line
            for effect in inlined
            if effect.kind == "replace" and not effect.in_handler
        ]
        if not replace_lines:
            return []
        last_replace = max(replace_lines)
        findings: List[Finding] = []
        for attr, line, col, in_handler in summary.attr_writes:
            if in_handler:
                continue
            read_line = summary.attr_reads.get(attr)
            if read_line is None or read_line >= line:
                continue  # not the read-swap-commit shape
            if line >= last_replace:
                continue  # swap is already past the commit point
            findings.append(
                Finding(
                    rule_id="FS004",
                    severity=Severity.ERROR,
                    message=(
                        "self.%s is rebound at line %d before the "
                        "os.replace commit point at line %d; a "
                        "failure between the two leaves the "
                        "in-memory state ahead of what is durable, "
                        "making acknowledged writes invisible"
                        % (attr, line, last_replace)
                    ),
                    path=summary.info.module.path,
                    line=line,
                    col=col,
                    symbol=summary.info.qual,
                )
            )
        return findings

    # -- FS005: temp suffixes without a recovery sweep ---------------------------

    def _fs005(self, model: FsModel) -> List[Finding]:
        swept: Set[str] = set()
        for summary in model.summaries.values():
            if any(e.kind == "unlink" for e in summary.effects):
                swept |= summary.sweep_suffixes
        findings: List[Finding] = []
        for symbol in sorted(model.summaries):
            summary = model.summaries[symbol]
            for suffix, line in summary.temp_suffixes:
                if suffix in swept:
                    continue
                findings.append(
                    Finding(
                        rule_id="FS005",
                        severity=Severity.WARNING,
                        message=(
                            "temp files with suffix %r are created "
                            "here but no recovery sweep "
                            "(endswith+unlink) removes them; a crash "
                            "mid-publish strands the file forever"
                            % suffix
                        ),
                        path=summary.info.module.path,
                        line=line,
                        col=0,
                        symbol=summary.info.qual,
                    )
                )
        return findings

    # -- FS006: fsync under a contended lock -------------------------------------

    def _fs006(
        self, model: FsModel, context: ProjectContext
    ) -> List[Finding]:
        locks = context.locks
        contended: Set[str] = set()
        for edge in locks.graph.edges:
            contended.add(edge.src)
            contended.add(edge.dst)
        findings: List[Finding] = []
        for symbol in sorted(model.summaries):
            summary = model.summaries[symbol]
            fsyncs = [
                e
                for e in summary.effects
                if e.kind in ("fsync", "dirfsync") and not e.in_handler
            ]
            if not fsyncs:
                continue
            held = self._held_contended(
                symbol, summary, fsyncs, contended, locks.held_in
            )
            if held is None:
                continue
            lock_name, witness = held
            findings.append(
                Finding(
                    rule_id="FS006",
                    severity=Severity.INFO,
                    message=(
                        "fsync in %s runs while %s is held (a lock "
                        "on the project's lock-order graph); every "
                        "waiter behind it queues behind this disk "
                        "flush — consider syncing outside the lock "
                        "(group commit)"
                        % (_short(symbol), _short(lock_name))
                    ),
                    path=summary.info.module.path,
                    line=witness.line,
                    col=witness.col,
                    symbol=summary.info.qual,
                )
            )
        return findings

    def _held_contended(
        self,
        symbol: str,
        summary: FsFunctionSummary,
        fsyncs: List[FsEffect],
        contended: Set[str],
        held_in: Dict[str, Set[Tuple[str, str]]],
    ) -> Optional[Tuple[str, FsEffect]]:
        """(lock, witness effect) when an fsync runs under a hot lock."""
        class_symbol = summary.info.class_symbol
        for effect in fsyncs:
            if effect.under_lock and class_symbol is not None:
                key = "%s.%s" % (class_symbol, effect.under_lock)
                if key in contended:
                    return key, effect
        ambient = [
            key
            for key, _mode in held_in.get(symbol, set())
            if key in contended
        ]
        if ambient:
            return sorted(ambient)[0], fsyncs[0]
        return None
