"""CC: cache-coherence rules over the stale-cache model.

Built on :mod:`repro.analysis.cachemodel`, which discovers the
project's caches and version tokens and extracts ordered
cache-coherence effect sequences per function, spliced through the
PR-3 call graph.  These rules machine-check the invalidation contract
PR 4 established by hand:

* **CC001** — a cache read with no version token in its key and no
  other freshness story.  Pure memos (keys capture the full input),
  stamp-validated reads (the plan cache's write-volume rule), and
  push-invalidated caches (an owner explicitly drops entries on every
  mutation) are exempt; everything else is a stale hit waiting for
  the first metadata change.
* **CC002** — a cache fill whose key was built from a version captured
  *after* the governed data was read.  A mutation sliding into that
  window stores stale data under the fresh version's key, where it is
  served forever — worse than unkeyed, because nothing ever evicts it.
* **CC003** — a mutation of governed state that reaches no version
  bump or explicit invalidation on some path, including unwind: a
  mutation whose covering bump sits after a call that may raise is
  only safe when the bump lives in a ``finally``.
* **CC004** — the bump published *before* the mutation it covers is
  visible, with no later re-bump.  Readers that miss on the new
  version can fill from the not-yet-mutated state and keep serving it
  under the new key.
* **CC005** (warning) — a cache filled under a lock that is released
  before the fill path's version check runs: the check validates a
  moment that ended when the lock dropped.
* **CC006** (info) — a value derived from one shard's state, shared
  across every shard's closure without a shard id in any key.  Often
  deliberate (shard-independent plan bounds); flagged so the sharing
  is consciously justified in the baseline.

The runtime epoch tracer (:mod:`repro.sanitizer.cachetrace`) observes
the same contract live and cross-validates both directions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cachemodel import (
    CacheEffect,
    CacheFunctionSummary,
    CacheModel,
)
from repro.analysis.checker import (
    ModuleInfo,
    ProjectChecker,
    ProjectContext,
    register,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["CacheCoherenceChecker"]


def _short(symbol: str) -> str:
    """Last two dotted components — enough to identify a function."""
    return ".".join(symbol.rsplit(".", 2)[-2:])


@register
class CacheCoherenceChecker(ProjectChecker):
    """Whole-project cache-coherence analysis (CC rules)."""

    name = "cache-coherence"
    description = (
        "every cache is version-keyed and every mutation of governed "
        "state reaches a version bump, on all paths including unwind"
    )
    rules = {
        "CC001": "cache read with no version token in its key",
        "CC002": (
            "cache key built from a version captured after the data "
            "it guards was read"
        ),
        "CC003": (
            "mutation of version-governed state reaches no version "
            "bump or invalidation on some path (including unwind)"
        ),
        "CC004": (
            "version bump published before the mutation it covers is "
            "visible"
        ),
        "CC005": (
            "cache filled under a lock released before the version "
            "check"
        ),
        "CC006": (
            "per-shard derived value shared across shard closures "
            "without a shard-id key component"
        ),
    }
    rule_details = {
        "CC001": (
            "The read path of this cache incorporates no version "
            "token (metadata_version, storage epoch, DDL generation) "
            "in its key, and the cache is neither a pure memo, nor "
            "stamp-validated at hit time, nor push-invalidated by its "
            "owners.  The first split/migration/DDL makes every entry "
            "stale, and stale routing or plan state silently returns "
            "wrong query results.  Key the read on the governing "
            "version, or validate/invalidate entries explicitly."
        ),
        "CC002": (
            "The version that keys this fill was captured after the "
            "governed data was read.  A concurrent mutation in that "
            "window bumps the version first, so the stale derivation "
            "is stored under the fresh key — and since version-keyed "
            "caches rely on the key space moving on, nothing ever "
            "evicts it.  Capture the version before reading the data "
            "it stamps."
        ),
        "CC003": (
            "This mutation of version-governed state can complete "
            "without the governing version bump or an explicit cache "
            "invalidation — on the fall-through path, or on unwind "
            "when a later statement raises first.  Version-keyed "
            "caches then keep serving pre-mutation state under the "
            "still-current key.  Bump the version (in a finally when "
            "calls separate mutation from bump) or invalidate the "
            "caches explicitly."
        ),
        "CC004": (
            "The version bump is published before the mutation it "
            "covers, with no later re-bump.  A reader that misses on "
            "the new version between the two fills its cache from the "
            "old state and keeps serving it under the new key.  Bump "
            "after the mutation is visible, or re-bump afterwards."
        ),
        "CC005": (
            "The cache entry is populated under a lock that is "
            "released before the version check on the same path runs, "
            "so the check validates state that may have changed since "
            "the fill.  Perform the check while the lock is held, or "
            "re-validate after reacquiring."
        ),
        "CC006": (
            "A value derived from one shard's state is captured by "
            "closures that run against every targeted shard, and no "
            "shard id distinguishes the consumers.  This is correct "
            "only when the value is genuinely shard-independent; "
            "justify that in the baseline or add a shard-id key "
            "component."
        ),
    }
    rule_levels = {
        "CC001": Severity.ERROR,
        "CC002": Severity.ERROR,
        "CC003": Severity.ERROR,
        "CC004": Severity.ERROR,
        "CC005": Severity.WARNING,
        "CC006": Severity.INFO,
    }
    help_uri = "DESIGN.md#cache-coherence-rules"

    def check_project(
        self,
        modules: Sequence[ModuleInfo],
        context: Optional[ProjectContext] = None,
    ) -> List[Finding]:
        if context is None:
            context = ProjectContext(modules)
        model = context.cache_model
        findings: List[Finding] = []
        push_invalidated = _push_invalidated_caches(model)
        for symbol in sorted(model.summaries):
            summary = model.summaries[symbol]
            inlined = model.inlined_effects(symbol)
            findings.extend(
                self._check_unkeyed_reads(
                    model, summary, push_invalidated
                )
            )
            findings.extend(self._check_key_skew(model, summary))
            findings.extend(
                self._check_bump_before_mutation(
                    model, summary, inlined
                )
            )
            findings.extend(
                self._check_unwind_window(model, summary, inlined)
            )
            findings.extend(self._check_lock_window(summary))
            findings.extend(self._check_shard_sharing(summary))
        findings.extend(self._check_missing_bumps(model))
        return findings

    # -- CC001 -------------------------------------------------------------------

    def _check_unkeyed_reads(
        self,
        model: CacheModel,
        summary: CacheFunctionSummary,
        push_invalidated: Set[str],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for effect in summary.effects:
            if effect.kind != "read" or effect.keyed:
                continue
            cache = _cache_by_name(model, effect.target)
            if cache is None:
                continue
            if cache.pure_memo or cache.stamp_validated:
                continue
            if cache.name in push_invalidated:
                continue
            # The cache's own methods reading their own store are the
            # mechanism, not a use site.
            if summary.info.class_symbol == cache.class_symbol:
                continue
            findings.append(
                Finding(
                    rule_id="CC001",
                    severity=Severity.ERROR,
                    message=(
                        "%s is read with no version token in its key "
                        "and has no stamp validation, pure-memo "
                        "keying, or push invalidation — the first "
                        "metadata change makes every hit stale"
                        % effect.target
                    ),
                    path=summary.info.module.path,
                    line=effect.line,
                    col=effect.col,
                    symbol=summary.info.qual,
                )
            )
        return findings

    # -- CC002 -------------------------------------------------------------------

    def _check_key_skew(
        self, model: CacheModel, summary: CacheFunctionSummary
    ) -> List[Finding]:
        findings: List[Finding] = []
        governed = set(model.governing_tokens)
        if not governed:
            return findings
        for effect in summary.effects:
            if effect.kind != "fill" or not effect.keyed:
                continue
            if not effect.key_source.startswith("attr:"):
                continue  # "param": the caller fixed the pairing
            capture_line = int(effect.key_source.split(":", 1)[1])
            earlier_reads = [
                (attr, line)
                for attr, line in summary.field_reads
                if attr in governed and line < capture_line
            ]
            if not earlier_reads:
                continue
            attr, line = min(earlier_reads, key=lambda item: item[1])
            findings.append(
                Finding(
                    rule_id="CC002",
                    severity=Severity.ERROR,
                    message=(
                        "%s fill keys on a version captured at line "
                        "%d, after governed field %r was read at line "
                        "%d — a mutation in that window stores stale "
                        "data under the fresh key, permanently"
                        % (effect.target, capture_line, attr, line)
                    ),
                    path=summary.info.module.path,
                    line=effect.line,
                    col=effect.col,
                    symbol=summary.info.qual,
                )
            )
        return findings

    # -- CC003 (missing bump, with caller obligations) ---------------------------

    def _check_missing_bumps(self, model: CacheModel) -> List[Finding]:
        findings: List[Finding] = []
        satisfied_cache: Dict[str, bool] = {}
        for symbol in sorted(model.summaries):
            summary = model.summaries[symbol]
            inlined = model.inlined_effects(symbol)
            for index, effect in enumerate(summary.effects):
                if effect.kind != "mutate":
                    continue
                if effect.in_handler or effect.detail == "fresh":
                    continue
                tokens = model.governing_tokens.get(effect.target)
                if not tokens:
                    continue
                if _covered_after(
                    inlined, effect.line, effect.col, tokens
                ):
                    continue
                if _bumped_before(
                    inlined, effect.line, effect.col, tokens
                ):
                    continue  # mis-ordered, not missing: CC004 reports it
                if _callers_cover(
                    model,
                    symbol,
                    tokens,
                    satisfied_cache,
                    frozenset((symbol,)),
                ):
                    continue
                findings.append(
                    Finding(
                        rule_id="CC003",
                        severity=Severity.ERROR,
                        message=(
                            "mutation of %r (governed by %s) reaches "
                            "no version bump or invalidation in %s "
                            "or any caller"
                            % (
                                effect.target,
                                "/".join(sorted(tokens)),
                                _short(symbol),
                            )
                        ),
                        path=summary.info.module.path,
                        line=effect.line,
                        col=effect.col,
                        symbol=summary.info.qual,
                    )
                )
        return findings

    # -- CC003 (unwind window) ---------------------------------------------------

    def _check_unwind_window(
        self,
        model: CacheModel,
        summary: CacheFunctionSummary,
        inlined: List[CacheEffect],
    ) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[Tuple[int, int]] = set()
        for index, effect in enumerate(inlined):
            if effect.kind != "mutate":
                continue
            if effect.in_handler or effect.detail == "fresh":
                continue
            tokens = model.governing_tokens.get(effect.target)
            if not tokens:
                continue
            bump_index: Optional[int] = None
            for later in range(index + 1, len(inlined)):
                candidate = inlined[later]
                if (
                    candidate.kind in ("bump", "invalidate")
                    and not candidate.in_handler
                    and (
                        candidate.kind == "invalidate"
                        or candidate.detail in tokens
                    )
                ):
                    bump_index = later
                    break
            if bump_index is None:
                continue  # CC003-missing handles the uncovered case
            bump = inlined[bump_index]
            if (bump.line, bump.col) == (effect.line, effect.col):
                # Mutation and bump collapsed into one call site: the
                # whole window lives inside the callee and is reported
                # there, where the fix belongs.
                continue
            if bump.in_finally:
                continue  # unwind-safe by construction
            risky = any(
                inlined[mid].kind == "call"
                for mid in range(index + 1, bump_index)
            )
            if not risky:
                continue
            anchor = (effect.line, effect.col)
            if anchor in reported:
                continue
            reported.add(anchor)
            findings.append(
                Finding(
                    rule_id="CC003",
                    severity=Severity.ERROR,
                    message=(
                        "mutation of %r is separated from its %s "
                        "bump by call(s) that may raise — an unwind "
                        "leaves the mutation visible with no bump; "
                        "move the bump into a finally"
                        % (effect.target, "/".join(sorted(tokens)))
                    ),
                    path=summary.info.module.path,
                    line=effect.line,
                    col=effect.col,
                    symbol=summary.info.qual,
                )
            )
        return findings

    # -- CC004 -------------------------------------------------------------------

    def _check_bump_before_mutation(
        self,
        model: CacheModel,
        summary: CacheFunctionSummary,
        inlined: List[CacheEffect],
    ) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[Tuple[int, int]] = set()
        for index, effect in enumerate(inlined):
            if effect.kind != "bump":
                continue
            if effect.in_handler:
                continue
            token = effect.detail
            for later in range(index + 1, len(inlined)):
                mutate = inlined[later]
                if mutate.kind != "mutate":
                    continue
                if mutate.in_handler or mutate.detail == "fresh":
                    continue
                if token not in model.governing_tokens.get(
                    mutate.target, set()
                ):
                    continue
                if (effect.line, effect.col) == (
                    mutate.line,
                    mutate.col,
                ):
                    continue  # one call site: judged in the callee
                rebumped = any(
                    inlined[after].kind == "bump"
                    and inlined[after].detail == token
                    and not inlined[after].in_handler
                    for after in range(later + 1, len(inlined))
                )
                if rebumped:
                    continue
                anchor = (mutate.line, mutate.col)
                if anchor in reported:
                    continue
                reported.add(anchor)
                findings.append(
                    Finding(
                        rule_id="CC004",
                        severity=Severity.ERROR,
                        message=(
                            "%s is bumped at line %d before the "
                            "mutation of %r it covers, with no later "
                            "re-bump — a reader filling between the "
                            "two caches pre-mutation state under the "
                            "new version"
                            % (token, effect.line, mutate.target)
                        ),
                        path=summary.info.module.path,
                        line=mutate.line,
                        col=mutate.col,
                        symbol=summary.info.qual,
                    )
                )
        return findings

    # -- CC005 -------------------------------------------------------------------

    def _check_lock_window(
        self, summary: CacheFunctionSummary
    ) -> List[Finding]:
        findings: List[Finding] = []
        for index, effect in enumerate(summary.effects):
            if effect.kind != "fill" or not effect.under_lock:
                continue
            for later in range(index + 1, len(summary.effects)):
                check = summary.effects[later]
                if check.kind == "vcheck" and not check.under_lock:
                    findings.append(
                        Finding(
                            rule_id="CC005",
                            severity=Severity.WARNING,
                            message=(
                                "%s is filled under lock %r but the "
                                "version check at line %d runs after "
                                "the lock is released — the check "
                                "validates a moment that already "
                                "ended"
                                % (
                                    effect.target,
                                    effect.under_lock,
                                    check.line,
                                )
                            ),
                            path=summary.info.module.path,
                            line=effect.line,
                            col=effect.col,
                            symbol=summary.info.qual,
                        )
                    )
                    break
        return findings

    # -- CC006 -------------------------------------------------------------------

    def _check_shard_sharing(
        self, summary: CacheFunctionSummary
    ) -> List[Finding]:
        findings: List[Finding] = []
        for name, line in summary.shared_shard_derived:
            findings.append(
                Finding(
                    rule_id="CC006",
                    severity=Severity.INFO,
                    message=(
                        "%r is derived from one shard's state but "
                        "shared across every shard's closure with no "
                        "shard-id key component — justify that the "
                        "value is shard-independent" % name
                    ),
                    path=summary.info.module.path,
                    line=line,
                    col=0,
                    symbol=summary.info.qual,
                )
            )
        return findings


# -- shared helpers ----------------------------------------------------------


def _cache_by_name(model: CacheModel, name: str):
    for cache in model.caches.values():
        if cache.name == name:
            return cache
    return None


def _push_invalidated_caches(model: CacheModel) -> Set[str]:
    """Cache names some *owner* (outside the class) invalidates.

    The plan cache's coherence story: the service calls
    ``invalidate_collection`` on every DDL and the write counter feeds
    ``note_writes`` — invalidation is pushed at mutation sites rather
    than pulled from a key.
    """
    out: Set[str] = set()
    for summary in model.summaries.values():
        for effect in summary.effects:
            if effect.kind != "invalidate":
                continue
            cache = _cache_by_name(model, effect.target)
            if cache is None:
                continue
            if summary.info.class_symbol != cache.class_symbol:
                out.add(cache.name)
    return out


def _covered_after(
    inlined: List[CacheEffect],
    line: int,
    col: int,
    tokens: Set[str],
) -> bool:
    """Whether a bump/invalidation follows the mutation at (line, col).

    Works over the *inlined* view so a mutation performed inside a
    callee (``metadata.split_chunk``) is covered by the caller's bump
    after the call site.
    """
    site = _site_end(inlined, line, col)
    if site is None:
        return False
    for later in range(site, len(inlined)):
        effect = inlined[later]
        if effect.in_handler:
            continue
        if effect.kind == "invalidate":
            return True
        if effect.kind == "bump" and effect.detail in tokens:
            return True
    return False


def _bumped_before(
    inlined: List[CacheEffect],
    line: int,
    col: int,
    tokens: Set[str],
) -> bool:
    """Whether a governing bump precedes the mutation at (line, col).

    A mutation with a bump *before* it is mis-ordered rather than
    uncovered; CC004 owns that case, so CC003-missing stands down.
    """
    for effect in inlined:
        if effect.line == line and effect.col == col:
            return False
        if (
            effect.kind == "bump"
            and not effect.in_handler
            and effect.detail in tokens
        ):
            return True
    return False


def _site_end(
    inlined: List[CacheEffect], line: int, col: int
) -> Optional[int]:
    """Index just past the last inlined effect at a source position."""
    last: Optional[int] = None
    for index, effect in enumerate(inlined):
        if effect.line == line and effect.col == col:
            last = index
    if last is None:
        return None
    return last + 1


def _callers_cover(
    model: CacheModel,
    symbol: str,
    tokens: Set[str],
    cache: Dict[str, bool],
    seen: frozenset,
) -> bool:
    """Whether every caller bumps/invalidates after calling ``symbol``.

    The holder-obligation pattern: ``catalog.split_chunk`` mutates the
    chunk list and the cluster bumps right after the call.  Recursion
    covers wrappers; a function with no callers at the leaf leaves the
    mutation uncovered.
    """
    callers = [c for c in model.callers_of(symbol) if c not in seen]
    if not callers:
        return False
    for caller in callers:
        key = "%s->%s" % (caller, symbol)
        if key in cache:
            if not cache[key]:
                return False
            continue
        inlined = model.inlined_effects(caller)
        caller_summary = model.summaries[caller]
        covered_here = False
        for effect in caller_summary.effects:
            if effect.kind != "call":
                continue
            if symbol not in effect.detail.split(","):
                continue
            if _covered_after(inlined, effect.line, effect.col, tokens):
                covered_here = True
            else:
                covered_here = False
                break
        if not covered_here:
            covered_here = _callers_cover(
                model, caller, tokens, cache, seen | {caller}
            )
        cache[key] = covered_here
        if not covered_here:
            return False
    return True
