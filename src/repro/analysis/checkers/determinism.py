"""Determinism rules (DT).

Plan selection and shard targeting must be reproducible: two routers
looking at the same metadata must pick the same shards, and two shards
racing the same plan must pick the same index.  Iterating a ``set``
(whose order varies with hash seeding), popping an arbitrary element,
or timing durations with the settable wall clock all quietly break
that.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.astutil import (
    FunctionNode,
    dotted_name,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import Checker, ModuleInfo, register
from repro.analysis.findings import Finding, Severity

__all__ = ["DeterminismChecker"]

SET_BUILTINS = {"set", "frozenset"}


def _is_unordered_expr(node: ast.expr) -> bool:
    """Whether an expression evidently evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in SET_BUILTINS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@register
class DeterminismChecker(Checker):
    """DT rules: ordered iteration, no set.pop(), monotonic durations."""

    name = "determinism"
    description = (
        "iteration feeding plan/targeting decisions is explicitly "
        "ordered, and durations use the monotonic clock"
    )
    rules = {
        "DT001": (
            "iteration directly over a set expression; order varies "
            "with hash seeding — wrap in sorted()"
        ),
        "DT002": (
            "set.pop() removes an arbitrary element; pick "
            "deterministically (sorted(...)[0], min, max)"
        ),
        "DT003": (
            "time.time() is wall-clock and can jump; use "
            "time.perf_counter()/monotonic() for durations and keep "
            "time.time() only for reported timestamps"
        ),
    }

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run all DT rules over one module."""
        findings: List[Finding] = []
        for qual, func, _cls in iter_functions(module.tree):
            findings.extend(self._check_scope(module, qual, func))
        return findings

    def _check_scope(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        set_vars = self._set_variables(func)
        for node in walk_within_function(func):
            if isinstance(node, ast.For) and _is_unordered_expr(node.iter):
                findings.append(
                    self._finding("DT001", module, qual, node.iter)
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if _is_unordered_expr(gen.iter):
                        findings.append(
                            self._finding("DT001", module, qual, gen.iter)
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and not node.keywords
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in set_vars
            ):
                findings.append(self._finding("DT002", module, qual, node))
            elif (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "time.time"
            ):
                findings.append(self._finding("DT003", module, qual, node))
        return findings

    def _finding(
        self, rule_id: str, module: ModuleInfo, qual: str, node: ast.AST
    ) -> Finding:
        return Finding(
            rule_id=rule_id,
            severity=(
                Severity.WARNING if rule_id == "DT003" else Severity.ERROR
            ),
            message=self.rules[rule_id],
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=qual,
        )

    @staticmethod
    def _set_variables(func: FunctionNode) -> Set[str]:
        """Names bound to an evident set value in this scope."""
        names: Set[str] = set()
        for node in walk_within_function(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_unordered_expr(
                    node.value
                ):
                    names.add(target.id)
        return names
