"""Determinism rules (DT).

Plan selection and shard targeting must be reproducible: two routers
looking at the same metadata must pick the same shards, and two shards
racing the same plan must pick the same index.  Iterating a ``set``
(whose order varies with hash seeding), popping an arbitrary element,
or timing durations with the settable wall clock all quietly break
that.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.astutil import (
    FunctionNode,
    dotted_name,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import Checker, ModuleInfo, register
from repro.analysis.findings import Finding, Severity

__all__ = ["DeterminismChecker"]

SET_BUILTINS = {"set", "frozenset"}

#: Builtins whose result does not depend on the order their (sole)
#: iterable argument is consumed in — a comprehension over a set fed
#: straight into one of these is deterministic end to end.
ORDER_INSENSITIVE_CONSUMERS = {
    "all",
    "any",
    "frozenset",
    "len",
    "max",
    "min",
    "set",
    "sorted",
    "sum",
}

#: Logger methods; ``time.time()`` passed to one is a reported
#: timestamp, which is exactly what the wall clock is for.
LOG_METHODS = {
    "critical",
    "debug",
    "error",
    "exception",
    "info",
    "log",
    "warning",
}


def _is_timestampish(name: str) -> bool:
    """Whether a name advertises a wall-clock timestamp."""
    lowered = name.lower()
    return (
        "timestamp" in lowered
        or lowered == "ts"
        or lowered.endswith("_at")
    )


def _is_time_time(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "time.time"
    )


def _is_unordered_expr(node: ast.expr) -> bool:
    """Whether an expression evidently evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in SET_BUILTINS:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@register
class DeterminismChecker(Checker):
    """DT rules: ordered iteration, no set.pop(), monotonic durations."""

    name = "determinism"
    description = (
        "iteration feeding plan/targeting decisions is explicitly "
        "ordered, and durations use the monotonic clock"
    )
    rules = {
        "DT001": (
            "iteration directly over a set expression; order varies "
            "with hash seeding — wrap in sorted()"
        ),
        "DT002": (
            "set.pop() removes an arbitrary element; pick "
            "deterministically (sorted(...)[0], min, max)"
        ),
        "DT003": (
            "time.time() is wall-clock and can jump; use "
            "time.perf_counter()/monotonic() for durations and keep "
            "time.time() only for reported timestamps"
        ),
    }
    rule_details = {
        "DT001": (
            "Set iteration order depends on hash seeding, so any "
            "output derived from it differs between runs and Python "
            "versions — benchmark tables are diffed across both.  "
            "Wrap the set in sorted() unless the result is consumed "
            "whole (sum, min, max, another set)."
        ),
        "DT002": (
            "set.pop() removes an arbitrary element, so work order "
            "and tie-breaking vary per run.  Pick deterministically: "
            "sorted(s)[0], min(s), or max(s)."
        ),
        "DT003": (
            "time.time() is wall-clock: NTP steps and DST make "
            "durations computed from it wrong by arbitrary amounts.  "
            "Use time.perf_counter() or time.monotonic() for "
            "durations; time.time() is fine for reported timestamps."
        ),
    }
    rule_levels = {
        "DT001": Severity.ERROR,
        "DT002": Severity.ERROR,
        "DT003": Severity.WARNING,
    }
    help_uri = "DESIGN.md#rule-catalog"

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run all DT rules over one module."""
        findings: List[Finding] = []
        for qual, func, _cls in iter_functions(module.tree):
            findings.extend(self._check_scope(module, qual, func))
        return findings

    def _check_scope(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        set_vars = self._set_variables(func)
        consumed = self._order_insensitive_comprehensions(func)
        timestamps = self._wall_clock_timestamps(func)
        for node in walk_within_function(func):
            if isinstance(node, ast.For) and _is_unordered_expr(node.iter):
                findings.append(
                    self._finding("DT001", module, qual, node.iter)
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                # A SetComp lands in a set again, and a comprehension
                # consumed whole by sorted()/sum()/... cannot leak the
                # iteration order either way.
                if isinstance(node, ast.SetComp) or id(node) in consumed:
                    continue
                for gen in node.generators:
                    if _is_unordered_expr(gen.iter):
                        findings.append(
                            self._finding("DT001", module, qual, gen.iter)
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and not node.keywords
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in set_vars
            ):
                findings.append(self._finding("DT002", module, qual, node))
            elif _is_time_time(node) and id(node) not in timestamps:
                findings.append(self._finding("DT003", module, qual, node))
        return findings

    @staticmethod
    def _order_insensitive_comprehensions(func: FunctionNode) -> Set[int]:
        """Comprehensions fed whole into an order-insensitive builtin."""
        exempt: Set[int] = set()
        for node in walk_within_function(func):
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) in ORDER_INSENSITIVE_CONSUMERS
                and len(node.args) == 1
                and isinstance(
                    node.args[0],
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp),
                )
            ):
                exempt.add(id(node.args[0]))
        return exempt

    @staticmethod
    def _wall_clock_timestamps(func: FunctionNode) -> Set[int]:
        """``time.time()`` calls used as timestamps, not durations.

        DT003 is about durations: the wall clock can jump and make an
        elapsed-time subtraction negative.  A ``time.time()`` recorded
        *as a point in time* — logged, or stored under a name that says
        timestamp — is the wall clock's legitimate job.
        """
        exempt: Set[int] = set()
        for node in walk_within_function(func):
            if isinstance(node, ast.Call):
                is_log_call = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in LOG_METHODS
                ) or dotted_name(node.func) == "print"
                for arg in node.args:
                    if _is_time_time(arg) and is_log_call:
                        exempt.add(id(arg))
                for keyword in node.keywords:
                    if _is_time_time(keyword.value) and (
                        is_log_call
                        or (
                            keyword.arg is not None
                            and _is_timestampish(keyword.arg)
                        )
                    ):
                        exempt.add(id(keyword.value))
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and _is_timestampish(target.id)
                    and _is_time_time(node.value)
                ):
                    exempt.add(id(node.value))
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and _is_timestampish(key.value)
                        and _is_time_time(value)
                    ):
                        exempt.add(id(value))
        return exempt

    def _finding(
        self, rule_id: str, module: ModuleInfo, qual: str, node: ast.AST
    ) -> Finding:
        return Finding(
            rule_id=rule_id,
            severity=(
                Severity.WARNING if rule_id == "DT003" else Severity.ERROR
            ),
            message=self.rules[rule_id],
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=qual,
        )

    @staticmethod
    def _set_variables(func: FunctionNode) -> Set[str]:
        """Names bound to an evident set value in this scope."""
        names: Set[str] = set()
        for node in walk_within_function(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_unordered_expr(
                    node.value
                ):
                    names.add(target.id)
        return names
