"""Concurrency-hygiene rules (CH).

Race shapes that survive code review because each looks locally
harmless: check-then-act on shared mappings, lazy initialization
without a lock, threads spawned without join/daemon discipline, and
``Future.result()`` waits with no timeout (which turn a stuck shard
into a stuck service).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.astutil import (
    FunctionNode,
    collect_lock_attrs,
    dotted_name,
    iter_classes,
    iter_functions,
    walk_within_function,
)
from repro.analysis.checker import Checker, ModuleInfo, register
from repro.analysis.checkers.lock_discipline import (
    _lock_guard_in_with_item,
    _owned_attr,
)
from repro.analysis.findings import Finding, Severity

__all__ = ["ConcurrencyChecker"]

THREAD_FACTORIES = {"threading.Thread", "Thread"}


@register
class ConcurrencyChecker(Checker):
    """CH rules: check-then-act, lazy init, thread and future hygiene."""

    name = "concurrency"
    description = (
        "no unguarded check-then-act or lazy init on shared state, "
        "threads join or daemonize, Future.result() waits are bounded"
    )
    rules = {
        "CH001": (
            "check-then-act on a shared mapping of a lock-owning class "
            "outside a lock-holding scope"
        ),
        "CH002": (
            "lazy initialization of a shared attribute without holding "
            "the class's lock"
        ),
        "CH003": (
            "threading.Thread created without daemon=True and never "
            "joined in the same function"
        ),
        "CH004": (
            "Future.result() with no timeout; a stuck subquery blocks "
            "the caller forever"
        ),
    }
    rule_details = {
        "CH001": (
            "Reading shared state to decide whether to write it is "
            "only atomic under the lock that guards the state; two "
            "threads passing the check concurrently both act, and the "
            "second silently clobbers the first.  Hold the class's "
            "lock across the check and the act."
        ),
        "CH002": (
            "Lazy initialisation outside the lock lets two threads "
            "observe the attribute unset and both build it; one "
            "build (and anything registered against it) is lost.  "
            "Initialise under the lock or eagerly in __init__."
        ),
        "CH003": (
            "A non-daemon thread that is never joined outlives the "
            "function that spawned it and can keep the process alive "
            "at shutdown.  Either join it on every exit path or mark "
            "it daemon=True so interpreter exit is not blocked."
        ),
        "CH004": (
            "Future.result() with no timeout turns a stuck worker "
            "into a stuck caller.  Pass a timeout, or wait on the "
            "future's completion first so the result call cannot "
            "block."
        ),
    }
    rule_levels = {
        "CH001": Severity.ERROR,
        "CH002": Severity.ERROR,
        "CH003": Severity.WARNING,
        "CH004": Severity.WARNING,
    }
    help_uri = "DESIGN.md#rule-catalog"

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run all CH rules over one module."""
        findings: List[Finding] = []
        findings.extend(self._check_guarded_patterns(module))
        for qual, func, _cls in iter_functions(module.tree):
            findings.extend(self._check_thread_join(module, qual, func))
            findings.extend(self._check_future_result(module, qual, func))
        return findings

    # -- CH001 / CH002 (scoped to lock-owning classes) -------------------------

    def _check_guarded_patterns(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for cls_qual, cls in iter_classes(module.tree):
            lock_attrs = collect_lock_attrs(cls)
            if not lock_attrs:
                continue
            owners = {"self", "cls", cls.name}
            for child in cls.body:
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if child.name in ("__init__", "__new__", "__post_init__"):
                    continue
                qual = "%s.%s" % (cls_qual, child.name)
                self._visit(
                    child.body,
                    guarded=False,
                    lock_attrs=lock_attrs,
                    owners=owners,
                    module=module,
                    qual=qual,
                    findings=findings,
                )
        return findings

    def _visit(
        self,
        stmts: List[ast.stmt],
        guarded: bool,
        lock_attrs: Set[str],
        owners: Set[str],
        module: ModuleInfo,
        qual: str,
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_guarded = guarded or any(
                    _lock_guard_in_with_item(item.context_expr, lock_attrs)
                    for item in stmt.items
                )
                self._visit(
                    stmt.body,
                    now_guarded,
                    lock_attrs,
                    owners,
                    module,
                    qual,
                    findings,
                )
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit(
                    stmt.body,
                    False,
                    lock_attrs,
                    owners,
                    module,
                    "%s.%s" % (qual, stmt.name),
                    findings,
                )
                continue
            if isinstance(stmt, ast.If) and not guarded:
                finding = self._check_if_statement(
                    stmt, lock_attrs, owners, module, qual
                )
                if finding is not None:
                    findings.append(finding)
            for field in ("body", "orelse", "finalbody"):
                value = getattr(stmt, field, None)
                if isinstance(value, list) and value and isinstance(
                    value[0], ast.stmt
                ):
                    self._visit(
                        value, guarded, lock_attrs, owners, module, qual,
                        findings,
                    )
            for handler in getattr(stmt, "handlers", []):
                self._visit(
                    handler.body, guarded, lock_attrs, owners, module, qual,
                    findings,
                )

    def _check_if_statement(
        self,
        stmt: ast.If,
        lock_attrs: Set[str],
        owners: Set[str],
        module: ModuleInfo,
        qual: str,
    ) -> Optional[Finding]:
        checked = self._membership_checked_attr(stmt.test, owners)
        if checked is not None and checked not in lock_attrs:
            if self._body_mutates_attr(stmt.body, checked, owners):
                return Finding(
                    rule_id="CH001",
                    severity=Severity.ERROR,
                    message=(
                        "check-then-act on shared mapping %r without "
                        "holding the class's lock; another thread can "
                        "interleave between the test and the mutation"
                        % checked
                    ),
                    path=module.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    symbol=qual,
                )
        lazy = self._lazy_init_attr(stmt, owners)
        if lazy is not None and lazy not in lock_attrs:
            return Finding(
                rule_id="CH002",
                severity=Severity.ERROR,
                message=(
                    "lazy initialization of shared attribute %r without "
                    "a lock; two threads can each build and publish one"
                    % lazy
                ),
                path=module.path,
                line=stmt.lineno,
                col=stmt.col_offset,
                symbol=qual,
            )
        return None

    @staticmethod
    def _membership_checked_attr(
        test: ast.expr, owners: Set[str]
    ) -> Optional[str]:
        """Attr name when the test is ``key [not] in self.X``."""
        for sub in ast.walk(test):
            if not isinstance(sub, ast.Compare):
                continue
            for op, comparator in zip(sub.ops, sub.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    attr = _owned_attr(comparator, owners)
                    if attr is not None:
                        return attr
        return None

    @staticmethod
    def _body_mutates_attr(
        body: List[ast.stmt], attr: str, owners: Set[str]
    ) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    if any(
                        _owned_attr(t, owners) == attr
                        and isinstance(t, ast.Subscript)
                        for t in sub.targets
                    ):
                        return True
                elif isinstance(sub, ast.Delete):
                    if any(
                        _owned_attr(t, owners) == attr
                        and isinstance(t, ast.Subscript)
                        for t in sub.targets
                    ):
                        return True
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr
                    in ("pop", "setdefault", "update", "clear", "popitem")
                    and _owned_attr(sub.func.value, owners) == attr
                ):
                    return True
        return False

    @staticmethod
    def _lazy_init_attr(
        stmt: ast.If, owners: Set[str]
    ) -> Optional[str]:
        """Attr name for ``if self.X is None: self.X = ...`` shapes."""
        test = stmt.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return None
        attr = _owned_attr(test.left, owners)
        if attr is None:
            return None
        for sub in stmt.body:
            for node in ast.walk(sub):
                if isinstance(node, ast.Assign) and any(
                    _owned_attr(t, owners) == attr
                    and not isinstance(t, ast.Subscript)
                    for t in node.targets
                ):
                    return attr
        return None

    # -- CH003 -----------------------------------------------------------------

    def _check_thread_join(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        creations = [
            node
            for node in walk_within_function(func)
            if isinstance(node, ast.Call)
            and dotted_name(node.func) in THREAD_FACTORIES
        ]
        if not creations:
            return findings
        has_join = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            for node in ast.walk(func)
        )
        has_daemon_assign = any(
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Attribute) and t.attr == "daemon"
                for t in node.targets
            )
            for node in ast.walk(func)
        )
        for call in creations:
            daemonized = any(
                kw.arg == "daemon"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            if daemonized or has_join or has_daemon_assign:
                continue
            findings.append(
                Finding(
                    rule_id="CH003",
                    severity=Severity.WARNING,
                    message=(
                        "Thread created without daemon=True and never "
                        "joined in this function; it can outlive the "
                        "work that spawned it"
                    ),
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    symbol=qual,
                )
            )
        return findings

    # -- CH004 -----------------------------------------------------------------

    def _check_future_result(
        self, module: ModuleInfo, qual: str, func: FunctionNode
    ) -> List[Finding]:
        findings: List[Finding] = []
        future_lists, future_vars = self._collect_future_names(func)
        for node in walk_within_function(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
            ):
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            receiver = node.func.value
            is_future = (
                (isinstance(receiver, ast.Name) and receiver.id in future_vars)
                or (
                    isinstance(receiver, ast.Subscript)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in future_lists
                )
                or self._is_submit_call(receiver)
            )
            if not is_future:
                continue
            findings.append(
                Finding(
                    rule_id="CH004",
                    severity=Severity.WARNING,
                    message=(
                        "Future.result() without a timeout waits forever "
                        "if the subquery wedges; pass a deadline-derived "
                        "timeout or gate on wait()"
                    ),
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=qual,
                )
            )
        return findings

    @staticmethod
    def _is_submit_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
        )

    def _collect_future_names(
        self, func: FunctionNode
    ) -> tuple:
        """Names bound to futures or lists of futures in this scope."""
        future_lists: Set[str] = set()
        future_vars: Set[str] = set()
        for node in walk_within_function(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if self._is_submit_call(value):
                    future_vars.add(target.id)
                elif isinstance(value, ast.ListComp) and self._is_submit_call(
                    value.elt
                ):
                    future_lists.add(target.id)
                elif isinstance(value, (ast.List, ast.Tuple)) and any(
                    self._is_submit_call(elt) for elt in value.elts
                ):
                    future_lists.add(target.id)
        # Loop / comprehension variables ranging over a future list are
        # futures themselves; comprehensions are separate scopes in
        # Python but share names lexically, so walk the whole function.
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                if (
                    isinstance(node.iter, ast.Name)
                    and node.iter.id in future_lists
                    and isinstance(node.target, ast.Name)
                ):
                    future_vars.add(node.target.id)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if (
                        isinstance(gen.iter, ast.Name)
                        and gen.iter.id in future_lists
                        and isinstance(gen.target, ast.Name)
                    ):
                        future_vars.add(gen.target.id)
        return future_lists, future_vars
