"""The finding model every checker reports through.

A :class:`Finding` pins a rule violation to ``file:line:col`` for the
human reading the report, but its *identity* for baseline matching is
the :attr:`~Finding.fingerprint` — rule id, file, enclosing symbol,
and an ordinal among same-rule findings in that symbol — so baselines
survive unrelated edits that shift line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List

__all__ = ["Finding", "Severity", "assign_ordinals"]


class Severity(str, Enum):
    """How bad a finding is; errors and warnings both gate CI."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    severity: Severity
    message: str
    path: str
    line: int
    col: int
    symbol: str = "<module>"
    #: Position among same-rule findings in the same symbol; assigned
    #: by :func:`assign_ordinals` so fingerprints are line-independent.
    ordinal: int = 0

    @property
    def fingerprint(self) -> str:
        """The line-number-independent identity used by baselines."""
        return "::".join(
            [self.rule_id, self.path, self.symbol, str(self.ordinal)]
        )

    def render(self) -> str:
        """One human-readable report line."""
        return "%s:%d:%d: %s %s [%s] %s" % (
            self.path,
            self.line,
            self.col,
            self.rule_id,
            self.severity.value,
            self.symbol,
            self.message,
        )

    def as_dict(self) -> dict:
        """The finding as a JSON-ready mapping."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }


def assign_ordinals(findings: List[Finding]) -> List[Finding]:
    """Number same-rule findings within each symbol by source order.

    Returns a new list sorted by location with each finding's
    :attr:`~Finding.ordinal` set, which makes fingerprints stable under
    edits elsewhere in the file.
    """
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )
    counters: Dict[tuple, int] = {}
    out: List[Finding] = []
    for finding in ordered:
        key = (finding.rule_id, finding.path, finding.symbol)
        ordinal = counters.get(key, 0)
        counters[key] = ordinal + 1
        out.append(replace(finding, ordinal=ordinal))
    return out
