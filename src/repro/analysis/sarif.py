"""SARIF 2.1.0 output for the analyzer.

One run, one driver, one result per finding.  Baselined findings are
included as suppressed results (``suppressions[].kind = "external"``
carrying the baseline justification) rather than omitted — code
scanning UIs then show the accepted debt alongside the live findings
instead of pretending it does not exist.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.checker import registered_checkers
from repro.analysis.findings import Finding, Severity

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

TOOL_NAME = "repro-analysis"

#: SARIF ``level`` values for each finding severity.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_catalog() -> List[dict]:
    """Every registered rule as a SARIF reportingDescriptor.

    Beyond the id and one-liner, each descriptor carries the rule's
    full failure-mode paragraph, its default severity, and the
    documentation anchor — code-scanning UIs render these on the
    rule page, so a finding is actionable without opening the
    checker source.
    """
    rules: List[dict] = []
    for _name, cls in sorted(registered_checkers().items()):
        for rule_id, text in sorted(cls.rules.items()):
            descriptor: Dict[str, object] = {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": text},
                "properties": {"checker": cls.name},
            }
            detail = cls.rule_details.get(rule_id)
            if detail:
                descriptor["fullDescription"] = {"text": detail}
            level = cls.rule_levels.get(rule_id)
            if level is not None:
                descriptor["defaultConfiguration"] = {
                    "level": _LEVELS[level]
                }
            if cls.help_uri:
                descriptor["helpUri"] = cls.help_uri
            rules.append(descriptor)
    return rules


def _result(
    finding: Finding, baseline: Baseline, suppressed: bool
) -> dict:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        # SARIF columns are 1-based; ast's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproAnalysis/v1": finding.fingerprint
        },
    }
    if suppressed:
        entry = baseline.entries.get(finding.fingerprint)
        suppression: Dict[str, object] = {"kind": "external"}
        if entry is not None and entry.justification:
            suppression["justification"] = entry.justification
        result["suppressions"] = [suppression]
    return result


def to_sarif(
    new: Sequence[Finding],
    suppressed: Sequence[Finding],
    baseline: Baseline,
) -> dict:
    """The full SARIF log for one analyzer run."""
    results = [_result(f, baseline, suppressed=False) for f in new]
    results.extend(
        _result(f, baseline, suppressed=True) for f in suppressed
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": _rule_catalog(),
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
